//! Lexer property tests: random interleavings of comments, raw
//! strings, nested quotes and ordinary code must lex with no panics,
//! no identifier leakage out of literals, and spans that tile the
//! source exactly.

use parp_analyze::lexer::{lex, TokenKind};
use parp_analyze::walker::significant;
use proptest::prelude::*;

/// Chunks where every lint-trigger word sits inside a literal or a
/// comment: if any of these words surfaces as an `Ident` token, the
/// lexer leaked out of a literal.
const QUARANTINED: [&str; 8] = [
    "// unwrap() panic! Instant::now() HashMap trailing comment\n",
    "/* SystemTime .lock() /* nested .expect(\"x\") */ still out */",
    "let s = \"panic!(\\\"no\\\") .unwrap() HashSet\";\n",
    "let r = r#\"Instant::now() self.buf.push(1) .lock()\"#;\n",
    "let n = r##\"nested r#\"quotes\"# with unreachable!()\"##;\n",
    "let b = br#\".expect(\"inside raw bytes\") SystemTime\"#;\n",
    "let c = '\\''; let q = b'\"';\n",
    "// parp-allow(W042) mentioned in prose, HashMap again\n",
]; // (the W042 marker never reaches the analyzer here — this file only lexes)

/// Chunks of ordinary code with none of the trigger words.
const NEUTRAL: [&str; 6] = [
    "fn f<'a>(x: &'a u8) -> &'a u8 { x }\n",
    "let range_sum: u64 = (0u64..10).sum();\n",
    "let n = 1.5e-3 + 0xFF as f64;\n",
    "let t = (1, \"two\", '3');\n",
    "struct S { field: Vec<u8> }\n",
    "impl S { fn get(&self) -> usize { self.field.len() } }\n",
];

const TRIGGERS: [&str; 10] = [
    "unwrap",
    "expect",
    "panic",
    "unreachable",
    "Instant",
    "SystemTime",
    "HashMap",
    "HashSet",
    "lock",
    "push",
];

fn chunk_strategy() -> impl Strategy<Value = &'static str> {
    (0usize..QUARANTINED.len() + NEUTRAL.len()).prop_map(|i| {
        if i < QUARANTINED.len() {
            QUARANTINED[i]
        } else {
            NEUTRAL[i - QUARANTINED.len()]
        }
    })
}

/// Spans must be in-bounds, on char boundaries, strictly ordered,
/// non-overlapping, and the gaps between them whitespace-only — i.e.
/// the token stream plus whitespace reconstructs the source exactly.
fn assert_tiling(src: &str) {
    let tokens = lex(src);
    let mut cursor = 0usize;
    for t in &tokens {
        assert!(t.start < t.end, "empty span {t:?}");
        assert!(
            src.get(t.start..t.end).is_some(),
            "span off char boundary: {t:?}"
        );
        assert!(cursor <= t.start, "overlapping tokens at {t:?}");
        assert!(
            src[cursor..t.start].chars().all(char::is_whitespace),
            "non-whitespace gap {:?} before {t:?}",
            &src[cursor..t.start]
        );
        cursor = t.end;
    }
    assert!(
        src[cursor..].chars().all(char::is_whitespace),
        "trailing non-whitespace {:?}",
        &src[cursor..]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn interleavings_tile_and_do_not_leak(chunks in proptest::collection::vec(chunk_strategy(), 0..24)) {
        let src = chunks.concat();
        assert_tiling(&src);
        for t in significant(&lex(&src)) {
            if t.kind == TokenKind::Ident {
                let text = t.text(&src);
                prop_assert!(
                    !TRIGGERS.contains(&text),
                    "trigger identifier {text:?} leaked out of a literal at {}..{}",
                    t.start,
                    t.end
                );
            }
        }
    }

    #[test]
    fn arbitrary_input_never_panics_and_tiles(input in "\\PC{0,120}") {
        // Even non-Rust garbage must lex without panicking, with spans
        // that still tile the input.
        assert_tiling(&input);
    }

    #[test]
    fn lexing_is_deterministic(chunks in proptest::collection::vec(chunk_strategy(), 0..12)) {
        let src = chunks.concat();
        prop_assert_eq!(lex(&src), lex(&src));
    }
}
