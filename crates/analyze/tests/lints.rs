//! Fixture-corpus integration tests: every lint fires where it
//! should, stays silent where it should not, and the suppression and
//! ratchet semantics hold end to end — including on this repository
//! itself.

use parp_analyze::{analyze_source, analyze_workspace, baseline, lints_for_file, LintScope};
use std::path::Path;

const ALL: LintScope = LintScope {
    w001: true,
    w002: true,
    w003: true,
    w004: true,
    w005: true,
};

fn lint_count(findings: &[parp_analyze::Finding], lint: &str) -> usize {
    findings.iter().filter(|f| f.lint == lint).count()
}

#[test]
fn w001_fires_on_panics_and_respects_exemptions() {
    let src = include_str!("fixtures/w001_panics.rs");
    let fa = analyze_source("crates/core/src/fixture.rs", src, ALL);
    // unwrap + expect("…") + panic! + unreachable! in serving code; the
    // `p.expect(b'{')` lookalike and the #[cfg(test)] module stay silent.
    assert_eq!(lint_count(&fa.findings, "W001"), 4, "{:#?}", fa.findings);
    assert_eq!(
        lint_count(&fa.suppressed, "W001"),
        1,
        "{:#?}",
        fa.suppressed
    );
    assert!(fa.findings.iter().all(|f| f.lint == "W001"));
}

#[test]
fn w002_fires_on_host_clock_but_not_instant_named_variants() {
    let src = include_str!("fixtures/w002_wallclock.rs");
    let fa = analyze_source("crates/net/src/fixture.rs", src, ALL);
    let w002: Vec<_> = fa.findings.iter().filter(|f| f.lint == "W002").collect();
    // Instant::now() once, SystemTime in the use + twice in stamp();
    // TracePhase::Instant and the test module never fire.
    assert_eq!(w002.len(), 4, "{w002:#?}");
    let instant_line = src
        .lines()
        .position(|l| l.contains("Instant::now()") && !l.contains("test"))
        .map(|i| i as u32 + 1);
    assert!(w002.iter().any(|f| Some(f.line) == instant_line));
}

#[test]
fn w003_fires_on_hash_collections_in_commitment_scope_only() {
    let src = include_str!("fixtures/w003_hash.rs");
    let fa = analyze_source("crates/contracts/src/cmm.rs", src, ALL);
    // HashMap and HashSet each appear in the use list and as a field;
    // BTreeMap and the test module stay silent.
    assert_eq!(lint_count(&fa.findings, "W003"), 4, "{:#?}", fa.findings);

    let out_of_scope = LintScope { w003: false, ..ALL };
    let fa = analyze_source("crates/gateway/src/fixture.rs", src, out_of_scope);
    assert_eq!(lint_count(&fa.findings, "W003"), 0);
}

#[test]
fn w004_fires_only_on_unbounded_growth() {
    let src = include_str!("fixtures/w004_growth.rs");
    let fa = analyze_source("crates/core/src/fixture.rs", src, ALL);
    let w004: Vec<_> = fa.findings.iter().filter(|f| f.lint == "W004").collect();
    assert_eq!(w004.len(), 1, "{w004:#?}");
    assert!(w004[0].message.contains("Node.log"), "{}", w004[0].message);
}

#[test]
fn w005_fires_on_second_lock_in_one_function() {
    let src = include_str!("fixtures/w005_locks.rs");
    let fa = analyze_source("crates/runtime/src/fixture.rs", src, ALL);
    let w005: Vec<_> = fa.findings.iter().filter(|f| f.lint == "W005").collect();
    assert_eq!(w005.len(), 1, "{w005:#?}");
    assert!(w005[0].message.contains("transfer"), "{}", w005[0].message);
}

#[test]
fn lexer_adversarial_fixture_yields_zero_findings() {
    let src = include_str!("fixtures/lexer_tricky.rs");
    let fa = analyze_source("crates/core/src/fixture.rs", src, ALL);
    assert!(fa.findings.is_empty(), "{:#?}", fa.findings);
    assert!(fa.suppressed.is_empty(), "{:#?}", fa.suppressed);
}

#[test]
fn suppression_semantics_end_to_end() {
    let src = include_str!("fixtures/suppressions.rs");
    let fa = analyze_source("crates/core/src/fixture.rs", src, ALL);
    // justified + trailing forms suppress; reasonless and wrong-lint do
    // not; reasonless and unknown-id markers are W000.
    assert_eq!(
        lint_count(&fa.suppressed, "W001"),
        2,
        "{:#?}",
        fa.suppressed
    );
    assert_eq!(lint_count(&fa.findings, "W001"), 2, "{:#?}", fa.findings);
    assert_eq!(lint_count(&fa.findings, "W000"), 2, "{:#?}", fa.findings);
}

#[test]
fn ratchet_flags_a_new_finding_and_passes_at_baseline() {
    let clean = "pub fn ok(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
    let dirty = "pub fn bad(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let at = |src: &str| {
        let fa = analyze_source("crates/core/src/f.rs", src, ALL);
        parp_analyze::Analysis {
            files_scanned: 1,
            findings: fa.findings,
            suppressed: fa.suppressed,
        }
    };
    let base = baseline::counts(&at(clean));
    assert!(baseline::compare(&at(clean), &base).passes());
    let cmp = baseline::compare(&at(dirty), &base);
    assert!(!cmp.passes());
    assert_eq!(cmp.regressions.len(), 1);
    assert_eq!(cmp.regressions[0].lint, "W001");
}

/// The analyzer runs clean on the workspace that ships it: no finding
/// beyond the checked-in baseline, and the determinism lints (W002,
/// W003) plus W004/W005 are at zero outright — only W001 carries
/// grandfathered counts, which can only ratchet down.
#[test]
fn workspace_is_clean_against_checked_in_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = analyze_workspace(&root);
    assert!(analysis.files_scanned > 50, "workspace discovery broke");

    let baseline_text = std::fs::read_to_string(root.join("ANALYSIS_baseline.json"))
        .expect("ANALYSIS_baseline.json must be checked in at the repo root");
    let base = baseline::parse(&baseline_text).expect("baseline must parse");
    let cmp = baseline::compare(&analysis, &base);
    assert!(
        cmp.passes(),
        "new findings beyond the baseline:\n{:#?}",
        cmp.regressions
    );
    for lint in ["W000", "W002", "W003", "W004", "W005"] {
        assert_eq!(
            lint_count(&analysis.findings, lint),
            0,
            "{lint} must be at zero in this workspace"
        );
        assert!(
            base.get(lint).map(|files| files.is_empty()).unwrap_or(true),
            "{lint} baseline must stay empty so regressions fail immediately"
        );
    }
}

/// The scope table matches the shipped crate layout: serving crates
/// get W001, commitment modules get W003, shims and bench are skipped.
#[test]
fn scope_table_matches_repo_layout() {
    assert!(lints_for_file("crates/shims/proptest/src/lib.rs").is_none());
    assert!(lints_for_file("crates/bench/src/report.rs").is_none());
    let sim = lints_for_file("crates/net/src/sim.rs").expect("in scope");
    assert!(sim.w001 && sim.w002 && sim.w004 && !sim.w003);
    let rlp = lints_for_file("crates/rlp/src/lib.rs").expect("in scope");
    assert!(rlp.w003 && !rlp.w001);
    let cmm = lints_for_file("crates/contracts/src/cmm.rs").expect("in scope");
    assert!(cmm.w003 && cmm.w001 && cmm.w004);
}
