//! Structure recovery over the token stream: which bytes are test
//! code, where function bodies start and end, which struct fields are
//! growable collections, and where `parp-allow` suppressions sit.
//!
//! This is deliberately *not* a parser — the lints only need a few
//! coarse facts, and a token-tree walk (attributes, brace matching,
//! field lists) recovers them without committing to a grammar.

use crate::lexer::{LineIndex, Token, TokenKind};

/// Byte ranges of the source that belong to test or bench code:
/// items annotated `#[cfg(test)]`, `#[test]`, or `#[bench]`
/// (including everything nested inside them). Lints skip findings in
/// these ranges — `unwrap` in a test is the idiom, not a bug.
#[derive(Debug, Default)]
pub struct TestRegions {
    ranges: Vec<(usize, usize)>,
}

impl TestRegions {
    /// Whether byte `offset` falls inside test code.
    pub fn contains(&self, offset: usize) -> bool {
        self.ranges
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }
}

/// Significant tokens: everything except comments. Lint pattern
/// matching runs over these; comments are handled separately (they
/// carry suppressions).
pub fn significant(tokens: &[Token]) -> Vec<Token> {
    tokens
        .iter()
        .copied()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect()
}

fn is_punct(tokens: &[Token], i: usize, src: &str, c: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text(src) == c)
}

fn is_ident(tokens: &[Token], i: usize, src: &str, name: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text(src) == name)
}

/// Finds the end index (exclusive) of a bracketed group opening at
/// `open` (must sit on `[`, `{` or `(`), matching all three bracket
/// kinds together. Returns `tokens.len()` when unterminated.
fn matching_close(tokens: &[Token], open: usize, src: &str) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Punct {
            match tokens[i].text(src) {
                "[" | "{" | "(" => depth += 1,
                "]" | "}" | ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Scans `tokens` (significant only) for test-marked items.
pub fn test_regions(tokens: &[Token], src: &str) -> TestRegions {
    let mut regions = TestRegions::default();
    let mut i = 0;
    while i < tokens.len() {
        if is_punct(tokens, i, src, "#") && is_punct(tokens, i + 1, src, "[") {
            let attr_end = matching_close(tokens, i + 1, src);
            let attr = &tokens[i + 1..attr_end];
            let mentions = |name: &str| {
                attr.iter()
                    .any(|t| t.kind == TokenKind::Ident && t.text(src) == name)
            };
            // `#[cfg(test)]` / `#[test]` / `#[bench]` mark test code;
            // `#[cfg(not(test))]` is production code and must not.
            if (mentions("test") || mentions("bench")) && !mentions("not") {
                let item_end = item_extent(tokens, attr_end, src);
                let start = tokens[i].start;
                let end = tokens
                    .get(item_end.saturating_sub(1))
                    .map_or(src.len(), |t| t.end);
                regions.ranges.push((start, end));
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    regions
}

/// The token index one past the item starting at `from` (skipping any
/// further attributes): through the matching `}` of its first brace
/// block, or through the first top-level `;` for braceless items.
fn item_extent(tokens: &[Token], from: usize, src: &str) -> usize {
    let mut i = from;
    // Skip stacked attributes.
    while is_punct(tokens, i, src, "#") && is_punct(tokens, i + 1, src, "[") {
        i = matching_close(tokens, i + 1, src);
    }
    let mut depth = 0i64;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Punct {
            match tokens[i].text(src) {
                "{" if depth == 0 => return matching_close(tokens, i, src),
                "[" | "{" | "(" => depth += 1,
                "]" | "}" | ")" => depth -= 1,
                ";" if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    tokens.len()
}

/// One function's extent: its name and the byte range of its body.
#[derive(Debug, Clone)]
pub struct FnExtent {
    /// The function's name.
    pub name: String,
    /// Byte offset of the body's opening `{`.
    pub body_start: usize,
    /// Byte offset one past the body's closing `}`.
    pub body_end: usize,
}

/// Collects every function body in the file (nested functions and
/// closures belong to their syntactic extent; a token can fall inside
/// several extents, and callers attribute it to the *innermost*).
pub fn fn_extents(tokens: &[Token], src: &str) -> Vec<FnExtent> {
    let mut extents = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_ident(tokens, i, src, "fn") {
            let name = tokens
                .get(i + 1)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text(src).to_string());
            if let Some(name) = name {
                // Find the body's `{`, giving up at a `;` (trait
                // method declarations have no body).
                let mut j = i + 2;
                let mut depth = 0i64;
                while j < tokens.len() {
                    if tokens[j].kind == TokenKind::Punct {
                        match tokens[j].text(src) {
                            "{" if depth == 0 => break,
                            "[" | "{" | "(" => depth += 1,
                            "]" | "}" | ")" => depth -= 1,
                            ";" if depth == 0 => break,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                if j < tokens.len() && tokens[j].text(src) == "{" {
                    let close = matching_close(tokens, j, src);
                    extents.push(FnExtent {
                        name,
                        body_start: tokens[j].start,
                        body_end: tokens.get(close - 1).map_or(src.len(), |t| t.end),
                    });
                }
            }
        }
        i += 1;
    }
    extents
}

/// The innermost function extent containing byte `offset`.
pub fn innermost_fn(extents: &[FnExtent], offset: usize) -> Option<&FnExtent> {
    extents
        .iter()
        .filter(|e| offset >= e.body_start && offset < e.body_end)
        .min_by_key(|e| e.body_end - e.body_start)
}

/// A named struct field whose type is a growable sequence
/// (`Vec`/`VecDeque`) — the candidates lint W004 tracks push/bound
/// discipline for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowableField {
    /// The struct's name.
    pub struct_name: String,
    /// The field's name.
    pub field_name: String,
}

/// Collects `Vec`/`VecDeque` fields of every named-field struct in the
/// file. Tuple structs are skipped (their fields cannot be addressed
/// as `self.name` and the push-site scan below is name-based).
pub fn growable_fields(tokens: &[Token], src: &str) -> Vec<GrowableField> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !is_ident(tokens, i, src, "struct") {
            i += 1;
            continue;
        }
        let Some(struct_name) = tokens
            .get(i + 1)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
        else {
            i += 1;
            continue;
        };
        // Find the field block's `{`; `;` first means a tuple/unit
        // struct.
        let mut j = i + 2;
        let mut depth = 0i64;
        while j < tokens.len() {
            if tokens[j].kind == TokenKind::Punct {
                match tokens[j].text(src) {
                    "{" if depth == 0 => break,
                    // `struct S(Vec<u8>);` — the paren opens before
                    // any brace: tuple struct, skip.
                    "(" if depth == 0 => {
                        j = tokens.len();
                        break;
                    }
                    "[" | "{" | "(" => depth += 1,
                    "]" | "}" | ")" => depth -= 1,
                    ";" if depth == 0 => {
                        j = tokens.len();
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        if j >= tokens.len() {
            i += 1;
            continue;
        }
        let close = matching_close(tokens, j, src);
        let body = &tokens[j + 1..close.saturating_sub(1)];
        // Split the field list on top-level commas; in each chunk the
        // field name is the last identifier before the first `:`, and
        // the type is everything after it.
        let mut chunk_start = 0usize;
        let mut depth = 0i64;
        let mut k = 0usize;
        while k <= body.len() {
            let at_end = k == body.len();
            let at_comma = !at_end
                && body[k].kind == TokenKind::Punct
                && body[k].text(src) == ","
                && depth == 0;
            if at_end || at_comma {
                let chunk = &body[chunk_start..k];
                if let Some(colon) = chunk
                    .iter()
                    .position(|t| t.kind == TokenKind::Punct && t.text(src) == ":")
                {
                    let name = chunk[..colon]
                        .iter()
                        .rev()
                        .find(|t| t.kind == TokenKind::Ident)
                        .map(|t| t.text(src).to_string());
                    let growable = chunk[colon..].iter().any(|t| {
                        t.kind == TokenKind::Ident && matches!(t.text(src), "Vec" | "VecDeque")
                    });
                    if let (Some(field_name), true) = (name, growable) {
                        fields.push(GrowableField {
                            struct_name: struct_name.clone(),
                            field_name,
                        });
                    }
                }
                chunk_start = k + 1;
            } else if body[k].kind == TokenKind::Punct {
                match body[k].text(src) {
                    "[" | "{" | "(" => depth += 1,
                    "]" | "}" | ")" => depth -= 1,
                    _ => {}
                }
            }
            k += 1;
        }
        i = close;
    }
    fields
}

/// One parsed suppression comment: `parp-allow` plus a lint id in
/// parentheses and a mandatory `: reason` justification.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The lint being suppressed, e.g. `"W001"`.
    pub lint: String,
    /// The justification after the colon (may be empty — which lint
    /// W000 rejects).
    pub reason: String,
    /// 1-based line the comment sits on (suppresses findings on this
    /// line and the next).
    pub line: u32,
    /// 1-based line of the comment's last physical line (multi-line
    /// block comments suppress below their end).
    pub end_line: u32,
}

/// Extracts every `parp-allow` marker from the file's comments.
pub fn allows(tokens: &[Token], src: &str, lines: &LineIndex) -> Vec<Allow> {
    let mut out = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = t.text(src);
        let Some(at) = text.find("parp-allow(") else {
            continue;
        };
        let rest = &text[at + "parp-allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let lint = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let reason = after
            .strip_prefix(':')
            .map(|r| {
                // A block comment's reason ends at its closing */.
                r.trim_end_matches("*/").trim().to_string()
            })
            .unwrap_or_default();
        out.push(Allow {
            lint,
            reason,
            line: lines.line_of(t.start),
            end_line: lines.line_of(t.end.saturating_sub(1)),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn sig(src: &str) -> Vec<Token> {
        significant(&lex(src))
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n fn helper() { x.unwrap(); }\n}\nfn prod2() {}";
        let toks = sig(src);
        let regions = test_regions(&toks, src);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(regions.contains(unwrap_at));
        assert!(!regions.contains(src.find("prod2").unwrap()));
        assert!(!regions.contains(0));
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }";
        let toks = sig(src);
        let regions = test_regions(&toks, src);
        assert!(!regions.contains(src.find("unwrap").unwrap()));
    }

    #[test]
    fn stacked_attributes_cover_the_item() {
        let src = "#[test]\n#[ignore]\nfn t() { boom(); }";
        let toks = sig(src);
        let regions = test_regions(&toks, src);
        assert!(regions.contains(src.find("boom").unwrap()));
    }

    #[test]
    fn fn_extents_and_innermost() {
        let src = "fn outer() { fn inner() { lock(); } lock(); }";
        let toks = sig(src);
        let extents = fn_extents(&toks, src);
        assert_eq!(extents.len(), 2);
        let first_lock = src.find("lock").unwrap();
        assert_eq!(innermost_fn(&extents, first_lock).unwrap().name, "inner");
        let second_lock = src.rfind("lock").unwrap();
        assert_eq!(innermost_fn(&extents, second_lock).unwrap().name, "outer");
    }

    #[test]
    fn growable_fields_found() {
        let src = "struct S { pub log: Vec<u8>, n: u64, q: VecDeque<(u32, Vec<u8>)> }\nstruct T(Vec<u8>);";
        let toks = sig(src);
        let fields = growable_fields(&toks, src);
        let names: Vec<&str> = fields.iter().map(|f| f.field_name.as_str()).collect();
        assert_eq!(names, ["log", "q"]);
        assert!(fields.iter().all(|f| f.struct_name == "S"));
    }

    #[test]
    fn allow_parsing() {
        let src =
            "// parp-allow(W002): bench harness measures hardware\nx();\n// parp-allow(W001)\ny();";
        let toks = lex(src);
        let lines = LineIndex::new(src);
        let found = allows(&toks, src, &lines);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].lint, "W002");
        assert_eq!(found[0].reason, "bench harness measures hardware");
        assert_eq!(found[0].line, 1);
        assert_eq!(found[1].lint, "W001");
        assert_eq!(found[1].reason, "");
    }
}
