//! A hand-rolled Rust lexer (house style: no external crates, like
//! `parp-jsonrpc`'s JSON parser).
//!
//! The lints downstream match *token* patterns, so the lexer's one job
//! is to never confuse code with text: `"panic!"` inside a string
//! literal, `unwrap()` inside a doc comment, and `Instant::now` inside
//! a raw string must all come out as single literal/comment tokens,
//! not as identifiers. It is deliberately tolerant — unknown bytes
//! lex as one-character punctuation and unterminated literals run to
//! end of input — because a linter must never panic on the source it
//! reads (its own lint W001 would be poetic justice).
//!
//! Invariant (property-tested): token spans are strictly increasing,
//! non-overlapping byte ranges into the source, and slicing the source
//! at a token's span reproduces the token text exactly — offsets
//! round-trip.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers `r#type`).
    Ident,
    /// A lifetime such as `'a` (disambiguated from char literals).
    Lifetime,
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#` — one token, contents never re-lexed.
    Str,
    /// A character or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A numeric literal (integers, floats, hex/oct/bin, suffixes).
    Number,
    /// One punctuation character (`.`, `:`, `{`, `#`, …).
    Punct,
    /// A `//`-style comment (including `///` and `//!` doc comments),
    /// excluding the trailing newline.
    LineComment,
    /// A `/* … */` comment, nesting respected.
    BlockComment,
}

/// One lexed token: kind plus the byte span it occupies in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` completely. Infallible: every byte of input is either
/// inside exactly one token or is whitespace.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        let mut tokens = Vec::new();
        while let Some(c) = self.peek_char() {
            let start = self.pos;
            let kind = self.next_token(c);
            match kind {
                None => {} // whitespace
                Some(kind) => tokens.push(Token {
                    kind,
                    start,
                    end: self.pos,
                }),
            }
            // Defensive: guarantee forward progress even on input the
            // cases above failed to consume (cannot happen, but an
            // infinite loop in a CI gate would be worse than a bad
            // token).
            if self.pos == start {
                self.pos += self.char_len(start);
            }
        }
        tokens
    }

    fn char_len(&self, at: usize) -> usize {
        self.src[at..].chars().next().map_or(1, char::len_utf8)
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_char_at(&self, at: usize) -> Option<char> {
        self.src.get(at..).and_then(|s| s.chars().next())
    }

    fn byte_at(&self, at: usize) -> Option<u8> {
        self.bytes.get(at).copied()
    }

    /// Consumes one token starting with `c`; returns `None` for
    /// whitespace. Leaves `self.pos` one past the token.
    fn next_token(&mut self, c: char) -> Option<TokenKind> {
        if c.is_whitespace() {
            self.pos += c.len_utf8();
            return None;
        }
        if c == '/' {
            match self.byte_at(self.pos + 1) {
                Some(b'/') => return Some(self.line_comment()),
                Some(b'*') => return Some(self.block_comment()),
                _ => {
                    self.pos += 1;
                    return Some(TokenKind::Punct);
                }
            }
        }
        if c == 'r' || c == 'b' {
            if let Some(kind) = self.raw_or_byte_prefixed() {
                return Some(kind);
            }
        }
        if c == '"' {
            return Some(self.string_literal());
        }
        if c == '\'' {
            return Some(self.lifetime_or_char());
        }
        if c.is_ascii_digit() {
            return Some(self.number());
        }
        if is_ident_start(c) {
            self.ident_run();
            return Some(TokenKind::Ident);
        }
        self.pos += c.len_utf8();
        Some(TokenKind::Punct)
    }

    fn line_comment(&mut self) -> TokenKind {
        while let Some(b) = self.byte_at(self.pos) {
            if b == b'\n' {
                break;
            }
            self.pos += self.char_len(self.pos);
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.pos += 2; // consume "/*"
        let mut depth = 1usize;
        while depth > 0 {
            match (self.byte_at(self.pos), self.byte_at(self.pos + 1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => self.pos += self.char_len(self.pos),
                (None, _) => break, // unterminated: runs to EOF
            }
        }
        TokenKind::BlockComment
    }

    /// Handles the `r` / `b` prefixed families: raw strings `r"`/`r#"`,
    /// byte strings `b"`, byte chars `b'`, raw byte strings `br#"`,
    /// and raw identifiers `r#ident`. Returns `None` when the prefix
    /// turns out to start a plain identifier (`radius`, `bytes`, …).
    fn raw_or_byte_prefixed(&mut self) -> Option<TokenKind> {
        let start = self.pos;
        let first = self.byte_at(start)?;
        let mut at = start + 1;
        if first == b'b' && self.byte_at(at) == Some(b'r') {
            at += 1; // br…
        }
        if first == b'b' && self.byte_at(start + 1) == Some(b'\'') {
            // Byte char literal b'x'.
            self.pos = start + 1;
            let kind = self.lifetime_or_char();
            debug_assert!(matches!(kind, TokenKind::Char | TokenKind::Lifetime));
            return Some(TokenKind::Char);
        }
        let mut hashes = 0usize;
        while self.byte_at(at) == Some(b'#') {
            hashes += 1;
            at += 1;
        }
        if self.byte_at(at) == Some(b'"') {
            // Raw-string family needs the r prefix; a bare b"…" is a
            // plain (escaped) byte string.
            let raw = first == b'r' || (first == b'b' && self.byte_at(start + 1) == Some(b'r'));
            if raw {
                self.pos = at + 1;
                self.raw_string_body(hashes);
                return Some(TokenKind::Str);
            }
            if hashes == 0 {
                // b"…": escaped string with a b prefix.
                self.pos = at;
                return Some(self.string_literal());
            }
        }
        if first == b'r' && hashes == 1 {
            // Raw identifier r#type.
            if self.peek_char_at(at).is_some_and(is_ident_start) {
                self.pos = at;
                self.ident_run();
                return Some(TokenKind::Ident);
            }
        }
        // Just an identifier starting with r/b.
        self.pos = start;
        self.ident_run();
        Some(TokenKind::Ident)
    }

    /// Body of a raw string after the opening quote: runs to a `"`
    /// followed by `hashes` hash marks (or EOF when unterminated).
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(b) = self.byte_at(self.pos) {
            if b == b'"' {
                let mut tail = self.pos + 1;
                let mut matched = 0usize;
                while matched < hashes && self.byte_at(tail) == Some(b'#') {
                    matched += 1;
                    tail += 1;
                }
                if matched == hashes {
                    self.pos = tail;
                    return;
                }
            }
            self.pos += self.char_len(self.pos);
        }
    }

    /// An escaped string literal starting at the opening quote.
    fn string_literal(&mut self) -> TokenKind {
        self.pos += 1; // opening quote
        while let Some(b) = self.byte_at(self.pos) {
            match b {
                b'\\' => {
                    self.pos += 1;
                    if self.byte_at(self.pos).is_some() {
                        self.pos += self.char_len(self.pos);
                    }
                }
                b'"' => {
                    self.pos += 1;
                    return TokenKind::Str;
                }
                _ => self.pos += self.char_len(self.pos),
            }
        }
        TokenKind::Str // unterminated: runs to EOF
    }

    /// Disambiguates `'a` (lifetime) from `'a'` (char literal) at an
    /// opening single quote.
    fn lifetime_or_char(&mut self) -> TokenKind {
        let quote = self.pos;
        self.pos += 1;
        match self.peek_char() {
            Some('\\') => {
                // Escaped char literal '\n', '\u{1F600}', '\''.
                self.pos += 1;
                if self.byte_at(self.pos).is_some() {
                    self.pos += self.char_len(self.pos);
                }
                if self.byte_at(self.pos) == Some(b'{') {
                    // \u{…}
                    while let Some(b) = self.byte_at(self.pos) {
                        self.pos += 1;
                        if b == b'}' {
                            break;
                        }
                    }
                }
                if self.byte_at(self.pos) == Some(b'\'') {
                    self.pos += 1;
                }
                TokenKind::Char
            }
            Some(c) if is_ident_start(c) => {
                // Ident run: 'static (lifetime) vs 'a' (char).
                let run_start = self.pos;
                self.ident_run();
                if self.byte_at(self.pos) == Some(b'\'') {
                    self.pos += 1;
                    TokenKind::Char
                } else {
                    debug_assert!(self.pos > run_start);
                    TokenKind::Lifetime
                }
            }
            Some(c) if c != '\'' => {
                // Non-ident char literal: '1', '{', ' '. Close on the
                // next quote before a newline; bare quote otherwise.
                let c_len = c.len_utf8();
                if self.byte_at(self.pos + c_len) == Some(b'\'') {
                    self.pos += c_len + 1;
                    TokenKind::Char
                } else {
                    self.pos = quote + 1;
                    TokenKind::Punct
                }
            }
            _ => TokenKind::Punct, // lone quote or EOF
        }
    }

    fn number(&mut self) -> TokenKind {
        let hex = self.byte_at(self.pos) == Some(b'0')
            && matches!(self.byte_at(self.pos + 1), Some(b'x' | b'X' | b'o' | b'b'));
        self.pos += 1;
        while let Some(c) = self.peek_char() {
            if is_ident_continue(c) {
                let at_exponent = !hex && matches!(c, 'e' | 'E');
                self.pos += c.len_utf8();
                // 1e-5 / 1E+9: the sign is part of the literal.
                if at_exponent
                    && matches!(self.byte_at(self.pos), Some(b'+' | b'-'))
                    && self
                        .peek_char_at(self.pos + 1)
                        .is_some_and(|d| d.is_ascii_digit())
                {
                    self.pos += 1;
                }
            } else if c == '.' {
                // Field access (`0.to_string()`) and ranges (`0..4`)
                // end the number; a fractional part continues it.
                if self
                    .peek_char_at(self.pos + 1)
                    .is_some_and(|d| d.is_ascii_digit())
                    && !hex
                {
                    self.pos += 1;
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        TokenKind::Number
    }

    fn ident_run(&mut self) {
        while let Some(c) = self.peek_char() {
            if is_ident_continue(c) {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }
}

/// Byte-offset → 1-based line number lookup table.
#[derive(Debug)]
pub struct LineIndex {
    /// Byte offsets of each line start (line_starts[0] == 0).
    line_starts: Vec<usize>,
}

impl LineIndex {
    /// Builds the table for `src`.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineIndex { line_starts }
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> u32 {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn strings_and_comments_swallow_panics() {
        let src = r##"let s = "panic!(\"no\")"; // unwrap() here
let r = r#"x.unwrap()"#; /* Instant::now() */"##;
        for (kind, text) in kinds(src) {
            if kind == TokenKind::Ident {
                assert!(
                    !matches!(text.as_str(), "panic" | "unwrap" | "Instant"),
                    "identifier {text:?} leaked out of a literal"
                );
            }
        }
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokenKind::Char, "'x'".into())));
        let toks = kinds(r"let c = '\n'; let s: &'static str;");
        assert!(toks.contains(&(TokenKind::Char, r"'\n'".into())));
        assert!(toks.contains(&(TokenKind::Lifetime, "'static".into())));
    }

    #[test]
    fn byte_and_raw_families() {
        let toks = kinds(r###"let a = b"by"; let b = b'x'; let c = br#"r"#; let d = r#type;"###);
        assert!(toks.contains(&(TokenKind::Str, "b\"by\"".into())));
        assert!(toks.contains(&(TokenKind::Char, "b'x'".into())));
        assert!(toks.contains(&(TokenKind::Str, "br#\"r\"#".into())));
        assert!(toks.contains(&(TokenKind::Ident, "r#type".into())));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = kinds("for i in 0..4 { 1.0e-5; 0xff_u64; 2.pow(3); }");
        assert!(toks.contains(&(TokenKind::Number, "0".into())));
        assert!(toks.contains(&(TokenKind::Number, "4".into())));
        assert!(toks.contains(&(TokenKind::Number, "1.0e-5".into())));
        assert!(toks.contains(&(TokenKind::Number, "0xff_u64".into())));
        assert!(toks.contains(&(TokenKind::Number, "2".into())));
        assert!(toks.contains(&(TokenKind::Ident, "pow".into())));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ code");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "code".into()));
    }

    #[test]
    fn spans_tile_the_source() {
        let src = "fn main() { let x = \"s\"; // c\n}";
        let toks = lex(src);
        let mut last_end = 0;
        for t in &toks {
            assert!(t.start >= last_end, "overlap at {t:?}");
            assert!(t.end > t.start);
            assert!(src[last_end..t.start].chars().all(char::is_whitespace));
            last_end = t.end;
        }
    }

    #[test]
    fn line_index() {
        let idx = LineIndex::new("a\nbc\n\nd");
        assert_eq!(idx.line_of(0), 1);
        assert_eq!(idx.line_of(2), 2);
        assert_eq!(idx.line_of(3), 2);
        assert_eq!(idx.line_of(5), 3);
        assert_eq!(idx.line_of(6), 4);
    }
}
