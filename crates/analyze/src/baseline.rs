//! The CI ratchet: a checked-in per-(lint, file) count baseline.
//!
//! The baseline grandfathers findings that predate the analyzer so CI
//! can be strict from day one without a flag-day cleanup: a run fails
//! only when some (lint, file) pair has *more* findings than the
//! baseline records (or appears with none recorded). Counts can only
//! go down — when they do, `--write-baseline` re-freezes the smaller
//! numbers and the ratchet tightens.
//!
//! The file is parsed with `parp_jsonrpc`'s JSON parser — the
//! workspace's own, keeping this crate free of external dependencies.

use crate::{Analysis, Finding};
use parp_jsonrpc::Json;
use std::collections::BTreeMap;

/// Schema tag written into (and required from) the baseline file.
pub const SCHEMA: &str = "parp-analyze-baseline/1";

/// Finding counts keyed by lint id, then repo-relative file.
pub type Counts = BTreeMap<String, BTreeMap<String, u64>>;

/// Tallies an analysis's unsuppressed findings into baseline form.
pub fn counts(analysis: &Analysis) -> Counts {
    let mut out = Counts::new();
    for f in &analysis.findings {
        *out.entry(f.lint.clone())
            .or_default()
            .entry(f.file.clone())
            .or_default() += 1;
    }
    out
}

/// Serializes counts as pretty-printed JSON with a stable key order
/// (BTreeMap iteration), so the checked-in file diffs cleanly.
pub fn to_json(counts: &Counts) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str("  \"counts\": {");
    let mut first_lint = true;
    for (lint, files) in counts {
        if !first_lint {
            out.push(',');
        }
        first_lint = false;
        out.push_str(&format!("\n    \"{lint}\": {{"));
        let mut first_file = true;
        for (file, n) in files {
            if !first_file {
                out.push(',');
            }
            first_file = false;
            out.push_str(&format!("\n      \"{file}\": {n}"));
        }
        out.push_str("\n    }");
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Parses a baseline file produced by [`to_json`].
pub fn parse(src: &str) -> Result<Counts, String> {
    let doc = parp_jsonrpc::parse(src).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("unsupported baseline schema {other:?}")),
        None => return Err("baseline is missing its \"schema\" field".to_string()),
    }
    let Some(Json::Object(lints)) = doc.get("counts") else {
        return Err("baseline is missing its \"counts\" object".to_string());
    };
    let mut out = Counts::new();
    for (lint, files) in lints {
        let Json::Object(files) = files else {
            return Err(format!("baseline counts for {lint} are not an object"));
        };
        let per_file = out.entry(lint.clone()).or_default();
        for (file, n) in files {
            let Some(n) = n.as_f64().filter(|n| *n >= 0.0 && n.fract() == 0.0) else {
                return Err(format!("baseline count for {lint} / {file} is not a count"));
            };
            per_file.insert(file.clone(), n as u64);
        }
    }
    Ok(out)
}

/// Outcome of comparing a run against the baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Findings beyond the baseline — these fail CI. Each entry is a
    /// concrete new finding (the ones past the grandfathered count,
    /// in file order).
    pub regressions: Vec<Finding>,
    /// (lint, file) pairs that improved on the baseline; informational.
    pub improvements: Vec<(String, String, u64, u64)>,
}

impl Comparison {
    /// True when the run is at or below the baseline everywhere.
    pub fn passes(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares current findings against the baseline. For a (lint, file)
/// pair with baseline count `b` and current count `c > b`, the last
/// `c - b` findings in line order are reported as regressions: the
/// grandfathered allowance covers the first `b`, so the report points
/// at roughly the code that was added last.
pub fn compare(analysis: &Analysis, baseline: &Counts) -> Comparison {
    let current = counts(analysis);
    let mut cmp = Comparison::default();
    for (lint, files) in &current {
        for (file, &c) in files {
            let b = baseline
                .get(lint)
                .and_then(|f| f.get(file))
                .copied()
                .unwrap_or(0);
            if c > b {
                let mut over: Vec<Finding> = analysis
                    .findings
                    .iter()
                    .filter(|f| &f.lint == lint && &f.file == file)
                    .cloned()
                    .collect();
                over.sort_by_key(|f| f.line);
                cmp.regressions.extend(over.split_off(b as usize));
            } else if c < b {
                cmp.improvements.push((lint.clone(), file.clone(), b, c));
            }
        }
    }
    // Pairs that vanished entirely are improvements too.
    for (lint, files) in baseline {
        for (file, &b) in files {
            let gone = current
                .get(lint)
                .and_then(|f| f.get(file))
                .copied()
                .unwrap_or(0)
                == 0
                && b > 0;
            if gone {
                cmp.improvements.push((lint.clone(), file.clone(), b, 0));
            }
        }
    }
    cmp.regressions
        .sort_by_key(|f| (f.file.clone(), f.line, f.lint.clone()));
    cmp.improvements.sort();
    cmp.improvements.dedup();
    Comparison {
        regressions: cmp.regressions,
        improvements: cmp.improvements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &str, file: &str, line: u32) -> Finding {
        Finding {
            lint: lint.to_string(),
            file: file.to_string(),
            line,
            message: String::new(),
        }
    }

    fn analysis(findings: Vec<Finding>) -> Analysis {
        Analysis {
            files_scanned: 1,
            findings,
            suppressed: Vec::new(),
        }
    }

    #[test]
    fn json_round_trips() {
        let run = analysis(vec![
            finding("W001", "crates/a/src/x.rs", 3),
            finding("W001", "crates/a/src/x.rs", 9),
            finding("W004", "crates/b/src/y.rs", 1),
        ]);
        let tallied = counts(&run);
        let parsed = parse(&to_json(&tallied)).unwrap();
        assert_eq!(parsed, tallied);
    }

    #[test]
    fn regression_reports_findings_past_the_allowance() {
        let base = counts(&analysis(vec![finding("W001", "f.rs", 3)]));
        let run = analysis(vec![
            finding("W001", "f.rs", 3),
            finding("W001", "f.rs", 40),
        ]);
        let cmp = compare(&run, &base);
        assert!(!cmp.passes());
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].line, 40);
    }

    #[test]
    fn new_pair_is_a_regression_and_fewer_is_an_improvement() {
        let base = counts(&analysis(vec![
            finding("W004", "old.rs", 1),
            finding("W004", "old.rs", 2),
        ]));
        let run = analysis(vec![
            finding("W004", "old.rs", 1),
            finding("W005", "new.rs", 7),
        ]);
        let cmp = compare(&run, &base);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].file, "new.rs");
        assert_eq!(
            cmp.improvements,
            vec![("W004".into(), "old.rs".into(), 2, 1)]
        );
    }

    #[test]
    fn vanished_pair_counts_as_improvement() {
        let base = counts(&analysis(vec![finding("W002", "gone.rs", 5)]));
        let cmp = compare(&analysis(Vec::new()), &base);
        assert!(cmp.passes());
        assert_eq!(
            cmp.improvements,
            vec![("W002".into(), "gone.rs".into(), 1, 0)]
        );
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(parse("{}").is_err());
        assert!(parse("{\"schema\": \"other/9\", \"counts\": {}}").is_err());
        assert!(parse(
            "{\"schema\": \"parp-analyze-baseline/1\", \"counts\": {\"W001\": {\"f.rs\": 1.5}}}"
        )
        .is_err());
        assert!(parse("not json").is_err());
    }
}
