//! Command-line entry point.
//!
//! ```text
//! cargo run -p parp-analyze -- --workspace --baseline ANALYSIS_baseline.json
//! ```
//!
//! Exit status is 0 when the run passes (no findings, or none beyond
//! the baseline) and 1 otherwise. The serving-path lint applies to
//! this crate too, so the driver reports errors instead of panicking.

use parp_analyze::{analyze_workspace, baseline, output};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline_path: Option<PathBuf>,
    write_baseline: bool,
    json_path: Option<PathBuf>,
}

const USAGE: &str = "usage: parp-analyze --workspace [--root DIR] [--baseline FILE] \
[--write-baseline] [--json FILE]\n\
\x20 --workspace        scan src/ and every crates/*/src tree under the root\n\
\x20 --root DIR         workspace root (default: current directory)\n\
\x20 --baseline FILE    ratchet: fail only on findings beyond FILE's counts\n\
\x20 --write-baseline   rewrite the baseline from this run's findings and exit 0\n\
\x20 --json FILE        machine-readable report path (default: ROOT/ANALYSIS.json)";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline_path: None,
        write_baseline: false,
        json_path: None,
    };
    let mut it = std::env::args().skip(1);
    let mut workspace = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                args.baseline_path =
                    Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--write-baseline" => args.write_baseline = true,
            "--json" => {
                args.json_path = Some(PathBuf::from(it.next().ok_or("--json needs a file")?));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    if !workspace {
        return Err(format!("--workspace is required\n{USAGE}"));
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let analysis = analyze_workspace(&args.root);
    if analysis.files_scanned == 0 {
        return Err(format!(
            "no Rust files found under {} — is --root pointing at the workspace?",
            args.root.display()
        ));
    }

    if args.write_baseline {
        let path = args
            .baseline_path
            .clone()
            .unwrap_or_else(|| args.root.join("ANALYSIS_baseline.json"));
        let counts = baseline::counts(&analysis);
        std::fs::write(&path, baseline::to_json(&counts))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!(
            "parp-analyze: baseline written to {} ({} findings across {} files)",
            path.display(),
            analysis.findings.len(),
            analysis.files_scanned
        );
        return Ok(true);
    }

    let comparison = match &args.baseline_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
            let counts = baseline::parse(&text)?;
            Some(baseline::compare(&analysis, &counts))
        }
        None => None,
    };

    let json_path = args
        .json_path
        .clone()
        .unwrap_or_else(|| args.root.join("ANALYSIS.json"));
    std::fs::write(&json_path, output::to_json(&analysis, comparison.as_ref()))
        .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;

    print!("{}", output::to_text(&analysis, comparison.as_ref()));
    Ok(match &comparison {
        Some(cmp) => cmp.passes(),
        None => analysis.findings.is_empty(),
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
