//! # parp-analyze — workspace invariants as a lint pass
//!
//! PARP's correctness argument leans on three properties the type
//! system cannot see:
//!
//! 1. **Determinism** — fraud proofs adjudicate *exact response
//!    bytes*, so anything feeding a commitment (RLP encoding, channel
//!    state, misbehavior records) must be bit-reproducible across
//!    processes, and the simulator must never read host time.
//! 2. **Panic-freedom on serving paths** — servers face untrusted
//!    callers; a reachable panic is a one-request denial of service.
//! 3. **Bounded memory** — long-lived structs that grow per request
//!    are slow leaks (PR 7 removed exactly one of these from the
//!    provider aggregates).
//!
//! This crate enforces them with a hand-rolled Rust lexer (no false
//! positives on `"panic!"` inside a string literal) and a token-tree
//! walker, in the same zero-dependency house style as
//! `parp-jsonrpc`'s parser. Findings can be suppressed with a
//! justified marker:
//!
//! ```text
//! // parp-allow(W002): anchor for the wall clock itself
//! ```
//!
//! An empty justification is itself a finding (W000). A checked-in
//! baseline (`ANALYSIS_baseline.json`) grandfathers pre-existing
//! findings per (lint, file); CI fails on any *new* finding, so the
//! count can only ratchet down.

pub mod baseline;
pub mod lexer;
pub mod lints;
pub mod output;
pub mod walker;

use lexer::LineIndex;
use lints::FileContext;
use std::path::{Path, PathBuf};

/// All lint identifiers, in report order. W000 is the meta-lint for
/// malformed/unjustified suppressions and can never be suppressed.
pub const LINT_IDS: [&str; 6] = ["W000", "W001", "W002", "W003", "W004", "W005"];

/// One diagnostic: lint id, repo-relative file, 1-based line, and a
/// rationale that says why the pattern is a hazard *here*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint identifier (`"W001"` … `"W005"`, or `"W000"`).
    pub lint: String,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human rationale.
    pub message: String,
}

/// Result of analyzing one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Findings that survived suppression.
    pub findings: Vec<Finding>,
    /// Findings silenced by a justified `parp-allow`.
    pub suppressed: Vec<Finding>,
}

/// Result of analyzing a file set.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Files scanned.
    pub files_scanned: usize,
    /// Unsuppressed findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Suppressed findings (kept for reporting honesty: the JSON
    /// output records how much is being waved through).
    pub suppressed: Vec<Finding>,
}

/// Which lints apply to a repo-relative path. Scope is deliberately
/// explicit rather than configurable: the point of the tool is that
/// the invariants are *workspace policy*, not per-run options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintScope {
    /// W001 panic-in-serving-path.
    pub w001: bool,
    /// W002 wall-clock-in-sim.
    pub w002: bool,
    /// W003 nondeterministic-iteration.
    pub w003: bool,
    /// W004 unbounded-growth.
    pub w004: bool,
    /// W005 nested-lock discipline.
    pub w005: bool,
}

/// Crates whose non-test code faces untrusted input or serves
/// requests: a reachable panic there is an availability bug.
const W001_SERVING_CRATES: [&str; 8] = [
    "crates/core/src/",
    "crates/net/src/",
    "crates/runtime/src/",
    "crates/gateway/src/",
    "crates/contracts/src/",
    "crates/jsonrpc/src/",
    "crates/analyze/src/",
    "crates/store/src/",
];

/// Modules whose bytes end up under a commitment or in fraud
/// adjudication: iteration order must be deterministic.
const W003_COMMITMENT_PREFIXES: [&str; 1] = ["crates/rlp/src/"];
const W003_COMMITMENT_FILES: [&str; 10] = [
    "crates/core/src/serving_proof.rs",
    "crates/core/src/verify.rs",
    "crates/core/src/misbehavior.rs",
    "crates/contracts/src/cmm.rs",
    "crates/contracts/src/fdm.rs",
    "crates/contracts/src/fndm.rs",
    "crates/contracts/src/batch.rs",
    "crates/contracts/src/message.rs",
    "crates/contracts/src/calls.rs",
    "crates/contracts/src/gas.rs",
];

/// Crates with long-lived structs (nodes, networks, aggregates) where
/// an unbounded buffer is a leak rather than a scratch allocation.
const W004_LONG_LIVED_CRATES: [&str; 8] = [
    "crates/core/src/",
    "crates/net/src/",
    "crates/runtime/src/",
    "crates/gateway/src/",
    "crates/contracts/src/",
    "crates/telemetry/src/",
    "crates/chain/src/",
    "crates/store/src/",
];

/// Paths never scanned: the dependency shims are API mirrors of
/// external crates (their style is not ours to lint), and the bench
/// crate measures hardware by design, so wall-clock use is its job.
const SKIP_PREFIXES: [&str; 2] = ["crates/shims/", "crates/bench/"];

/// Decides which lints apply to `rel` (repo-relative, forward
/// slashes). Returns `None` when the file is out of scope entirely.
pub fn lints_for_file(rel: &str) -> Option<LintScope> {
    if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
        return None;
    }
    let has_prefix = |list: &[&str]| list.iter().any(|p| rel.starts_with(p));
    Some(LintScope {
        w001: has_prefix(&W001_SERVING_CRATES),
        w002: true,
        w003: has_prefix(&W003_COMMITMENT_PREFIXES) || W003_COMMITMENT_FILES.contains(&rel),
        w004: has_prefix(&W004_LONG_LIVED_CRATES),
        w005: true,
    })
}

/// Analyzes one file's source under the given scope.
pub fn analyze_source(rel: &str, src: &str, scope: LintScope) -> FileAnalysis {
    let all_tokens = lexer::lex(src);
    let tokens = walker::significant(&all_tokens);
    let tests = walker::test_regions(&tokens, src);
    let lines = LineIndex::new(src);
    let ctx = FileContext {
        path: rel,
        src,
        tokens: &tokens,
        tests: &tests,
        lines: &lines,
    };

    let mut raw: Vec<Finding> = Vec::new();
    if scope.w001 {
        lints::w001_panic(&ctx, &mut raw);
    }
    if scope.w002 {
        lints::w002_wall_clock(&ctx, &mut raw);
    }
    if scope.w003 {
        lints::w003_nondeterministic_iteration(&ctx, &mut raw);
    }
    if scope.w004 {
        let fields = walker::growable_fields(&tokens, src);
        lints::w004_unbounded_growth(&ctx, &fields, &mut raw);
    }
    if scope.w005 {
        let extents = walker::fn_extents(&tokens, src);
        lints::w005_nested_locks(&ctx, &extents, &mut raw);
    }

    let allows = walker::allows(&all_tokens, src, &lines);
    // W000: a suppression without a justification, or naming an
    // unknown lint, is itself a finding — and can never be allowed.
    for a in &allows {
        if !LINT_IDS.contains(&a.lint.as_str()) {
            raw.push(Finding {
                lint: "W000".to_string(),
                file: rel.to_string(),
                line: a.line,
                message: format!(
                    "`parp-allow({})` names an unknown lint — known ids are W001..W005",
                    a.lint
                ),
            });
        } else if a.reason.is_empty() {
            raw.push(Finding {
                lint: "W000".to_string(),
                file: rel.to_string(),
                line: a.line,
                message: format!(
                    "`parp-allow({})` has no justification — suppressions must say why the pattern is safe here",
                    a.lint
                ),
            });
        }
    }

    let mut out = FileAnalysis::default();
    for f in raw {
        let suppressed = f.lint != "W000"
            && allows.iter().any(|a| {
                a.lint == f.lint
                    && !a.reason.is_empty()
                    && (f.line == a.line || f.line == a.end_line + 1)
            });
        if suppressed {
            out.suppressed.push(f);
        } else {
            out.findings.push(f);
        }
    }
    out
}

/// Recursively collects `.rs` files under `dir`, repo-relative to
/// `root`, sorted for deterministic output.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, path));
        }
    }
}

/// Discovers the workspace file set: `src/` at the root plus every
/// `crates/*/src/` tree, minus the skip list. Test directories are
/// not scanned (only `src/` trees are walked), and `#[cfg(test)]`
/// code inside them is excluded by the walker.
pub fn workspace_files(root: &Path) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    collect_rs(root, &root.join("src"), &mut out);
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            collect_rs(root, &dir.join("src"), &mut out);
        }
    }
    out.retain(|(rel, _)| lints_for_file(rel).is_some());
    out.sort();
    out
}

/// Runs the full pass over the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> Analysis {
    let files = workspace_files(root);
    let mut analysis = Analysis {
        files_scanned: files.len(),
        ..Analysis::default()
    };
    for (rel, path) in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        let Some(scope) = lints_for_file(rel) else {
            continue;
        };
        let fa = analyze_source(rel, &src, scope);
        analysis.findings.extend(fa.findings);
        analysis.suppressed.extend(fa.suppressed);
    }
    let key = |f: &Finding| (f.file.clone(), f.line, f.lint.clone());
    analysis.findings.sort_by_key(key);
    analysis.suppressed.sort_by_key(key);
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope_all() -> LintScope {
        LintScope {
            w001: true,
            w002: true,
            w003: true,
            w004: true,
            w005: true,
        }
    }

    #[test]
    fn justified_allow_suppresses_same_and_next_line() {
        let src = "fn f() {\n    // parp-allow(W001): test fixture demonstrating suppression\n    x.unwrap();\n}";
        let fa = analyze_source("crates/core/src/x.rs", src, scope_all());
        assert!(fa.findings.is_empty(), "{:?}", fa.findings);
        assert_eq!(fa.suppressed.len(), 1);
    }

    #[test]
    fn reasonless_allow_is_w000_and_does_not_suppress() {
        let src = "fn f() {\n    // parp-allow(W001)\n    x.unwrap();\n}";
        let fa = analyze_source("crates/core/src/x.rs", src, scope_all());
        let ids: Vec<_> = fa.findings.iter().map(|f| f.lint.as_str()).collect();
        assert!(ids.contains(&"W000"), "{ids:?}");
        assert!(ids.contains(&"W001"), "{ids:?}");
        assert!(fa.suppressed.is_empty());
    }

    #[test]
    fn unknown_lint_id_is_w000() {
        let src = "// parp-allow(W999): bogus\nfn f() {}";
        let fa = analyze_source("crates/core/src/x.rs", src, scope_all());
        assert_eq!(fa.findings.len(), 1);
        assert_eq!(fa.findings[0].lint, "W000");
    }

    #[test]
    fn allow_for_wrong_lint_does_not_suppress() {
        let src = "fn f() {\n    // parp-allow(W002): wrong lint named\n    x.unwrap();\n}";
        let fa = analyze_source("crates/core/src/x.rs", src, scope_all());
        assert_eq!(fa.findings.len(), 1);
        assert_eq!(fa.findings[0].lint, "W001");
    }

    #[test]
    fn scope_gates_lints_by_path() {
        let shim = lints_for_file("crates/shims/rand/src/lib.rs");
        assert!(shim.is_none());
        let bench = lints_for_file("crates/bench/src/main.rs");
        assert!(bench.is_none());
        let rlp = lints_for_file("crates/rlp/src/encode.rs").unwrap();
        assert!(rlp.w003 && rlp.w002 && !rlp.w001);
        let net = lints_for_file("crates/net/src/sim.rs").unwrap();
        assert!(net.w001 && net.w004 && !net.w003);
        let primitives = lints_for_file("crates/primitives/src/u256.rs").unwrap();
        assert!(!primitives.w001 && primitives.w002 && primitives.w005);
    }
}
