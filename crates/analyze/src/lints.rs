//! The five workspace lints. Each is a token-pattern pass over one
//! file's significant tokens, scoped by [`crate::lints_for_file`] and
//! filtered through test regions and `parp-allow` suppressions by the
//! caller.

use crate::lexer::{LineIndex, Token, TokenKind};
use crate::walker::{self, FnExtent, GrowableField, TestRegions};
use crate::Finding;

/// Everything a lint pass needs to know about one file.
pub struct FileContext<'a> {
    /// Repo-relative path (forward slashes).
    pub path: &'a str,
    /// File contents.
    pub src: &'a str,
    /// Significant (non-comment) tokens.
    pub tokens: &'a [Token],
    /// Test/bench code ranges.
    pub tests: &'a TestRegions,
    /// Offset → line lookup.
    pub lines: &'a LineIndex,
}

impl<'a> FileContext<'a> {
    fn ident_at(&self, i: usize, name: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text(self.src) == name)
    }

    fn any_ident_at(&self, i: usize, names: &[&str]) -> Option<&'a str> {
        self.tokens
            .get(i)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(self.src))
            .filter(|text| names.contains(text))
    }

    fn punct_at(&self, i: usize, c: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text(self.src) == c)
    }

    fn finding(&self, lint: &str, at: &Token, message: String) -> Finding {
        Finding {
            lint: lint.to_string(),
            file: self.path.to_string(),
            line: self.lines.line_of(at.start),
            message,
        }
    }
}

/// **W001 — panic-in-serving-path.** `panic!`, `unreachable!`,
/// `todo!`, `unimplemented!`, `.unwrap()` and `.expect("…")` in
/// non-test code of a permissionless serving path: with untrusted
/// callers a reachable panic is a denial-of-service primitive (one
/// malformed request kills the process for every connected client).
///
/// Heuristic note: `.expect(` only counts when its first argument is a
/// string literal — that is the `Option`/`Result` message idiom, and
/// requiring it avoids false positives on domain methods that happen
/// to be called `expect` (e.g. the JSON parser's `expect(b'{')`).
pub fn w001_panic(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    for i in 0..ctx.tokens.len() {
        let t = &ctx.tokens[i];
        if ctx.tests.contains(t.start) {
            continue;
        }
        if let Some(name) = ctx.any_ident_at(i, &PANIC_MACROS) {
            if ctx.punct_at(i + 1, "!") {
                out.push(ctx.finding(
                    "W001",
                    t,
                    format!("`{name}!` reachable in serving-path code: a panic here is a DoS primitive against every connected client"),
                ));
            }
        }
        if ctx.punct_at(i, ".") {
            if ctx.ident_at(i + 1, "unwrap") && ctx.punct_at(i + 2, "(") {
                out.push(ctx.finding(
                    "W001",
                    &ctx.tokens[i + 1],
                    "`.unwrap()` in serving-path code: return an error instead — adversarial input must never be able to panic the server".to_string(),
                ));
            }
            if ctx.ident_at(i + 1, "expect")
                && ctx.punct_at(i + 2, "(")
                && ctx
                    .tokens
                    .get(i + 3)
                    .is_some_and(|a| a.kind == TokenKind::Str)
            {
                out.push(ctx.finding(
                    "W001",
                    &ctx.tokens[i + 1],
                    "`.expect(\"…\")` in serving-path code: return an error instead — adversarial input must never be able to panic the server".to_string(),
                ));
            }
        }
    }
}

/// **W002 — wall-clock-in-sim.** `Instant::now()` or any `SystemTime`
/// use outside the one injected-clock boundary
/// (`parp_telemetry::time`): the simulator is deterministic by
/// contract — fraud proofs adjudicate exact response bytes and
/// provider aggregates feed reputation — so host time anywhere in a
/// sim-ruled crate silently couples results to scheduling noise.
/// Measure through an injected `TimeSource` instead.
pub fn w002_wall_clock(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for i in 0..ctx.tokens.len() {
        let t = &ctx.tokens[i];
        if ctx.tests.contains(t.start) {
            continue;
        }
        if ctx.ident_at(i, "Instant")
            && ctx.punct_at(i + 1, ":")
            && ctx.punct_at(i + 2, ":")
            && ctx.ident_at(i + 3, "now")
        {
            out.push(ctx.finding(
                "W002",
                t,
                "`Instant::now()` in sim-ruled code: inject a `parp_telemetry::TimeSource` so the measurement is deterministic under the simulated clock".to_string(),
            ));
        }
        if ctx.ident_at(i, "SystemTime") {
            out.push(ctx.finding(
                "W002",
                t,
                "`SystemTime` in sim-ruled code: wall time must come through an injected `parp_telemetry::TimeSource`".to_string(),
            ));
        }
    }
}

/// **W003 — nondeterministic-iteration.** `HashMap`/`HashSet` in a
/// module whose output is committed to bytes (RLP encoding, channel
/// commitments, fraud adjudication): iteration order is randomized
/// per process, so any order-dependent path through one of these maps
/// can produce byte-different commitments for identical state. Use
/// `BTreeMap`/`BTreeSet`, or sort before iterating — presence alone
/// is flagged because a type-blind pass cannot prove which maps are
/// iterated, and in these modules the conservative answer is the
/// right one.
pub fn w003_nondeterministic_iteration(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.tests.contains(t.start) {
            continue;
        }
        if let Some(name) = ctx.any_ident_at(i, &["HashMap", "HashSet"]) {
            out.push(ctx.finding(
                "W003",
                t,
                format!("`{name}` in a byte-commitment module: iteration order is per-process random and can leak into committed bytes — use the BTree equivalent or sort explicitly"),
            ));
        }
    }
}

/// **W004 — unbounded-growth.** A `Vec`/`VecDeque` field on a struct
/// that is pushed to somewhere in the file but never visibly bounded
/// (no pop/truncate/drain/clear/len-check anywhere): on a long-lived
/// struct this is the slow memory leak PR 7 removed from
/// `ProviderAggregate` by hand — every exchange appended a latency
/// sample forever. Either bound the buffer or justify the growth.
pub fn w004_unbounded_growth(
    ctx: &FileContext<'_>,
    fields: &[GrowableField],
    out: &mut Vec<Finding>,
) {
    const PUSH: [&str; 3] = ["push", "push_back", "push_front"];
    const BOUND: [&str; 12] = [
        "pop",
        "pop_front",
        "pop_back",
        "truncate",
        "drain",
        "clear",
        "remove",
        "swap_remove",
        "split_off",
        "retain",
        "dedup",
        "len",
    ];
    for field in fields {
        let mut push_sites: Vec<(usize, &str)> = Vec::new();
        let mut bounded = false;
        for i in 0..ctx.tokens.len() {
            // self . <field> . <method> (
            if ctx.ident_at(i, "self")
                && ctx.punct_at(i + 1, ".")
                && ctx.ident_at(i + 2, &field.field_name)
                && ctx.punct_at(i + 3, ".")
            {
                if let Some(method) = ctx.any_ident_at(i + 4, &PUSH) {
                    if !ctx.tests.contains(ctx.tokens[i].start) {
                        push_sites.push((i + 4, method));
                    }
                }
                if ctx.any_ident_at(i + 4, &BOUND).is_some() {
                    bounded = true;
                }
            }
        }
        if !bounded {
            for (site, method) in push_sites {
                out.push(ctx.finding(
                    "W004",
                    &ctx.tokens[site],
                    format!(
                        "`self.{field}.{method}(…)` grows `{strukt}.{field}` without any visible bound (no pop/truncate/drain/clear/len-check in this file): on a long-lived struct this is a slow memory leak",
                        field = field.field_name,
                        strukt = field.struct_name,
                    ),
                ));
            }
        }
    }
}

/// **W005 — nested-lock discipline.** Two or more `.lock()`
/// acquisitions inside one function body: if any pair can be held
/// simultaneously (or re-entered via a callee) this is a deadlock or
/// poisoned-lock hazard, and even when safe today it is fragile under
/// refactoring. Split the function, drop the first guard explicitly,
/// or justify why the acquisition order is fixed. (`RwLock`
/// `.read()`/`.write()` are not tracked — the names collide with
/// `std::io` — so keep RwLock use single-acquisition per function
/// too.)
pub fn w005_nested_locks(ctx: &FileContext<'_>, extents: &[FnExtent], out: &mut Vec<Finding>) {
    let mut sites: Vec<usize> = Vec::new();
    for i in 0..ctx.tokens.len() {
        if ctx.punct_at(i, ".") && ctx.ident_at(i + 1, "lock") && ctx.punct_at(i + 2, "(") {
            let at = ctx.tokens[i + 1].start;
            if !ctx.tests.contains(at) {
                sites.push(i + 1);
            }
        }
    }
    // Group by innermost enclosing function; flag every acquisition
    // after the first within one body.
    let mut seen: Vec<(String, usize, usize)> = Vec::new(); // (name, start, count)
    for site in sites {
        let offset = ctx.tokens[site].start;
        let Some(extent) = walker::innermost_fn(extents, offset) else {
            continue;
        };
        let entry = seen
            .iter_mut()
            .find(|(name, start, _)| *start == extent.body_start && name == &extent.name);
        let count = match entry {
            Some((_, _, count)) => {
                *count += 1;
                *count
            }
            None => {
                seen.push((extent.name.clone(), extent.body_start, 1));
                1
            }
        };
        if count > 1 {
            out.push(ctx.finding(
                "W005",
                &ctx.tokens[site],
                format!(
                    "lock acquisition #{count} inside `fn {}`: multiple `.lock()` calls in one function risk nested guards and deadlock — split the function, drop the first guard, or justify the ordering",
                    extent.name
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, LineIndex};
    use crate::walker::{fn_extents, growable_fields, significant, test_regions};

    fn run_all(src: &str) -> Vec<Finding> {
        let tokens = significant(&lex(src));
        let tests = test_regions(&tokens, src);
        let lines = LineIndex::new(src);
        let ctx = FileContext {
            path: "test.rs",
            src,
            tokens: &tokens,
            tests: &tests,
            lines: &lines,
        };
        let mut out = Vec::new();
        w001_panic(&ctx, &mut out);
        w002_wall_clock(&ctx, &mut out);
        w003_nondeterministic_iteration(&ctx, &mut out);
        let fields = growable_fields(&tokens, src);
        w004_unbounded_growth(&ctx, &fields, &mut out);
        let extents = fn_extents(&tokens, src);
        w005_nested_locks(&ctx, &extents, &mut out);
        out
    }

    #[test]
    fn expect_requires_string_literal_argument() {
        let findings = run_all("fn f(p: &mut P) { p.expect(b'{')?; q.expect(\"boom\"); }");
        let w001: Vec<_> = findings.iter().filter(|f| f.lint == "W001").collect();
        assert_eq!(w001.len(), 1, "{w001:?}");
        assert_eq!(w001[0].line, 1);
    }

    #[test]
    fn literals_and_comments_never_fire() {
        let findings = run_all(
            "fn f() { let s = \"panic!() unwrap() Instant::now HashMap\"; // .unwrap() SystemTime\n }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let findings = run_all("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(); } }");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn w004_push_without_bound_fires_and_len_check_clears() {
        let unbounded =
            "struct S { log: Vec<u8> }\nimpl S { fn add(&mut self) { self.log.push(1); } }";
        assert_eq!(
            run_all(unbounded)
                .iter()
                .filter(|f| f.lint == "W004")
                .count(),
            1
        );
        let bounded = "struct S { log: Vec<u8> }\nimpl S { fn add(&mut self) { if self.log.len() < 10 { self.log.push(1); } } }";
        assert_eq!(
            run_all(bounded).iter().filter(|f| f.lint == "W004").count(),
            0
        );
    }

    #[test]
    fn w005_two_locks_one_fn() {
        let src = "fn f(a: &M, b: &M) { let x = a.lock(); let y = b.lock(); }";
        let findings = run_all(src);
        let w005: Vec<_> = findings.iter().filter(|f| f.lint == "W005").collect();
        assert_eq!(w005.len(), 1);
        let src_ok = "fn f(a: &M) { let x = a.lock(); }\nfn g(b: &M) { let y = b.lock(); }";
        assert!(run_all(src_ok).iter().all(|f| f.lint != "W005"));
    }
}
