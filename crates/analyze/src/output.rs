//! Report rendering: human-readable text for the terminal and a
//! machine-readable `ANALYSIS.json` for CI artifacts and the
//! experiment pipeline.

use crate::baseline::Comparison;
use crate::{Analysis, Finding, LINT_IDS};
use parp_jsonrpc::Json;

/// One-line descriptions, indexed like [`LINT_IDS`].
pub const LINT_SUMMARIES: [(&str, &str); 6] = [
    ("W000", "suppression without justification"),
    ("W001", "panic-in-serving-path"),
    ("W002", "wall-clock-in-sim"),
    ("W003", "nondeterministic-iteration"),
    ("W004", "unbounded-growth"),
    ("W005", "nested-lock discipline"),
];

fn js(s: &str) -> String {
    Json::String(s.to_string()).to_string_compact()
}

fn finding_json(f: &Finding, indent: &str) -> String {
    format!(
        "{indent}{{ \"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {} }}",
        js(&f.lint),
        js(&f.file),
        f.line,
        js(&f.message)
    )
}

fn finding_list(findings: &[Finding], indent: &str) -> String {
    if findings.is_empty() {
        return "[]".to_string();
    }
    let inner: Vec<String> = findings
        .iter()
        .map(|f| finding_json(f, &format!("{indent}  ")))
        .collect();
    format!("[\n{}\n{indent}]", inner.join(",\n"))
}

/// Renders the machine-readable report. Deterministic: findings are
/// pre-sorted by the caller and lint counts follow [`LINT_IDS`]
/// order, so identical runs produce identical bytes.
pub fn to_json(analysis: &Analysis, comparison: Option<&Comparison>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"parp-analyze/1\",\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n",
        analysis.files_scanned
    ));
    out.push_str("  \"counts\": { ");
    let counts: Vec<String> = LINT_IDS
        .iter()
        .map(|id| {
            let n = analysis.findings.iter().filter(|f| &f.lint == id).count();
            format!("\"{id}\": {n}")
        })
        .collect();
    out.push_str(&counts.join(", "));
    out.push_str(" },\n");
    out.push_str(&format!(
        "  \"suppressed\": {},\n",
        analysis.suppressed.len()
    ));
    out.push_str(&format!(
        "  \"findings\": {}",
        finding_list(&analysis.findings, "  ")
    ));
    if let Some(cmp) = comparison {
        out.push_str(",\n  \"baseline\": {\n");
        out.push_str(&format!(
            "    \"regressions\": {},\n",
            finding_list(&cmp.regressions, "    ")
        ));
        let improvements: Vec<String> = cmp
            .improvements
            .iter()
            .map(|(lint, file, was, now)| {
                format!("      [{}, {}, {was}, {now}]", js(lint), js(file))
            })
            .collect();
        if improvements.is_empty() {
            out.push_str("    \"improvements\": []\n");
        } else {
            out.push_str(&format!(
                "    \"improvements\": [\n{}\n    ]\n",
                improvements.join(",\n")
            ));
        }
        out.push_str("  }");
    }
    out.push_str("\n}\n");
    out
}

/// Renders the human report.
pub fn to_text(analysis: &Analysis, comparison: Option<&Comparison>) -> String {
    let mut out = String::new();
    let shown: &[Finding] = match comparison {
        Some(cmp) => &cmp.regressions,
        None => &analysis.findings,
    };
    for f in shown {
        let name = LINT_SUMMARIES
            .iter()
            .find(|(id, _)| *id == f.lint)
            .map(|(_, name)| *name)
            .unwrap_or("unknown lint");
        out.push_str(&format!(
            "{}:{}: {} [{}] {}\n",
            f.file, f.line, f.lint, name, f.message
        ));
    }
    if let Some(cmp) = comparison {
        for (lint, file, was, now) in &cmp.improvements {
            out.push_str(&format!(
                "improved: {lint} in {file}: {was} -> {now} (run --write-baseline to ratchet)\n"
            ));
        }
    }
    out.push_str(&format!(
        "parp-analyze: {} files, {} findings ({} suppressed by justified parp-allow)",
        analysis.files_scanned,
        analysis.findings.len(),
        analysis.suppressed.len()
    ));
    match comparison {
        Some(cmp) if cmp.passes() => {
            out.push_str(&format!(
                ", {} grandfathered by baseline: PASS\n",
                analysis.findings.len() - cmp.regressions.len()
            ));
        }
        Some(cmp) => {
            out.push_str(&format!(
                ": FAIL — {} new finding(s) beyond the baseline\n",
                cmp.regressions.len()
            ));
        }
        None if analysis.findings.is_empty() => out.push_str(": PASS\n"),
        None => out.push_str(": FAIL (no baseline given)\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Analysis {
        Analysis {
            files_scanned: 2,
            findings: vec![Finding {
                lint: "W001".to_string(),
                file: "crates/x/src/a.rs".to_string(),
                line: 10,
                message: "a \"quoted\" rationale".to_string(),
            }],
            suppressed: Vec::new(),
        }
    }

    #[test]
    fn json_is_parseable_and_escaped() {
        let rendered = to_json(&sample(), None);
        let doc = parp_jsonrpc::parse(&rendered).expect("self-produced JSON must parse");
        assert_eq!(doc.get("files_scanned").and_then(Json::as_f64), Some(2.0));
        let findings = doc.get("findings").and_then(Json::as_array).unwrap();
        assert_eq!(
            findings[0].get("message").and_then(Json::as_str),
            Some("a \"quoted\" rationale")
        );
        let counts = doc.get("counts").unwrap();
        assert_eq!(counts.get("W001").and_then(Json::as_f64), Some(1.0));
        assert_eq!(counts.get("W002").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn text_mentions_location_and_verdict() {
        let text = to_text(&sample(), None);
        assert!(text.contains("crates/x/src/a.rs:10: W001"));
        assert!(text.contains("FAIL"));
        let clean = Analysis {
            files_scanned: 1,
            ..Analysis::default()
        };
        assert!(to_text(&clean, None).contains("PASS"));
    }

    #[test]
    fn baseline_pass_with_grandfathered_findings() {
        let analysis = sample();
        let cmp = Comparison::default();
        let text = to_text(&analysis, Some(&cmp));
        assert!(text.contains("PASS"), "{text}");
        assert!(text.contains("1 grandfathered"), "{text}");
        let json = to_json(&analysis, Some(&cmp));
        let doc = parp_jsonrpc::parse(&json).expect("valid JSON");
        assert!(doc.get("baseline").is_some());
    }
}
