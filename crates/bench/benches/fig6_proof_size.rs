//! Figure 6: Merkle proof size as a function of transaction index across
//! block sizes (paper §VI-C).
//!
//! The paper observes (a) proof size grows with block size, (b) ~1150 B
//! average at 200 transactions, and (c) sawtooth drops at trie radix
//! boundaries (indices whose RLP key encoding is shorter sit in shallower
//! branches). Sizes are printed as a CSV series; the timed portion
//! benches proof generation per block size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parp_bench::chain_with_block_of;
use std::hint::black_box;

const BLOCK_SIZES: [usize; 6] = [50, 100, 200, 300, 400, 500];

fn print_fig6() {
    println!("=== Figure 6: Merkle proof size vs transaction index ===");
    println!("block_size,avg_proof_bytes,min_proof_bytes,max_proof_bytes");
    for &size in &BLOCK_SIZES {
        let (chain, _) = chain_with_block_of(size);
        let block = chain.head();
        let mut total = 0usize;
        let mut min = usize::MAX;
        let mut max = 0usize;
        for index in 0..size {
            let proof = block.transaction_proof(index).expect("in range");
            let bytes: usize = proof.iter().map(Vec::len).sum();
            total += bytes;
            min = min.min(bytes);
            max = max.max(bytes);
        }
        println!("{size},{},{min},{max}", total / size);
    }
    // Index-level series for the 200-tx block (the paper's sawtooth).
    let (chain, _) = chain_with_block_of(200);
    let block = chain.head();
    println!("index_series_200tx(index,proof_bytes):");
    let series: Vec<String> = (0..200)
        .map(|index| {
            let proof = block.transaction_proof(index).expect("in range");
            let bytes: usize = proof.iter().map(Vec::len).sum();
            format!("{index}:{bytes}")
        })
        .collect();
    println!("{}", series.join(","));
}

fn bench_proof_generation(c: &mut Criterion) {
    print_fig6();
    let mut group = c.benchmark_group("fig6/proof_generation");
    group.sample_size(20);
    for &size in &BLOCK_SIZES {
        let (chain, _) = chain_with_block_of(size);
        let block = chain.head().clone();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| black_box(block.transaction_proof(size / 2).expect("in range")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_proof_generation);
criterion_main!(benches);
