//! Chaos-plane resilience bench.
//!
//! Runs the seeded fault-injection scenario ([`run_chaos`]) end to end
//! and emits `BENCH_chaos.json` (a CI artifact alongside
//! `BENCH_gateway.json`): outcome accounting (served / degraded /
//! errored), p50/p99 time-to-recover after transient failures, hedge
//! fire rate, circuit-breaker transitions, and the fault-plane's own
//! counters. The artifact hard-asserts the two invariants that make the
//! numbers meaningful — zero accepted wrong payloads and zero
//! unclassified outcomes (no hangs) — plus byte-identical same-seed
//! replay, so a regression fails the bench job rather than skewing a
//! trend line.

use criterion::{criterion_group, criterion_main, Criterion};
use parp_gateway::{run_chaos, ChaosConfig, ChaosReport};
use std::hint::black_box;

/// Sorted-quantile helper over the recovery samples (µs).
fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Asserts the invariants that every chaos run must uphold, whatever
/// the schedule drew.
fn assert_invariants(report: &ChaosReport) {
    assert_eq!(report.wrong_payloads, 0, "accepted a wrong payload");
    assert_eq!(report.unclassified, 0, "unclassified call outcome");
    assert_eq!(
        report.served + report.degraded + report.errored,
        report.issued,
        "issued calls must be fully accounted for (no hangs)"
    );
    assert!(report.payments_monotone, "payment trajectory regressed");
}

/// Emits `BENCH_chaos.json` from the default chaos schedule (crash +
/// partition + drop/corruption/delay rates + corruption bursts).
fn emit_chaos_artifact() {
    let config = ChaosConfig::default();
    let report = run_chaos(&config);
    assert_invariants(&report);

    // Same-seed replay must be byte-identical before the numbers are
    // worth publishing.
    let replay = run_chaos(&config);
    assert_eq!(report.metrics.to_json(), replay.metrics.to_json());
    assert_eq!(report.payment_digest, replay.payment_digest);
    assert_eq!(report.clock_us, replay.clock_us);
    assert_eq!(report.steps, replay.steps);

    let mut recoveries = report.recoveries_us.clone();
    recoveries.sort_unstable();
    let recover_p50 = quantile_us(&recoveries, 0.50);
    let recover_p99 = quantile_us(&recoveries, 0.99);
    // Bounded p99 time-to-recover: a failover must finish in bounded
    // simulated time (deadline burns + backoff + reconnect), never hang.
    assert!(
        recover_p99 < 2_500_000,
        "p99 time-to-recover unbounded: {recover_p99} µs"
    );

    let quorum_turns = report.issued.div_ceil(config.quorum_every.max(1));
    let hedge_rate = report.hedges_fired as f64 / quorum_turns.max(1) as f64;
    let by_cause = report
        .failovers_by_cause
        .iter()
        .map(|(cause, n)| format!("\"{cause}\":{n}"))
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"bench\":\"chaos_resilience\",\"seed\":{seed},\"issued\":{issued},\
         \"served\":{served},\"degraded\":{degraded},\"errored\":{errored},\
         \"wrong_payloads\":{wrong},\"unclassified\":{unclassified},\
         \"recover_p50_us\":{recover_p50},\"recover_p99_us\":{recover_p99},\
         \"recoveries\":{recoveries},\"retries\":{retries},\
         \"hedges_fired\":{hedges},\"hedge_fire_rate\":{hedge_rate:.3},\
         \"breaker_opens\":{opens},\"breaker_half_opens\":{half_opens},\
         \"failovers_by_cause\":{{{by_cause}}},\
         \"fault_drops\":{drops},\"fault_corruptions\":{corruptions},\
         \"fault_delays\":{delays},\"fault_crashes\":{crashes},\
         \"fault_partitions\":{partitions},\"fault_timeouts\":{timeouts},\
         \"steps\":{steps},\"clock_us\":{clock_us}}}\n",
        seed = config.seed,
        issued = report.issued,
        served = report.served,
        degraded = report.degraded,
        errored = report.errored,
        wrong = report.wrong_payloads,
        unclassified = report.unclassified,
        recoveries = recoveries.len(),
        retries = report.retries,
        hedges = report.hedges_fired,
        opens = report.breaker_opens,
        half_opens = report.breaker_half_opens,
        drops = report.fault_drops,
        corruptions = report.fault_corruptions,
        delays = report.fault_delays,
        crashes = report.fault_crashes,
        partitions = report.fault_partitions,
        timeouts = report.fault_timeouts,
        steps = report.steps,
        clock_us = report.clock_us,
    );
    // Cargo runs bench binaries with the package as cwd; anchor the
    // artifact at the workspace root where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    std::fs::write(path, &json).expect("write BENCH_chaos.json");
    println!("wrote BENCH_chaos.json: {json}");
    println!(
        "chaos outcomes: {}/{} served, {} degraded, {} errored; \
         time-to-recover p50 {recover_p50} µs p99 {recover_p99} µs over {} failovers",
        report.served,
        report.issued,
        report.degraded,
        report.errored,
        recoveries.len()
    );
    println!(
        "resilience machinery: {} retries, {} hedged legs ({hedge_rate:.2} per quorum turn), \
         breaker {}× open / {}× half-open",
        report.retries, report.hedges_fired, report.breaker_opens, report.breaker_half_opens
    );
}

fn bench_chaos(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos_resilience");
    group.sample_size(10);
    // Full chaos run (5 providers, 48 calls, all fault classes armed).
    group.bench_function("run_chaos_default", |b| {
        b.iter(|| black_box(run_chaos(&ChaosConfig::default())))
    });
    // Quiet schedule = the fault plane's bookkeeping overhead alone.
    let quiet = ChaosConfig {
        drop_ppm: 0,
        corrupt_ppm: 0,
        delay_ppm: 0,
        crash: false,
        partition: false,
        corruption_bursts: false,
        ..ChaosConfig::default()
    };
    group.bench_function("run_chaos_quiet", |b| {
        b.iter(|| black_box(run_chaos(&quiet)))
    });
    group.finish();
}

fn run_all(c: &mut Criterion) {
    emit_chaos_artifact();
    bench_chaos(c);
}

criterion_group!(benches, run_all);
criterion_main!(benches);
