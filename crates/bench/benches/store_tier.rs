//! The storage-tier bench: what serving deep history from append-only
//! segments and a byte-budgeted warm tier costs, versus keeping every
//! block resident.
//!
//! Four sections:
//!
//! 1. **Correctness pin** — transaction and receipt proofs served by
//!    the [`ColdProofEngine`] against a pruned chain must be
//!    byte-identical to a plain [`Runtime`] against the fully resident
//!    twin (hard assert).
//! 2. **Cold first touch** — segment read + RLP decode + ordered-trie
//!    rebuild + freeze, on a fresh engine per round.
//! 3. **Rehydrate** — the same lookups against a tightly budgeted tier
//!    whose pages were spilled to disk: spill read + `from_bytes`.
//! 4. **Warm / in-memory** — warm-tier hits and the resident runtime's
//!    inclusion-cache hits, the steady-state serve cost.
//!
//! Emits `BENCH_store.json` at the workspace root (a CI artifact
//! alongside `BENCH_trie.json` and friends) with the latency ladder
//! plus the footprint split: bytes on disk (segments + spill) versus
//! bytes resident under the budget versus the full in-memory set.

use criterion::{criterion_group, criterion_main, Criterion};
use parp_chain::{Blockchain, Transaction, TransferExecutor, MIN_HISTORY_WINDOW};
use parp_core::ProofEngine;
use parp_crypto::SecretKey;
use parp_primitives::{Address, U256};
use parp_runtime::{ColdProofEngine, Runtime, RuntimeConfig};
use parp_store::{scratch_dir, BlockStore, SpillStore};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Blocks past the pruning floor — the pruned span the bench probes.
const DEEP: u64 = 64;
/// Measurement rounds per timed section.
const ROUNDS: u32 = 8;

/// A pruned chain backed by segment files, its fully resident twin,
/// and the scratch directories to clean up afterwards.
struct Fixture {
    cold: Blockchain,
    resident: Blockchain,
    /// Pruned block numbers the bench probes (oldest first).
    probe: Vec<u64>,
    dirs: Vec<PathBuf>,
}

fn fixture() -> Fixture {
    let key = SecretKey::from_seed(b"store-bench");
    let make_tx = |nonce| {
        Transaction {
            nonce,
            gas_price: U256::ZERO,
            gas_limit: 21_000,
            to: Some(Address::from_low_u64_be(0x57_0e)),
            value: U256::ONE,
            data: Vec::new(),
        }
        .sign(&key)
    };
    let alloc = vec![(key.address(), U256::from(1u64) << 64)];
    let mut cold = Blockchain::new(alloc.clone());
    let mut resident = Blockchain::new(alloc);
    let dir = scratch_dir("bench-history").expect("scratch dir");
    let store = BlockStore::open(&dir).expect("open block store");
    cold.attach_history(store, 0).expect("attach history");
    for nonce in 0..MIN_HISTORY_WINDOW + DEEP {
        let tx = make_tx(nonce);
        cold.produce_block(vec![tx.clone()], &mut TransferExecutor)
            .expect("cold block");
        resident
            .produce_block(vec![tx], &mut TransferExecutor)
            .expect("resident block");
    }
    let base = cold.resident_base();
    assert!(base > DEEP, "the probe span must be fully pruned");
    Fixture {
        cold,
        resident,
        probe: (1..=DEEP).collect(),
        dirs: vec![dir],
    }
}

/// A cold engine over a fresh, empty spill directory.
fn fresh_engine(budget: usize, dirs: &mut Vec<PathBuf>) -> ColdProofEngine {
    let dir = scratch_dir("bench-spill").expect("scratch dir");
    let spill = SpillStore::open(&dir).expect("open spill store");
    dirs.push(dir);
    ColdProofEngine::new(budget, spill)
}

/// Section 1: the segment-backed path must be indistinguishable from
/// the resident path on the wire.
fn assert_byte_identical(fx: &mut Fixture) {
    let mut engine = fresh_engine(1, &mut fx.dirs); // spill after every page
    let mut runtime = Runtime::default();
    // Two passes: the second serves from rehydrated pages, which must
    // not change a single byte either.
    for _ in 0..2 {
        for &block in &fx.probe {
            let tx_proof = engine.transaction_proof(&fx.cold, block, 0);
            assert!(!tx_proof.is_empty(), "pruned block {block} must prove");
            assert_eq!(
                tx_proof,
                runtime.transaction_proof(&fx.resident, block, 0),
                "cold transaction proof diverged at block {block}"
            );
            assert_eq!(
                engine.receipt_proof(&fx.cold, block, 0),
                runtime.receipt_proof(&fx.resident, block, 0),
                "cold receipt proof diverged at block {block}"
            );
        }
    }
    assert!(engine.tier().spill_count() > 0, "budget of 1 must spill");
    assert!(engine.tier().rehydrate_count() > 0, "revisits rehydrate");
}

struct Numbers {
    cold_first_us: f64,
    rehydrate_us: f64,
    warm_us: f64,
    inmem_us: f64,
    history_disk_bytes: u64,
    spill_disk_bytes: u64,
    resident_full_bytes: usize,
    budget_bytes: usize,
    budget_resident_bytes: usize,
}

fn measure(fx: &mut Fixture) -> Numbers {
    let per_proof = |elapsed_ns: u128, rounds: u32| {
        elapsed_ns as f64 / 1_000.0 / f64::from(rounds) / fx.probe.len() as f64
    };

    // Cold first touch: a fresh engine (and fresh, empty spill) per
    // round, so every proof pays segment read + rebuild + freeze.
    let mut engines: Vec<ColdProofEngine> = (0..ROUNDS)
        .map(|_| fresh_engine(usize::MAX, &mut fx.dirs))
        .collect();
    let started = Instant::now();
    for engine in &mut engines {
        for &block in &fx.probe {
            black_box(engine.transaction_proof(&fx.cold, block, 0));
        }
    }
    let cold_first_us = per_proof(started.elapsed().as_nanos(), ROUNDS);

    // The unbounded engine now holds every probed page resident: its
    // measured footprint is what "keep deep history in RAM" costs.
    let warm_engine = &mut engines[0];
    let resident_full_bytes = warm_engine.tier().resident_bytes();

    // Warm hits against that engine: the steady-state tier serve.
    let started = Instant::now();
    for _ in 0..ROUNDS {
        for &block in &fx.probe {
            black_box(warm_engine.transaction_proof(&fx.cold, block, 0));
        }
    }
    let warm_us = per_proof(started.elapsed().as_nanos(), ROUNDS);

    // A tier budgeted at one eighth of the full set. The first pass
    // populates and spills; sequential re-scans then always find the
    // probed page on disk (the resident tail is the most recent
    // eighth), so the timed passes measure spill read + `from_bytes`.
    let budget_bytes = (resident_full_bytes / 8).max(1);
    let mut budgeted = fresh_engine(budget_bytes, &mut fx.dirs);
    for &block in &fx.probe {
        black_box(budgeted.transaction_proof(&fx.cold, block, 0));
    }
    let rehydrates_before = budgeted.tier().rehydrate_count();
    let started = Instant::now();
    for _ in 0..ROUNDS {
        for &block in &fx.probe {
            black_box(budgeted.transaction_proof(&fx.cold, block, 0));
        }
    }
    let rehydrate_us = per_proof(started.elapsed().as_nanos(), ROUNDS);
    assert!(
        budgeted.tier().rehydrate_count() > rehydrates_before,
        "the budgeted passes must actually rehydrate"
    );
    let budget_resident_bytes = budgeted.tier().resident_bytes();
    let spill_disk_bytes = budgeted.tier().disk_bytes();

    // The in-memory baseline: a resident chain behind the runtime's
    // inclusion cache, sized so every probe is a cache hit.
    let mut runtime = Runtime::new(RuntimeConfig {
        inclusion_cache_capacity: fx.probe.len() + 8,
        ..RuntimeConfig::default()
    });
    for &block in &fx.probe {
        black_box(runtime.transaction_proof(&fx.resident, block, 0));
    }
    let started = Instant::now();
    for _ in 0..ROUNDS {
        for &block in &fx.probe {
            black_box(runtime.transaction_proof(&fx.resident, block, 0));
        }
    }
    let inmem_us = per_proof(started.elapsed().as_nanos(), ROUNDS);

    Numbers {
        cold_first_us,
        rehydrate_us,
        warm_us,
        inmem_us,
        history_disk_bytes: fx.cold.history_disk_bytes(),
        spill_disk_bytes,
        resident_full_bytes,
        budget_bytes,
        budget_resident_bytes,
    }
}

fn emit_artifact(n: &Numbers, blocks: u64) {
    let warm_vs_cold = n.cold_first_us / n.warm_us.max(1e-9);
    let rehydrate_vs_cold = n.cold_first_us / n.rehydrate_us.max(1e-9);
    let budget_ratio = n.budget_bytes as f64 / n.resident_full_bytes.max(1) as f64;
    let json = format!(
        "{{\"bench\":\"store_tier\",\"blocks\":{blocks},\"probed_pruned_blocks\":{DEEP},\
         \"cold_first_us\":{:.1},\"rehydrate_us\":{:.1},\"warm_us\":{:.1},\
         \"inmem_us\":{:.1},\"warm_vs_cold_speedup\":{warm_vs_cold:.2},\
         \"rehydrate_vs_cold_speedup\":{rehydrate_vs_cold:.2},\
         \"history_disk_bytes\":{},\"spill_disk_bytes\":{},\
         \"resident_full_bytes\":{},\"budget_bytes\":{},\
         \"budget_resident_bytes\":{},\"budget_ratio\":{budget_ratio:.3},\
         \"byte_identical\":true}}\n",
        n.cold_first_us,
        n.rehydrate_us,
        n.warm_us,
        n.inmem_us,
        n.history_disk_bytes,
        n.spill_disk_bytes,
        n.resident_full_bytes,
        n.budget_bytes,
        n.budget_resident_bytes,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    std::fs::write(path, &json).expect("write BENCH_store.json");
    println!("wrote BENCH_store.json: {json}");
    println!(
        "old-block proof serve: cold first touch {:.1} µs | rehydrate {:.1} µs | \
         warm hit {:.1} µs ({warm_vs_cold:.1}× vs cold) | resident baseline {:.1} µs",
        n.cold_first_us, n.rehydrate_us, n.warm_us, n.inmem_us,
    );
    let budget_pct = budget_ratio * 100.0;
    println!(
        "footprint: {} B segments + {} B spill on disk | {} B resident under a {} B budget \
         ({budget_pct:.0}% of the {} B full in-memory set)",
        n.history_disk_bytes,
        n.spill_disk_bytes,
        n.budget_resident_bytes,
        n.budget_bytes,
        n.resident_full_bytes,
    );

    // Hard gates, kept loose enough that VM noise cannot flake CI:
    // the real numbers live in the JSON.
    assert!(
        n.budget_resident_bytes <= n.budget_bytes,
        "the budgeted tier overran its byte budget \
         ({} B resident vs {} B budget)",
        n.budget_resident_bytes,
        n.budget_bytes,
    );
    assert!(
        n.spill_disk_bytes > 0 && n.history_disk_bytes > 0,
        "deep history must actually live on disk"
    );
    assert!(
        n.warm_us <= n.cold_first_us,
        "a warm-tier hit must not lose to a segment rebuild \
         ({:.1} µs vs {:.1} µs)",
        n.warm_us,
        n.cold_first_us,
    );
}

fn bench_store_ops(c: &mut Criterion, fx: &mut Fixture) {
    let mut group = c.benchmark_group("store_tier");
    group.sample_size(10);
    let mut warm = fresh_engine(usize::MAX, &mut fx.dirs);
    let probe = fx.probe.clone();
    group.bench_function("warm_hit_proof", |b| {
        b.iter(|| {
            for &block in &probe {
                black_box(warm.transaction_proof(&fx.cold, block, 0));
            }
        })
    });
    // Budget of 1 keeps only the newest page: alternating two blocks
    // forces a rehydrate on every proof.
    let mut tiny = fresh_engine(1, &mut fx.dirs);
    group.bench_function("rehydrate_proof", |b| {
        b.iter(|| {
            for &block in &probe[..2] {
                black_box(tiny.transaction_proof(&fx.cold, block, 0));
            }
        })
    });
    let mut runtime = Runtime::default();
    group.bench_function("inmem_proof", |b| {
        b.iter(|| {
            for &block in &probe[..2] {
                black_box(runtime.transaction_proof(&fx.resident, block, 0));
            }
        })
    });
    group.finish();
}

fn run_all(c: &mut Criterion) {
    let mut fx = fixture();
    assert_byte_identical(&mut fx);
    let numbers = measure(&mut fx);
    emit_artifact(&numbers, fx.cold.height());
    bench_store_ops(c, &mut fx);
    for dir in fx.dirs.drain(..) {
        let _ = std::fs::remove_dir_all(dir);
    }
}

criterion_group!(benches, run_all);
criterion_main!(benches);
