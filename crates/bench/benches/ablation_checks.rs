//! Ablation: the cost of each individual §V-D verification check, the
//! cryptographic primitives underneath them, and the effect of response
//! proof size on client-side verification.
//!
//! Not a paper table — this supports the DESIGN.md analysis of where
//! PARP's client overhead comes from (signature recovery dominates;
//! Merkle verification scales with proof size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parp_bench::{chain_with_block_of, connected_fixture, read_call, served_exchange};
use parp_contracts::{payment_digest, ParpRequest, ParpResponse, RpcCall};
use parp_crypto::{keccak256, recover_address, sign, verify, SecretKey};
use parp_primitives::U256;
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/primitives");
    let key = SecretKey::from_seed(b"abl");
    let digest = keccak256(b"ablation message");
    let signature = sign(&key, &digest);
    let public = key.public_key();
    group.bench_function("keccak256_1kb", |b| {
        let data = vec![0xabu8; 1024];
        b.iter(|| black_box(keccak256(&data)))
    });
    group.bench_function("ecdsa_sign", |b| b.iter(|| black_box(sign(&key, &digest))));
    group.bench_function("ecdsa_verify", |b| {
        b.iter(|| assert!(verify(&public, &digest, &signature)))
    });
    group.bench_function("ecdsa_recover", |b| {
        b.iter(|| black_box(recover_address(&digest, &signature).expect("recovers")))
    });
    group.finish();
}

fn bench_individual_checks(c: &mut Criterion) {
    let (mut net, node, mut client) = connected_fixture();
    let me = client.address();
    let (request, response, _) = served_exchange(&mut net, node, &mut client, read_call(me));
    let header = net.chain().head().header.clone();

    let mut group = c.benchmark_group("ablation/checks");
    group.bench_function("request_hash_check", |b| {
        b.iter(|| black_box(request.expected_hash() == request.request_hash))
    });
    group.bench_function("response_signature_check", |b| {
        b.iter(|| black_box(response.signer()))
    });
    group.bench_function("channel_id_check", |b| {
        b.iter(|| black_box(response.channel_id == request.channel_id))
    });
    group.bench_function("amount_check", |b| {
        b.iter(|| black_box(response.amount == request.amount))
    });
    group.bench_function("merkle_proof_check", |b| {
        let key = keccak256(me.as_bytes());
        b.iter(|| {
            black_box(
                parp_trie::verify_proof(header.state_root, key.as_bytes(), &response.proof)
                    .expect("verifies"),
            )
        })
    });
    group.bench_function("payment_sig_check", |b| {
        let digest = payment_digest(request.channel_id, &request.amount);
        b.iter(|| black_box(recover_address(&digest, &request.payment_sig).expect("recovers")))
    });
    group.finish();
}

fn bench_proof_size_scaling(c: &mut Criterion) {
    // Client-side Merkle verification cost as the block (and therefore
    // the proof) grows.
    let mut group = c.benchmark_group("ablation/verify_by_block_size");
    let lc = SecretKey::from_seed(b"abl-lc");
    let fnode = SecretKey::from_seed(b"abl-fn");
    for &size in &[50usize, 200, 500] {
        let (chain, _) = chain_with_block_of(size);
        let block = chain.head().clone();
        let index = size / 2;
        let raw = block.transactions[index].encode();
        let request = ParpRequest::build(
            &lc,
            0,
            block.hash(),
            U256::from(10u64),
            RpcCall::SendRawTransaction { raw },
        );
        let proof = block.transaction_proof(index).expect("in range");
        let response = ParpResponse::build(
            &fnode,
            &request,
            block.number(),
            parp_rlp::encode_u64(index as u64),
            proof,
        );
        let root = block.header.transactions_root;
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            let key = parp_rlp::encode_u64(index as u64);
            b.iter(|| {
                black_box(parp_trie::verify_proof(root, &key, &response.proof).expect("verifies"))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_individual_checks,
    bench_proof_size_scaling
);
criterion_main!(benches);
