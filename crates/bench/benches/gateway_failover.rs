//! Gateway failover + quorum-overhead bench.
//!
//! Measures (a) time-to-recover after a provider failure — the
//! simulated-clock gap between a §V-D fraud/invalid detection and the
//! next verified response through the replacement provider — and (b)
//! the overhead of `QuorumRead` fan-out versus single verified reads,
//! in simulated exchange time and in wall-clock serve time. Emits
//! `BENCH_gateway.json` (a CI artifact alongside `BENCH_batch.json`)
//! so both trajectories are tracked per commit.

use criterion::{criterion_group, criterion_main, Criterion};
use parp_contracts::RpcCall;
use parp_gateway::{run_marketplace, Gateway, GatewayConfig, MarketplaceConfig, SelectionPolicy};
use parp_net::Network;
use parp_primitives::{Address, U256};
use std::hint::black_box;
use std::time::Instant;

const QUORUM: usize = 3;
const READS: usize = 16;

/// A network of `n` honest providers with funded read targets and a
/// connected gateway.
fn gateway_fixture(n: usize, policy: SelectionPolicy) -> (Network, Gateway, Vec<Address>) {
    let mut net = Network::with_latency(parp_net::LatencyModel::default());
    for i in 0..n {
        net.spawn_node(
            format!("gwb-node-{i}").as_bytes(),
            U256::from(10 * (i as u64 + 1)),
        );
    }
    let targets: Vec<Address> = (0..8)
        .map(|i| Address::from_low_u64_be(0xBE9C + i))
        .collect();
    net.fund_many(&targets);
    let client = net.spawn_client(b"gwb-client", U256::from(10u64));
    let gateway = Gateway::new(
        client,
        GatewayConfig {
            policy,
            ..GatewayConfig::default()
        },
    );
    (net, gateway, targets)
}

/// Runs `reads` single verified reads; returns (simulated µs, wall µs).
fn run_single_reads(
    net: &mut Network,
    gateway: &mut Gateway,
    targets: &[Address],
    reads: usize,
) -> (u64, u64) {
    let sim_start = net.now_us();
    let wall_start = Instant::now();
    for i in 0..reads {
        let call = RpcCall::GetBalance {
            address: targets[i % targets.len()],
        };
        black_box(gateway.call(net, call).expect("single read"));
    }
    (
        net.now_us() - sim_start,
        wall_start.elapsed().as_micros() as u64,
    )
}

/// Runs `reads` quorum reads of width `k`; returns (simulated µs, wall µs).
fn run_quorum_reads(
    net: &mut Network,
    gateway: &mut Gateway,
    targets: &[Address],
    reads: usize,
    k: usize,
) -> (u64, u64) {
    let sim_start = net.now_us();
    let wall_start = Instant::now();
    for i in 0..reads {
        let call = RpcCall::GetBalance {
            address: targets[i % targets.len()],
        };
        let outcome = gateway.quorum_call(net, call, k).expect("quorum read");
        assert!(outcome.agreed, "honest quorum must agree");
        black_box(outcome);
    }
    (
        net.now_us() - sim_start,
        wall_start.elapsed().as_micros() as u64,
    )
}

/// Emits `BENCH_gateway.json`: recovery times from the marketplace
/// scenario plus the quorum-vs-single overhead figures.
fn emit_gateway_artifact() {
    // Time-to-recover: the default marketplace (cheapest provider
    // fraudulent, churn on) plus a no-churn variant for a clean signal.
    let churned = run_marketplace(&MarketplaceConfig::default());
    let clean = run_marketplace(&MarketplaceConfig {
        churn: false,
        quorum_every: 0,
        ..MarketplaceConfig::default()
    });
    assert!(churned.cheapest_slashed && clean.cheapest_slashed);
    let mut recoveries: Vec<u64> = churned
        .recoveries_us
        .iter()
        .chain(clean.recoveries_us.iter())
        .copied()
        .collect();
    recoveries.sort_unstable();
    let recover_p50 = recoveries[recoveries.len() / 2];

    // Quorum overhead vs single reads, same provider pool, fresh
    // gateways (so channel-opening cost amortizes identically: both
    // paths connect lazily on first use).
    let (mut net, mut gateway, targets) = gateway_fixture(QUORUM, SelectionPolicy::RoundRobin);
    let (single_sim_us, single_wall_us) = run_single_reads(&mut net, &mut gateway, &targets, READS);
    let (mut net, mut gateway, targets) = gateway_fixture(QUORUM, SelectionPolicy::RoundRobin);
    let (quorum_sim_us, quorum_wall_us) =
        run_quorum_reads(&mut net, &mut gateway, &targets, READS, QUORUM);
    let overhead = quorum_sim_us as f64 / single_sim_us.max(1) as f64;

    let recoveries_json = recoveries
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"bench\":\"gateway_failover\",\"recoveries_us\":[{recoveries_json}],\
         \"recover_p50_us\":{recover_p50},\"reads\":{READS},\"quorum\":{QUORUM},\
         \"single_sim_us\":{single_sim_us},\"quorum_sim_us\":{quorum_sim_us},\
         \"single_wall_us\":{single_wall_us},\"quorum_wall_us\":{quorum_wall_us},\
         \"quorum_overhead\":{overhead:.3}}}\n"
    );
    // Cargo runs bench binaries with the package as cwd; anchor the
    // artifact at the workspace root where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gateway.json");
    std::fs::write(path, &json).expect("write BENCH_gateway.json");
    println!("wrote BENCH_gateway.json: {json}");
    println!(
        "time-to-recover after provider failure: p50 {recover_p50} µs over {} events",
        recoveries.len()
    );
    println!(
        "quorum-read overhead (k={QUORUM}): {overhead:.2}× simulated exchange time \
         ({quorum_sim_us} µs vs {single_sim_us} µs for {READS} reads)"
    );
}

fn bench_gateway_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("gateway_failover");
    group.sample_size(10);
    // Steady-state single read through the gateway (channels warm).
    let (mut net, mut gateway, targets) = gateway_fixture(QUORUM, SelectionPolicy::Cheapest);
    run_single_reads(&mut net, &mut gateway, &targets, 2); // warm channels
    let mut i = 0usize;
    group.bench_function("verified_read", |b| {
        b.iter(|| {
            let call = RpcCall::GetBalance {
                address: targets[i % targets.len()],
            };
            i += 1;
            black_box(gateway.call(&mut net, call).expect("read"))
        })
    });
    // Steady-state quorum read (k channels warm).
    let (mut net, mut gateway, targets) = gateway_fixture(QUORUM, SelectionPolicy::RoundRobin);
    run_quorum_reads(&mut net, &mut gateway, &targets, 1, QUORUM); // warm channels
    let mut j = 0usize;
    group.bench_function("quorum_read", |b| {
        b.iter(|| {
            let call = RpcCall::GetBalance {
                address: targets[j % targets.len()],
            };
            j += 1;
            black_box(gateway.quorum_call(&mut net, call, QUORUM).expect("quorum"))
        })
    });
    group.finish();
}

fn run_all(c: &mut Criterion) {
    emit_gateway_artifact();
    bench_gateway_paths(c);
}

criterion_group!(benches, run_all);
criterion_main!(benches);
