//! Table IV: on-chain gas costs of every PARP module action (paper
//! §VI-E), plus USD conversions at the paper's reference prices
//! (ETH = $4000; 12 gwei on mainnet, 0.1 gwei on Arbitrum).
//!
//! Gas is deterministic — printed once — while the timed portion benches
//! on-chain fraud-proof verification (the heaviest module path).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use parp_chain::Blockchain;
use parp_contracts::{
    build_module_call, confirmation_digest, min_deposit, payment_digest, ModuleCall, ParpExecutor,
    ParpRequest, ParpResponse, RpcCall, DISPUTE_WINDOW_BLOCKS,
};
use parp_crypto::{sign, SecretKey};
use parp_primitives::{Address, U256};
use std::hint::black_box;

struct GasEnv {
    chain: Blockchain,
    executor: ParpExecutor,
    node: SecretKey,
    client: SecretKey,
    node_nonce: u64,
    client_nonce: u64,
}

impl GasEnv {
    fn new() -> Self {
        let node = SecretKey::from_seed(b"t4-node");
        let client = SecretKey::from_seed(b"t4-client");
        let funds = U256::from(100u64) * min_deposit();
        GasEnv {
            chain: Blockchain::new(vec![(node.address(), funds), (client.address(), funds)]),
            executor: ParpExecutor::new(),
            node,
            client,
            node_nonce: 0,
            client_nonce: 0,
        }
    }

    fn run_node(&mut self, call: ModuleCall, value: U256) -> u64 {
        let tx = build_module_call(&self.node, self.node_nonce, call, value);
        self.node_nonce += 1;
        self.chain
            .produce_block(vec![tx], &mut self.executor)
            .expect("block");
        assert_eq!(
            self.chain.receipts(self.chain.height()).unwrap()[0].status,
            1,
            "module call must succeed"
        );
        self.chain.head().header.gas_used
    }

    fn run_client(&mut self, call: ModuleCall, value: U256) -> u64 {
        let tx = build_module_call(&self.client, self.client_nonce, call, value);
        self.client_nonce += 1;
        self.chain
            .produce_block(vec![tx], &mut self.executor)
            .expect("block");
        assert_eq!(
            self.chain.receipts(self.chain.height()).unwrap()[0].status,
            1,
            "module call must succeed"
        );
        self.chain.head().header.gas_used
    }

    fn open_channel(&mut self, budget: U256) -> (u64, u64) {
        let expiry = self.chain.head().header.timestamp + 3600;
        let sig = sign(
            &self.node,
            &confirmation_digest(&self.client.address(), expiry),
        );
        let gas = self.run_client(
            ModuleCall::OpenChannel {
                full_node: self.node.address(),
                expiry,
                confirmation_sig: sig,
            },
            budget,
        );
        (gas, self.executor.cmm().channel_count() as u64 - 1)
    }

    fn fraud_proof_call(&mut self, channel_id: u64) -> ModuleCall {
        // Realistic evidence: a balance query answered with a forged
        // account but an honest (thus contradicting) proof.
        let head = self.chain.head().header.clone();
        let request = ParpRequest::build(
            &self.client,
            channel_id,
            head.hash(),
            U256::from(10u64),
            RpcCall::GetBalance {
                address: self.client.address(),
            },
        );
        let state = self.chain.state_at(head.number).expect("head state");
        let proof = state.account_proof(&self.client.address());
        let forged = parp_chain::Account::with_balance(U256::from(1u64));
        let response =
            ParpResponse::build(&self.node, &request, head.number, forged.encode(), proof);
        ModuleCall::SubmitFraudProof {
            request: request.encode(),
            response: response.encode(),
            witness: Address::from_low_u64_be(0x317),
            header: head.encode(),
        }
    }
}

fn usd(gas: u64, gwei: f64) -> f64 {
    gas as f64 * gwei * 1e-9 * 4000.0
}

fn print_table4() {
    let mut env = GasEnv::new();
    let deposit_gas = env.run_node(ModuleCall::Deposit, min_deposit());
    env.run_node(ModuleCall::SetServing { serving: true }, U256::ZERO);
    let (open_gas, id) = env.open_channel(U256::from(1_000_000u64));
    let amount = U256::from(500u64);
    let pay_sig = sign(&env.client, &payment_digest(id, &amount));
    let close_gas = env.run_node(
        ModuleCall::CloseChannel {
            channel_id: id,
            amount,
            payment_sig: pay_sig,
        },
        U256::ZERO,
    );
    for _ in 0..DISPUTE_WINDOW_BLOCKS {
        env.chain
            .produce_block(Vec::new(), &mut env.executor)
            .expect("empty block");
    }
    let confirm_gas = env.run_node(ModuleCall::ConfirmClosure { channel_id: id }, U256::ZERO);
    let (_, id2) = env.open_channel(U256::from(1_000u64));
    let fraud_call = env.fraud_proof_call(id2);
    let fraud_gas = env.run_client(fraud_call, U256::ZERO);

    println!("=== Table IV: on-chain gas costs ===");
    let rows = [
        ("Deposit funds", deposit_gas, 45_238u64),
        ("Open a channel", open_gas, 196_183),
        ("Close a channel", close_gas, 110_118),
        ("Confirm closure", confirm_gas, 87_128),
        ("Submit a fraud proof", fraud_gas, 762_508),
    ];
    for (label, gas, paper) in rows {
        println!(
            "{label:<22} gas {gas:>8} (paper {paper:>7})  mainnet ${:>6.3} (paper-scale)  arbitrum ${:>6.4}",
            usd(gas, 12.0),
            usd(gas, 0.1),
        );
    }
}

fn bench_fraud_proof_verification(c: &mut Criterion) {
    print_table4();
    let mut group = c.benchmark_group("table4");
    group.sample_size(20);
    group.bench_function("submit_fraud_proof_tx", |b| {
        b.iter_batched(
            || {
                let mut env = GasEnv::new();
                env.run_node(ModuleCall::Deposit, min_deposit());
                env.run_node(ModuleCall::SetServing { serving: true }, U256::ZERO);
                let (_, id) = env.open_channel(U256::from(1_000u64));
                let call = env.fraud_proof_call(id);
                let tx = build_module_call(&env.client, env.client_nonce, call, U256::ZERO);
                (env.chain, env.executor, tx)
            },
            |(mut chain, mut executor, tx)| {
                black_box(chain.produce_block(vec![tx], &mut executor).expect("block"));
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("open_channel_tx", |b| {
        b.iter_batched(
            || {
                let mut env = GasEnv::new();
                env.run_node(ModuleCall::Deposit, min_deposit());
                env.run_node(ModuleCall::SetServing { serving: true }, U256::ZERO);
                let expiry = env.chain.head().header.timestamp + 3600;
                let sig = sign(
                    &env.node,
                    &confirmation_digest(&env.client.address(), expiry),
                );
                let call = ModuleCall::OpenChannel {
                    full_node: env.node.address(),
                    expiry,
                    confirmation_sig: sig,
                };
                let tx =
                    build_module_call(&env.client, env.client_nonce, call, U256::from(1_000u64));
                (env.chain, env.executor, tx)
            },
            |(mut chain, mut executor, tx)| {
                black_box(chain.produce_block(vec![tx], &mut executor).expect("block"));
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_fraud_proof_verification);
criterion_main!(benches);
