//! The `parp-runtime` throughput bench: what the serving runtime buys a
//! full node under heavy read traffic.
//!
//! Three questions, three sections:
//!
//! 1. **Cold vs warm snapshot cache** — `FullNode::handle_batch` at a
//!    10k-account head, paying a full trie rebuild per batch (the
//!    pre-runtime behaviour) versus reusing the cached `Arc`-shared
//!    trie. The measured warm speedup is asserted ≥ 5×.
//! 2. **Shard sweep** — multiproof generation for a 256-key batch at
//!    1/2/4/8 shards, with byte-identical output asserted along the way.
//! 3. **Fairness under contention** — the `parp-net` over-capacity
//!    scenario: a flooding client against honest clients, admitted
//!    calls and latency per class, contended vs uncontended.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parp_bench::bench_price;
use parp_chain::{Blockchain, State};
use parp_contracts::{
    build_module_call, min_deposit, ModuleCall, ParpBatchRequest, ParpExecutor, RpcCall,
};
use parp_core::{FullNode, ProofEngine};
use parp_crypto::{keccak256, SecretKey};
use parp_net::{run_contention, ContentionConfig};
use parp_primitives::{Address, U256};
use parp_runtime::{sharded_account_multiproof, Runtime, RuntimeConfig};
use std::cell::Cell;
use std::hint::black_box;
use std::time::Instant;

const ACCOUNTS: usize = 10_000;
const BATCH: usize = 64;

/// The pre-runtime serving behaviour: every proof request rebuilds the
/// state trie from scratch.
struct ColdEngine;

impl ProofEngine for ColdEngine {
    fn account_multiproof(&mut self, state: &State, addresses: &[Address]) -> Vec<Vec<u8>> {
        state.build_trie().prove_many(
            addresses
                .iter()
                .map(|a| keccak256(a.as_bytes()).as_bytes().to_vec()),
        )
    }

    fn account_proof(&mut self, state: &State, address: &Address) -> Vec<Vec<u8>> {
        state
            .build_trie()
            .prove(keccak256(address.as_bytes()).as_bytes())
    }
}

/// A serving node over a chain whose genesis holds `accounts` funded
/// accounts (no per-account funding blocks), with one open channel.
fn serving_fixture(
    accounts: usize,
) -> (
    Blockchain,
    ParpExecutor,
    FullNode,
    SecretKey,
    u64,
    Vec<Address>,
) {
    let node_key = SecretKey::from_seed(b"rt-bench-node");
    let client_key = SecretKey::from_seed(b"rt-bench-client");
    let funds = U256::from(10u64) * min_deposit();
    let addresses: Vec<Address> = (0..accounts)
        .map(|i| Address::from_low_u64_be(0xA000_0000 + i as u64))
        .collect();
    let mut alloc: Vec<(Address, U256)> = addresses
        .iter()
        .enumerate()
        .map(|(i, a)| (*a, U256::from(1_000 + i as u64)))
        .collect();
    alloc.push((node_key.address(), funds));
    alloc.push((client_key.address(), funds));
    let mut chain = Blockchain::new(alloc);
    let mut executor = ParpExecutor::new();
    chain
        .produce_block(
            vec![build_module_call(
                &node_key,
                0,
                ModuleCall::Deposit,
                min_deposit(),
            )],
            &mut executor,
        )
        .expect("deposit");
    chain
        .produce_block(
            vec![build_module_call(
                &node_key,
                1,
                ModuleCall::SetServing { serving: true },
                U256::ZERO,
            )],
            &mut executor,
        )
        .expect("serving");
    let node = FullNode::new(node_key, bench_price());
    let confirm = node.confirm_handshake(client_key.address(), chain.head().header.timestamp);
    let open = build_module_call(
        &client_key,
        0,
        ModuleCall::OpenChannel {
            full_node: node.address(),
            expiry: confirm.expiry,
            confirmation_sig: confirm.signature,
        },
        U256::from(1u64) << 60,
    );
    chain
        .produce_block(vec![open], &mut executor)
        .expect("open");
    (chain, executor, node, client_key, 0, addresses)
}

fn build_batch(
    client: &SecretKey,
    chain: &Blockchain,
    channel: u64,
    amount: &Cell<u64>,
    targets: &[Address],
) -> ParpBatchRequest {
    amount.set(amount.get() + 10 * targets.len() as u64);
    ParpBatchRequest::build(
        client,
        channel,
        chain.head().hash(),
        U256::from(amount.get()),
        targets
            .iter()
            .map(|a| RpcCall::GetBalance { address: *a })
            .collect(),
    )
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let (mut chain, mut executor, mut node, client, channel, addresses) = serving_fixture(ACCOUNTS);
    let targets = &addresses[..BATCH];
    let amount = Cell::new(0u64);
    let mut runtime = Runtime::new(RuntimeConfig::default());

    // Direct speedup measurement over a fixed number of serves, in
    // addition to the per-path criterion medians below.
    let measure = |engine: &mut dyn ProofEngine,
                   node: &mut FullNode,
                   chain: &mut Blockchain,
                   executor: &mut ParpExecutor,
                   amount: &Cell<u64>,
                   rounds: u32| {
        let started = Instant::now();
        for _ in 0..rounds {
            let request = build_batch(&client, chain, channel, amount, targets);
            black_box(
                node.handle_batch_with(&request, chain, executor, engine)
                    .expect("serve"),
            );
        }
        started.elapsed() / rounds
    };
    // Warm the cache once so the warm path measures steady state.
    let _ = measure(
        &mut runtime,
        &mut node,
        &mut chain,
        &mut executor,
        &amount,
        1,
    );
    let warm = measure(
        &mut runtime,
        &mut node,
        &mut chain,
        &mut executor,
        &amount,
        10,
    );
    let cold = measure(
        &mut ColdEngine,
        &mut node,
        &mut chain,
        &mut executor,
        &amount,
        3,
    );
    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-12);
    println!(
        "runtime_throughput/cold_vs_warm | {ACCOUNTS} accounts, {BATCH}-call batch | \
         cold {cold:?}/batch  warm {warm:?}/batch  speedup {speedup:.1}x"
    );
    assert!(
        speedup >= 5.0,
        "warm snapshot cache must be >= 5x faster than per-batch rebuilds, got {speedup:.1}x"
    );

    let mut group = c.benchmark_group("runtime_throughput/handle_batch");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("cold_rebuild", ACCOUNTS), |b| {
        b.iter(|| {
            let request = build_batch(&client, &chain, channel, &amount, targets);
            black_box(
                node.handle_batch_with(&request, &mut chain, &mut executor, &mut ColdEngine)
                    .expect("serve"),
            )
        })
    });
    group.bench_function(BenchmarkId::new("warm_cache", ACCOUNTS), |b| {
        b.iter(|| {
            let request = build_batch(&client, &chain, channel, &amount, targets);
            black_box(
                node.handle_batch_with(&request, &mut chain, &mut executor, &mut runtime)
                    .expect("serve"),
            )
        })
    });
    group.finish();
}

/// Where does a warm-cache batch serve spend its time — envelope crypto
/// (two signature recoveries) or trie work (snapshot multiproof)? The
/// split tells future PRs which side of the pipeline is the bottleneck.
/// Before the arena-flattened `FrozenTrie` the multiproof leg held ~42%
/// of a warm serve; the walk-by-ids path must keep it under 35%.
fn report_crypto_vs_trie_split() {
    let (mut chain, mut executor, mut node, client, channel, addresses) = serving_fixture(ACCOUNTS);
    let targets = &addresses[..BATCH];
    let amount = Cell::new(0u64);
    let mut runtime = Runtime::new(RuntimeConfig::default());
    // Warm the snapshot cache, then measure steady state.
    let warm = build_batch(&client, &chain, channel, &amount, targets);
    node.handle_batch_with(&warm, &mut chain, &mut executor, &mut runtime)
        .expect("warm serve");
    const ROUNDS: u32 = 10;
    // Crypto share: the envelope checks (request + payment signature
    // recoveries) — the same request re-verifies cheaply because
    // verification does not consume channel state.
    let request = build_batch(&client, &chain, channel, &amount, targets);
    let started = Instant::now();
    for _ in 0..ROUNDS {
        black_box(node.verify_batch_request(&request, &executor)).expect("verify");
    }
    let crypto = started.elapsed() / ROUNDS;
    // Trie share: the deduplicated multiproof off the cached snapshot.
    let state = chain.state_at(chain.height()).expect("head state");
    let started = Instant::now();
    for _ in 0..ROUNDS {
        black_box(runtime.account_multiproof(state, targets));
    }
    let trie = started.elapsed() / ROUNDS;
    // Whole serve (verify + execute + multiproof + response signing).
    let started = Instant::now();
    for _ in 0..ROUNDS {
        let request = build_batch(&client, &chain, channel, &amount, targets);
        black_box(
            node.handle_batch_with(&request, &mut chain, &mut executor, &mut runtime)
                .expect("serve"),
        );
    }
    let total = started.elapsed() / ROUNDS;
    let share =
        |part: std::time::Duration| 100.0 * part.as_secs_f64() / total.as_secs_f64().max(1e-12);
    println!(
        "runtime_throughput/crypto_vs_trie | warm {BATCH}-call batch: total {total:?} | \
         envelope crypto {crypto:?} ({:.0}%)  snapshot multiproof {trie:?} ({:.0}%)  \
         other (execute + response sign + build) {:.0}%",
        share(crypto),
        share(trie),
        100.0 - share(crypto) - share(trie),
    );
    assert!(
        share(trie) < 35.0,
        "snapshot multiproof share {:.0}% regressed past the 35% ceiling \
         (pre-arena it held ~42% of a warm serve)",
        share(trie)
    );
}

fn bench_shard_sweep(c: &mut Criterion) {
    let (chain, _executor, _node, _client, _channel, addresses) = serving_fixture(ACCOUNTS);
    let state = chain.state_at(chain.height()).expect("head state");
    let trie = state.shared_trie();
    let targets = &addresses[..256];
    let reference = sharded_account_multiproof(&trie, targets, 1);
    let mut group = c.benchmark_group("runtime_throughput/shards");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        let proof = sharded_account_multiproof(&trie, targets, shards);
        assert_eq!(
            proof, reference,
            "shard count {shards} must be byte-identical"
        );
        group.bench_with_input(
            BenchmarkId::new("multiproof_256", shards),
            &shards,
            |b, &s| b.iter(|| black_box(sharded_account_multiproof(&trie, targets, s))),
        );
    }
    group.finish();
}

fn report_contention() {
    let contended = run_contention(&ContentionConfig::default());
    let baseline = run_contention(&ContentionConfig {
        flood_rate_per_sec: 0,
        ..ContentionConfig::default()
    });
    let config = ContentionConfig::default();
    println!(
        "runtime_throughput/contention | flooder: attempted {} admitted {} throttled {} calls \
         (bucket {} + {}/s over {}ms)",
        contended.flooder.attempted_calls,
        contended.flooder.admitted_calls,
        contended.flooder.throttled_calls,
        config.admission_burst,
        config.admission_rate_per_sec,
        config.duration_ms,
    );
    println!(
        "runtime_throughput/contention | honest mean latency: contended {} µs vs uncontended {} µs \
         | honest served calls: {} vs {}",
        contended.honest_mean_latency_us(),
        baseline.honest_mean_latency_us(),
        contended.honest_served_calls(config.batch_size),
        baseline.honest_served_calls(config.batch_size),
    );
}

fn run_all(c: &mut Criterion) {
    bench_cold_vs_warm(c);
    report_crypto_vs_trie_split();
    bench_shard_sweep(c);
    report_contention();
}

criterion_group!(benches, run_all);
criterion_main!(benches);
