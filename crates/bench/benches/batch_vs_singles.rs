//! Batched pipeline vs. single calls: N `eth_getBalance` reads served as
//! N single PARP exchanges (N signature checks, N per-call proofs) versus
//! one N-item batch (one signature check, one snapshot, one deduplicated
//! multiproof).
//!
//! Reports server-side processing time per shape, and prints the
//! bytes-on-wire comparison (request + response + proof) once at startup.
//! The companion tier-1 test `tests/batching.rs` asserts the wins; this
//! bench quantifies them.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use parp_bench::{bench_price, populated_fixture, read_call};
use parp_contracts::{ParpBatchRequest, ParpRequest, RpcCall};
use parp_primitives::U256;
use std::cell::Cell;
use std::hint::black_box;
use std::time::Instant;

const ACCOUNTS: usize = 128;
const BATCH_SIZES: [usize; 3] = [8, 16, 64];

/// Builds `n` single requests continuing the channel's cumulative amount
/// from `*amount` (each offering `price` more than the last).
fn build_singles(
    client: &parp_core::LightClient,
    amount: &Cell<u64>,
    calls: &[RpcCall],
) -> Vec<ParpRequest> {
    let channel = client.channel().expect("bonded");
    let tip = client.tip().expect("synced").hash();
    calls
        .iter()
        .map(|call| {
            amount.set(amount.get() + 10);
            ParpRequest::build(
                client.secret(),
                channel.id,
                tip,
                U256::from(amount.get()),
                call.clone(),
            )
        })
        .collect()
}

/// Builds one batch request covering `calls`, continuing from `*amount`.
fn build_batch(
    client: &parp_core::LightClient,
    amount: &Cell<u64>,
    calls: &[RpcCall],
) -> ParpBatchRequest {
    let channel = client.channel().expect("bonded");
    let tip = client.tip().expect("synced").hash();
    amount.set(amount.get() + 10 * calls.len() as u64);
    ParpBatchRequest::build(
        client.secret(),
        channel.id,
        tip,
        U256::from(amount.get()),
        calls.to_vec(),
    )
}

fn print_wire_comparison() {
    let (mut net, node, client, addresses) = populated_fixture(ACCOUNTS);
    // One cumulative-payment counter across every shape: the channel's
    // committed amount only ever grows.
    let amount = Cell::new(0u64);
    for n in BATCH_SIZES {
        let calls: Vec<RpcCall> = addresses[..n].iter().map(|a| read_call(*a)).collect();
        let singles = build_singles(&client, &amount, &calls);
        let mut single_req = 0usize;
        let mut single_res = 0usize;
        let mut single_proof = 0usize;
        for request in &singles {
            let response = net.serve(node, request).expect("single serve");
            single_req += request.encode().len();
            single_res += response.encode().len();
            single_proof += response.proof_bytes();
        }
        let batch = build_batch(&client, &amount, &calls);
        let response = net.serve_batch(node, &batch).expect("batch serve");
        let (batch_req, batch_res, batch_proof) = (
            batch.encode().len(),
            response.encode().len(),
            response.proof_bytes(),
        );
        println!(
            "wire bytes, {n:>3} GetBalance calls | singles: req {single_req:>6}  res {single_res:>6}  \
             proof {single_proof:>6} | batch: req {batch_req:>6}  res {batch_res:>6}  proof {batch_proof:>6} \
             | proof saved {:.1}%",
            100.0 * (1.0 - batch_proof as f64 / single_proof.max(1) as f64),
        );
    }
}

fn bench_server_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_vs_singles/server_time");
    group.sample_size(20);
    for n in BATCH_SIZES {
        // Singles: N envelope verifications, N per-call trie walks.
        let (mut net, node, client, addresses) = populated_fixture(ACCOUNTS);
        let calls: Vec<RpcCall> = addresses[..n].iter().map(|a| read_call(*a)).collect();
        let amount = Cell::new(0u64);
        group.bench_with_input(BenchmarkId::new("singles", n), &n, |b, _| {
            b.iter_batched(
                || build_singles(&client, &amount, &calls),
                |requests| {
                    for request in &requests {
                        black_box(net.serve(node, request).expect("single serve"));
                    }
                },
                BatchSize::SmallInput,
            )
        });
        // Batch: one envelope verification, one snapshot, one multiproof.
        let (mut net, node, client, addresses) = populated_fixture(ACCOUNTS);
        let calls: Vec<RpcCall> = addresses[..n].iter().map(|a| read_call(*a)).collect();
        let amount = Cell::new(0u64);
        group.bench_with_input(BenchmarkId::new("batch", n), &n, |b, _| {
            b.iter_batched(
                || build_batch(&client, &amount, &calls),
                |request| black_box(net.serve_batch(node, &request).expect("batch serve")),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_client_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_vs_singles/client_verify");
    group.sample_size(20);
    let n = 64usize;
    // Pre-serve one batch exchange, then time the client-side
    // classification (one signature recovery + one multiproof walk).
    let (mut net, node, mut client, addresses) = populated_fixture(ACCOUNTS);
    let calls: Vec<RpcCall> = addresses[..n].iter().map(|a| read_call(*a)).collect();
    let request = client.request_batch(calls).expect("batch request");
    let response = net.serve_batch(node, &request).expect("batch serve");
    net.sync_client(&mut client);
    let full_node = net.node(node).address();
    let request_height = client.tip().expect("synced").number;
    let headers: Vec<_> = (0..=request_height)
        .filter_map(|h| client.header(h).cloned())
        .collect();
    group.bench_function(BenchmarkId::new("classify_batch", n), |b| {
        b.iter(|| {
            black_box(parp_core::classify_batch_response(
                &request,
                &response,
                full_node,
                request_height,
                |h| headers.get(h as usize).cloned(),
            ))
        })
    });
    group.finish();
}

/// One measured batch shape for the `BENCH_batch.json` artifact.
struct BatchSample {
    n: usize,
    distinct_blocks: usize,
    proof_bytes: usize,
    header_bytes: usize,
    response_bytes: usize,
    serve_us: u64,
}

impl BatchSample {
    fn to_json(&self) -> String {
        format!(
            "{{\"n\":{},\"distinct_blocks\":{},\"proof_bytes\":{},\"header_bytes\":{},\
             \"response_bytes\":{},\"serve_us\":{}}}",
            self.n,
            self.distinct_blocks,
            self.proof_bytes,
            self.header_bytes,
            self.response_bytes,
            self.serve_us
        )
    }
}

/// Serves `calls` as one batch a few times, recording proof/header bytes
/// and the fastest server-side serve time.
fn measure_batch(
    net: &mut parp_net::Network,
    node: parp_net::NodeId,
    client: &parp_core::LightClient,
    amount: &Cell<u64>,
    calls: &[RpcCall],
) -> BatchSample {
    let mut serve_us = u64::MAX;
    let mut last_response = None;
    for _ in 0..5 {
        let request = build_batch(client, amount, calls);
        let started = Instant::now();
        let response = net.serve_batch(node, &request).expect("batch serve");
        serve_us = serve_us.min(started.elapsed().as_micros() as u64);
        last_response = Some(response);
    }
    // Byte metrics are identical across iterations; compute them once.
    let response = last_response.expect("at least one serve");
    BatchSample {
        n: calls.len(),
        distinct_blocks: response.referenced_blocks().len(),
        proof_bytes: response.proof_bytes(),
        header_bytes: response.header_bytes(),
        response_bytes: response.encode().len(),
        serve_us,
    }
}

/// Writes `BENCH_batch.json`: proof bytes + serve time for single-block
/// (pure state reads) vs multi-block (state + historical inclusion)
/// batches, so CI tracks the multi-header envelope's perf trajectory.
fn emit_batch_artifact() {
    let (mut net, node, client, addresses) = populated_fixture(ACCOUNTS);
    // Funding mined one faucet transfer per account: a deep supply of
    // historical inclusion targets across distinct blocks.
    let lookups = net.transaction_locations();
    let amount = Cell::new(0u64);
    let mut single_block = Vec::new();
    let mut multi_block = Vec::new();
    for n in BATCH_SIZES {
        // Single-block: N balance reads against the snapshot.
        let state_calls: Vec<RpcCall> = addresses[..n].iter().map(|a| read_call(*a)).collect();
        single_block.push(measure_batch(
            &mut net,
            node,
            &client,
            &amount,
            &state_calls,
        ));
        // Multi-block: half state reads, half historical lookups spread
        // over distinct containing blocks.
        let mixed_calls: Vec<RpcCall> = addresses[..n / 2]
            .iter()
            .map(|a| read_call(*a))
            .chain(
                lookups
                    .iter()
                    .take(n - n / 2)
                    .enumerate()
                    .map(|(i, (hash, _))| match i % 2 {
                        0 => RpcCall::GetTransactionByHash { hash: *hash },
                        _ => RpcCall::GetTransactionReceipt { hash: *hash },
                    }),
            )
            .collect();
        multi_block.push(measure_batch(
            &mut net,
            node,
            &client,
            &amount,
            &mixed_calls,
        ));
    }
    let join = |samples: &[BatchSample]| {
        samples
            .iter()
            .map(BatchSample::to_json)
            .collect::<Vec<_>>()
            .join(",")
    };
    let json = format!(
        "{{\"bench\":\"batch_vs_singles\",\"accounts\":{ACCOUNTS},\
         \"single_block\":[{}],\"multi_block\":[{}]}}\n",
        join(&single_block),
        join(&multi_block),
    );
    // Cargo runs bench binaries with the package as cwd; anchor the
    // artifact at the workspace root where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    std::fs::write(path, &json).expect("write BENCH_batch.json");
    println!("wrote BENCH_batch.json: {json}");
}

fn run_all(c: &mut Criterion) {
    // Touch bench_price so the shared fixture constants stay in sync.
    assert_eq!(bench_price(), U256::from(10u64));
    print_wire_comparison();
    emit_batch_artifact();
    bench_server_time(c);
    bench_client_verification(c);
}

criterion_group!(benches, run_all);
criterion_main!(benches);
