//! Figure 7: CPU and memory of a PARP full node vs a standard node as the
//! number of concurrent light clients grows (paper §VI-F).
//!
//! The paper's full setup (2 req/s × 2 min × up to 20 clients) runs in
//! the `report` binary; this bench uses a reduced request count per point
//! so Criterion iterations stay tractable, and prints the resulting
//! ratio series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parp_net::{run_scalability_point, ScalabilityConfig};
use std::hint::black_box;

fn config() -> ScalabilityConfig {
    ScalabilityConfig {
        requests_per_client: 10,
        read_fraction: 0.9,
        seed: 0xF167,
    }
}

fn print_fig7() {
    println!("=== Figure 7 (reduced): PARP vs standard node ===");
    println!("clients,requests,parp_cpu_us,base_cpu_us,cpu_ratio,parp_mem_B,base_mem_B,mem_ratio");
    for &clients in &[1usize, 5, 10, 20] {
        let point = run_scalability_point(clients, &config());
        println!(
            "{},{},{},{},{:.2},{},{},{:.2}",
            point.clients,
            point.requests,
            point.parp_cpu_us,
            point.base_cpu_us,
            point.cpu_ratio(),
            point.parp_mem_bytes,
            point.base_mem_bytes,
            point.mem_ratio()
        );
    }
    println!("(paper at 20 clients: cpu_ratio 3.43, mem_ratio 2.38)");
}

fn bench_scalability(c: &mut Criterion) {
    print_fig7();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for &clients in &[1usize, 5] {
        group.bench_with_input(
            BenchmarkId::new("serve_round", clients),
            &clients,
            |b, &clients| {
                b.iter(|| black_box(run_scalability_point(clients, &config())));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
