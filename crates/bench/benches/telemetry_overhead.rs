//! The observability bill: what attaching `parp-telemetry` costs on
//! the warm 64-call batch serve path, plus the captured sample trace.
//!
//! Three sections:
//!
//! 1. **Overhead** — identical warm-cache batch serving worlds, one
//!    bare and one with a telemetry registry attached (counters +
//!    histograms live, tracer disabled — the always-on production
//!    configuration). Min-of-rounds wall time per world; the relative
//!    overhead is **asserted < 5%**.
//! 2. **Tracer-enabled cost** — the same path with span recording
//!    live, reported informationally (tracing is an opt-in capture
//!    mode, not an always-on cost).
//! 3. **Sample trace** — a full marketplace run (fraudulent cheapest
//!    provider, churn, quorum reads) captured through the tracer and
//!    written to `TRACE_sample.json` at the workspace root: drop it on
//!    `ui.perfetto.dev` to see sign → flight → serve (verify /
//!    multiproof / respond) → classify per exchange and the fraud →
//!    slash → reselect → replay failover sequence. The failover
//!    ordering is hard-asserted before the file is written.
//!
//! Emits `BENCH_obs.json` at the workspace root (a CI artifact
//! alongside `BENCH_trie.json` and friends).

use criterion::{criterion_group, criterion_main, Criterion};
use parp_contracts::{ParpBatchRequest, RpcCall};
use parp_gateway::{run_marketplace, MarketplaceConfig};
use parp_net::{LatencyModel, Network, NodeId};
use parp_primitives::{Address, U256};
use parp_telemetry::Telemetry;
use std::hint::black_box;
use std::time::Instant;

/// Calls per batch (the paper's batch evaluation size).
const BATCH: usize = 64;
/// Timed rounds per world; min-of-rounds defeats VM noise.
const ROUNDS: usize = 12;
/// Batches served per timed round.
const PER_ROUND: usize = 8;
/// The asserted overhead budget for metrics-on serving, in percent.
const BUDGET_PCT: f64 = 5.0;

/// One warm serving world: a zero-latency network, a funded account
/// set, a bonded channel, and every batch request pre-built and
/// pre-signed (request construction is client-side work; the measured
/// path is the node's serve: verify → snapshot cache → sharded
/// multiproof → sign).
struct World {
    net: Network,
    node: NodeId,
    requests: Vec<ParpBatchRequest>,
    next: usize,
}

impl World {
    fn new(seed: &str, telemetry: Option<&Telemetry>) -> Self {
        let price = U256::from(10u64);
        let mut net = Network::with_latency(LatencyModel::zero());
        if let Some(t) = telemetry {
            net.attach_telemetry(t);
        }
        let node = net.spawn_node(format!("obs-node-{seed}").as_bytes(), price);
        let targets: Vec<Address> = (0..32)
            .map(|i| Address::from_low_u64_be(0x0B5_0000 + i))
            .collect();
        net.fund_many(&targets);
        let mut client = net.spawn_client(format!("obs-client-{seed}").as_bytes(), price);
        let channel_id = net
            .connect(&mut client, node, U256::from(1u64) << 60)
            .expect("connect");
        let tip = client.tip().expect("synced").hash();
        let secret = *client.secret();
        // One warmup batch plus every timed batch, amounts cumulative.
        let mut amount = U256::ZERO;
        let requests: Vec<ParpBatchRequest> = (0..=ROUNDS * PER_ROUND)
            .map(|r| {
                let calls: Vec<RpcCall> = (0..BATCH)
                    .map(|i| RpcCall::GetBalance {
                        address: targets[(r * 7 + i) % targets.len()],
                    })
                    .collect();
                amount += price * U256::from(BATCH as u64);
                ParpBatchRequest::build(&secret, channel_id, tip, amount, calls)
            })
            .collect();
        World {
            net,
            node,
            requests,
            next: 0,
        }
    }

    /// Serves the next pre-built batch (panics when the schedule runs
    /// dry — a bench sizing bug, not a runtime condition).
    fn serve_one(&mut self) {
        let request = &self.requests[self.next];
        self.next += 1;
        let response = self.net.serve_batch(self.node, request).expect("serves");
        black_box(response.results.len());
    }

    /// One timed round of `PER_ROUND` warm batch serves, in µs.
    fn round_us(&mut self) -> f64 {
        let started = Instant::now();
        for _ in 0..PER_ROUND {
            self.serve_one();
        }
        started.elapsed().as_micros() as f64
    }
}

struct Numbers {
    bare_us: f64,
    metrics_us: f64,
    tracing_us: f64,
    overhead_pct: f64,
    tracing_pct: f64,
    metric_entries: usize,
    trace_events: usize,
}

fn measure() -> Numbers {
    let metrics_telemetry = Telemetry::new();
    let tracing_telemetry = Telemetry::with_tracing();
    let mut bare = World::new("bare", None);
    let mut with_metrics = World::new("metrics", Some(&metrics_telemetry));
    let mut with_tracing = World::new("tracing", Some(&tracing_telemetry));
    // Warm every world's snapshot cache before the first timed round.
    bare.serve_one();
    with_metrics.serve_one();
    with_tracing.serve_one();

    // Interleave the rounds so drift (thermal, scheduler) hits all
    // three worlds alike; keep the per-world minimum.
    let mut bare_us = f64::INFINITY;
    let mut metrics_us = f64::INFINITY;
    let mut tracing_us = f64::INFINITY;
    for _ in 0..ROUNDS {
        bare_us = bare_us.min(bare.round_us());
        metrics_us = metrics_us.min(with_metrics.round_us());
        tracing_us = tracing_us.min(with_tracing.round_us());
    }
    let overhead_pct = (metrics_us / bare_us - 1.0) * 100.0;
    let tracing_pct = (tracing_us / bare_us - 1.0) * 100.0;
    Numbers {
        bare_us,
        metrics_us,
        tracing_us,
        overhead_pct,
        tracing_pct,
        metric_entries: metrics_telemetry.registry.snapshot().entries.len(),
        trace_events: tracing_telemetry.tracer.len(),
    }
}

/// Runs the marketplace scenario under tracing, asserts the failover
/// lifecycle is present and sim-clock ordered, and writes the Chrome
/// trace-event JSON artifact.
fn capture_sample_trace() -> usize {
    let report = run_marketplace(&MarketplaceConfig::default());
    assert!(report.fraud_detected >= 1, "scenario must include fraud");
    let events = report.telemetry.tracer.events();
    // fraud → slash → reselect → replay, in recording (= sim-clock)
    // order, with the recovery span opening at the detection instant.
    let position = |name: &str| {
        events
            .iter()
            .position(|e| e.name == name)
            .unwrap_or_else(|| panic!("trace must contain {name:?}"))
    };
    let fraud = position("fraud_detected");
    let slash = position("slash");
    let reselect = position("reselect");
    let replay = position("replay");
    assert!(fraud < slash && slash < reselect && reselect < replay);
    assert!(events[fraud].ts_us <= events[replay].ts_us);
    let recovery = &events[position("failover_recovery")];
    assert_eq!(recovery.ts_us, events[fraud].ts_us);
    assert!(recovery.dur_us > 0);
    // Spans land on the shared sim clock: every event's timestamp fits
    // inside the run (no wall-clock leakage into the timeline).
    let json = report.telemetry.tracer.export_chrome_json();
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TRACE_sample.json");
    std::fs::write(path, &json).expect("write TRACE_sample.json");
    println!(
        "wrote TRACE_sample.json: {} events, {} bytes",
        events.len(),
        json.len()
    );
    events.len()
}

fn emit_artifact(n: &Numbers, sample_trace_events: usize) {
    let json = format!(
        "{{\"bench\":\"telemetry_overhead\",\"batch\":{BATCH},\
         \"rounds\":{ROUNDS},\"batches_per_round\":{PER_ROUND},\
         \"bare_round_us\":{:.0},\"metrics_round_us\":{:.0},\
         \"tracing_round_us\":{:.0},\"metrics_overhead_pct\":{:.2},\
         \"tracing_overhead_pct\":{:.2},\"budget_pct\":{BUDGET_PCT},\
         \"metric_entries\":{},\"serve_trace_events\":{},\
         \"sample_trace_events\":{sample_trace_events}}}\n",
        n.bare_us,
        n.metrics_us,
        n.tracing_us,
        n.overhead_pct,
        n.tracing_pct,
        n.metric_entries,
        n.trace_events,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json: {json}");
    println!(
        "warm {BATCH}-call batch round ({PER_ROUND} batches): bare {:.0} µs | metrics {:.0} µs \
         ({:+.2}%) | tracing {:.0} µs ({:+.2}%)",
        n.bare_us, n.metrics_us, n.overhead_pct, n.tracing_us, n.tracing_pct,
    );
    // The tentpole's budget: always-on metrics must stay under 5% on
    // the warm serve path (min-of-rounds keeps VM noise out of the
    // comparison; the raw numbers live in the JSON).
    assert!(
        n.overhead_pct < BUDGET_PCT,
        "metrics-on serving exceeded the {BUDGET_PCT}% overhead budget \
         (measured {:+.2}%)",
        n.overhead_pct
    );
}

fn bench_overhead(c: &mut Criterion) {
    let telemetry = Telemetry::new();
    let mut world = World::new("criterion", Some(&telemetry));
    world.serve_one();
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    let total = world.requests.len();
    group.bench_function("serve_batch_64_with_metrics", |b| {
        b.iter(|| {
            if world.next < total {
                world.serve_one();
            }
        })
    });
    group.finish();
}

fn run_all(c: &mut Criterion) {
    let numbers = measure();
    let sample_trace_events = capture_sample_trace();
    emit_artifact(&numbers, sample_trace_events);
    bench_overhead(c);
}

criterion_group!(benches, run_all);
criterion_main!(benches);
