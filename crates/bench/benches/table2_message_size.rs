//! Table II: message-size overhead of PARP requests/responses relative to
//! base Ethereum JSON-RPC calls (paper §VI-C).
//!
//! Sizes are deterministic, so they are printed once; the timed portion
//! benches the wire encoding itself.

use criterion::{criterion_group, criterion_main, Criterion};
use parp_bench::{connected_fixture, read_call, served_exchange};
use parp_contracts::RpcCall;
use parp_jsonrpc::base_request;
use std::hint::black_box;

fn print_table2() {
    let (mut net, node, mut client) = connected_fixture();
    let me = client.address();

    // Read workload: eth_getBalance.
    let base_read = base_request(&read_call(me), 1).wire_size();
    let (read_req, read_res, _) = served_exchange(&mut net, node, &mut client, read_call(me));
    client.process_response(&read_res).expect("valid read");

    // Write workload: eth_sendRawTransaction.
    let raw_tx = {
        let key = parp_crypto::SecretKey::from_seed(b"t2-sender");
        net.fund(key.address());
        parp_chain::Transaction {
            nonce: 0,
            gas_price: parp_primitives::U256::ZERO,
            gas_limit: 21_000,
            to: Some(parp_primitives::Address::from_low_u64_be(9)),
            value: parp_primitives::U256::from(5u64),
            data: Vec::new(),
        }
        .sign(&key)
        .encode()
    };
    let write_call = RpcCall::SendRawTransaction { raw: raw_tx };
    let base_write = base_request(&write_call, 1).wire_size();
    let (write_req, write_res, _) = served_exchange(&mut net, node, &mut client, write_call);

    println!("=== Table II: message size overhead (bytes) ===");
    println!("base eth_getBalance request        : {base_read} (paper: 118)");
    println!("base eth_sendRawTransaction request: {base_write} (paper: 422 for a ~170B tx)");
    println!(
        "PARP request overhead  (read)      : {} (paper: 226)",
        read_req.overhead_bytes()
    );
    println!(
        "PARP request overhead  (write)     : {} (paper: 226)",
        write_req.overhead_bytes()
    );
    println!(
        "PARP response overhead (read)      : {} + {}B proof (paper: 187 + proof)",
        read_res.overhead_bytes(),
        read_res.proof_bytes()
    );
    println!(
        "PARP response overhead (write)     : {} + {}B proof (paper: 187 + proof)",
        write_res.overhead_bytes(),
        write_res.proof_bytes()
    );
}

fn bench_encoding(c: &mut Criterion) {
    print_table2();
    let (mut net, node, mut client) = connected_fixture();
    let me = client.address();
    let (request, response, _) = served_exchange(&mut net, node, &mut client, read_call(me));
    let mut group = c.benchmark_group("table2");
    group.bench_function("encode_parp_request", |b| {
        b.iter(|| black_box(request.encode()))
    });
    group.bench_function("encode_parp_response", |b| {
        b.iter(|| black_box(response.encode()))
    });
    group.bench_function("encode_base_json_request", |b| {
        b.iter(|| black_box(base_request(&read_call(me), 1).to_bytes()))
    });
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
