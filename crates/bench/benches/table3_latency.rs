//! Table III: per-step processing latency added by PARP (paper §VI-D).
//!
//! Steps map to Fig. 5: (A) client request generation, (B) server request
//! verification, (C) server response generation (proof-only and total),
//! (D) client response verification (proof-only and total). The write
//! workload uses a transaction inside a 200-transaction block, exactly as
//! the paper; the read workload is an `eth_getBalance`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use parp_bench::{chain_with_block_of, connected_fixture, read_call, served_exchange};
use parp_contracts::{ParpRequest, ParpResponse, RpcCall};
use parp_core::classify_response;
use parp_crypto::SecretKey;
use parp_primitives::{Address, U256};
use std::hint::black_box;

fn bench_request_generation(c: &mut Criterion) {
    let (_net, _node, client) = connected_fixture();
    let mut group = c.benchmark_group("table3/A_request_generation");
    // Read: two ECDSA signatures over the balance query.
    group.bench_function("read", |b| {
        b.iter_batched(
            || client.clone(),
            |mut lc| {
                let me = lc.address();
                black_box(lc.request(read_call(me)).expect("request"))
            },
            BatchSize::SmallInput,
        )
    });
    // Write: also signs the raw transfer transaction, as a wallet would.
    let sender = SecretKey::from_seed(b"t3-wallet");
    group.bench_function("write", |b| {
        b.iter_batched(
            || client.clone(),
            |mut lc| {
                let raw = parp_chain::Transaction {
                    nonce: 0,
                    gas_price: U256::ZERO,
                    gas_limit: 21_000,
                    to: Some(Address::from_low_u64_be(0xaa)),
                    value: U256::from(5u64),
                    data: Vec::new(),
                }
                .sign(&sender)
                .encode();
                black_box(
                    lc.request(RpcCall::SendRawTransaction { raw })
                        .expect("request"),
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_request_verification(c: &mut Criterion) {
    let (mut net, node, mut client) = connected_fixture();
    let request = {
        let me = client.address();
        client.request(read_call(me)).expect("request")
    };
    let mut group = c.benchmark_group("table3/B_request_verification");
    // Two signature recoveries + channel lookup (paper: ~703 µs).
    group.bench_function("read", |b| {
        let full_node = net.node(node).clone();
        let executor = net.executor().clone();
        b.iter(|| black_box(full_node.verify_request(&request, &executor)).expect("valid"))
    });
    let _ = net.serve(node, &request); // keep the node state warm
    group.finish();
}

fn bench_response_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/C_response_generation");
    group.sample_size(20);

    // Read: account proof over the current state + response signing.
    let (net, node, client) = {
        let (mut net, node, mut client) = connected_fixture();
        let _ = client.address();
        // Touch some accounts so the state trie has realistic depth.
        for i in 0..64u64 {
            net.fund(Address::from_low_u64_be(1000 + i));
        }
        net.sync_client(&mut client);
        (net, node, client)
    };
    let me = client.address();
    group.bench_function("read_proof_only", |b| {
        let state = net.chain().state();
        b.iter(|| black_box(state.account_proof(&me)))
    });
    group.bench_function("read_total", |b| {
        let request = {
            let mut lc = client.clone();
            lc.request(read_call(me)).expect("request")
        };
        b.iter_batched(
            || {
                (
                    net.node(node).clone(),
                    net.chain().clone(),
                    net.executor().clone(),
                )
            },
            |(mut fnode, mut chain, mut executor)| {
                black_box(
                    fnode
                        .handle_request(&request, &mut chain, &mut executor)
                        .expect("served"),
                )
            },
            BatchSize::LargeInput,
        )
    });

    // Write: Merkle proof for a transaction in a 200-tx block + signing
    // (the paper's exact setup).
    let (chain200, _) = chain_with_block_of(200);
    let block = chain200.head().clone();
    let node_key = SecretKey::from_seed(b"t3-node");
    let lc_key = SecretKey::from_seed(b"t3-lc");
    let raw = block.transactions[100].encode();
    let request = ParpRequest::build(
        &lc_key,
        0,
        block.hash(),
        U256::from(10u64),
        RpcCall::SendRawTransaction { raw },
    );
    group.bench_function("write_proof_only", |b| {
        b.iter(|| black_box(block.transaction_proof(100).expect("in range")))
    });
    group.bench_function("write_total", |b| {
        b.iter(|| {
            let proof = block.transaction_proof(100).expect("in range");
            black_box(ParpResponse::build(
                &node_key,
                &request,
                block.number(),
                parp_rlp::encode_u64(100),
                proof,
            ))
        })
    });
    group.finish();
}

fn bench_response_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/D_response_verification");

    // Read: verify an account proof + the response signature.
    let (mut net, node, mut client) = connected_fixture();
    let me = client.address();
    let (request, response, request_height) =
        served_exchange(&mut net, node, &mut client, read_call(me));
    let header = net.chain().head().header.clone();
    let state_root = header.state_root;
    group.bench_function("read_proof_only", |b| {
        let key = parp_crypto::keccak256(me.as_bytes());
        b.iter(|| {
            black_box(
                parp_trie::verify_proof(state_root, key.as_bytes(), &response.proof)
                    .expect("proof verifies"),
            )
        })
    });
    let node_addr = net.node(node).address();
    group.bench_function("read_total", |b| {
        b.iter(|| {
            black_box(classify_response(
                &request,
                &response,
                node_addr,
                request_height,
                |n| {
                    if n == header.number {
                        Some(header.clone())
                    } else {
                        None
                    }
                },
            ))
        })
    });

    // Write: verify a 200-tx-block transaction proof + signature.
    let (chain200, _) = chain_with_block_of(200);
    let block = chain200.head().clone();
    let node_key = SecretKey::from_seed(b"t3d-node");
    let lc_key = SecretKey::from_seed(b"t3d-lc");
    let raw = block.transactions[100].encode();
    let w_request = ParpRequest::build(
        &lc_key,
        0,
        block.hash(),
        U256::from(10u64),
        RpcCall::SendRawTransaction { raw },
    );
    let w_proof = block.transaction_proof(100).expect("in range");
    let w_response = ParpResponse::build(
        &node_key,
        &w_request,
        block.number(),
        parp_rlp::encode_u64(100),
        w_proof,
    );
    let w_header = block.header.clone();
    group.bench_function("write_proof_only", |b| {
        let key = parp_rlp::encode_u64(100);
        b.iter(|| {
            black_box(
                parp_trie::verify_proof(w_header.transactions_root, &key, &w_response.proof)
                    .expect("proof verifies"),
            )
        })
    });
    group.bench_function("write_total", |b| {
        b.iter(|| {
            black_box(classify_response(
                &w_request,
                &w_response,
                node_key.address(),
                block.number(),
                |n| {
                    if n == w_header.number {
                        Some(w_header.clone())
                    } else {
                        None
                    }
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_request_generation,
    bench_request_verification,
    bench_response_generation,
    bench_response_verification
);
criterion_main!(benches);
