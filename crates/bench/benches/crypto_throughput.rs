//! The crypto hot-path bench: what the fixed-base tables, GLV + wNAF
//! double multiplication, binary-GCD inversion and parallel verification
//! bought, measured **against the retained pre-optimization loop**
//! (`parp_crypto::baseline`) compiled into this same binary.
//!
//! Four sections:
//!
//! 1. **Correctness pin** — on fixed vectors, the optimized path must
//!    produce byte-identical signatures and identical recovered
//!    addresses to the retained baseline (hard assert).
//! 2. **Single-op throughput** — signs/sec and recovers/sec, optimized
//!    vs baseline, single-threaded.
//! 3. **Batch recovery** — recovers/sec over an independent batch via
//!    the scoped-worker fan-out (`recover_addresses_parallel`); the
//!    speedup over the sequential baseline loop combines the algorithmic
//!    win with whatever cores the host has.
//! 4. **Quorum wall-clock** — end-to-end gateway quorum reads at k = 3
//!    vs single verified reads, wall time, exercising the parallel leg
//!    fan-out in `parp-net`/`parp-gateway`.
//!
//! Emits `BENCH_crypto.json` at the workspace root (a CI artifact
//! alongside `BENCH_batch.json` and `BENCH_gateway.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use parp_crypto::{
    baseline, keccak256, recover_address, recover_addresses_parallel, sign, SecretKey, Signature,
};
use parp_gateway::{Gateway, GatewayConfig, SelectionPolicy};
use parp_net::Network;
use parp_primitives::{Address, H256, U256};
use std::hint::black_box;
use std::time::Instant;

/// Single-op measurement rounds.
const OPS: usize = 120;
/// Batch-recovery size (a k=3 quorum burst of 64-item batches is ~192
/// envelope recoveries; 128 is in that regime).
const BATCH: usize = 128;
/// Quorum fan-out width under test.
const QUORUM: usize = 3;
/// End-to-end reads per shape in the quorum section.
const READS: usize = 12;

fn fixtures(n: usize) -> (SecretKey, Vec<(H256, Signature)>) {
    let key = SecretKey::from_seed(b"crypto-bench-key");
    let pairs = (0..n)
        .map(|i| {
            let digest = keccak256(&(i as u64).to_be_bytes());
            (digest, sign(&key, &digest))
        })
        .collect();
    (key, pairs)
}

fn ops_per_sec(n: usize, elapsed_us: u64) -> f64 {
    n as f64 / (elapsed_us.max(1) as f64 / 1e6)
}

/// Section 1: the optimized path must be indistinguishable from the
/// retained loop on the wire.
fn assert_byte_identical(key: &SecretKey, pairs: &[(H256, Signature)]) {
    for (digest, signature) in pairs.iter().take(16) {
        let reference = baseline::sign_reference(key, digest);
        assert_eq!(
            signature.to_bytes(),
            reference.to_bytes(),
            "optimized signature diverged from the pre-optimization loop"
        );
        assert_eq!(
            recover_address(digest, signature).ok(),
            baseline::recover_address_reference(digest, signature),
            "optimized recovery diverged from the pre-optimization loop"
        );
    }
}

struct Numbers {
    sign_new_us: f64,
    sign_ref_us: f64,
    recover_new_us: f64,
    recover_ref_us: f64,
    batch_seq_us: u64,
    batch_par_us: u64,
    quorum_single_wall_us: u64,
    quorum_wall_us: u64,
    quorum_single_sim_us: u64,
    quorum_sim_us: u64,
}

fn measure(key: &SecretKey, pairs: &[(H256, Signature)]) -> Numbers {
    let digests: Vec<H256> = pairs.iter().map(|(d, _)| *d).collect();
    let expected = key.address();

    let started = Instant::now();
    for d in digests.iter().take(OPS) {
        black_box(sign(key, d));
    }
    let sign_new_us = started.elapsed().as_micros() as f64 / OPS as f64;

    let started = Instant::now();
    for d in digests.iter().take(OPS) {
        black_box(baseline::sign_reference(key, d));
    }
    let sign_ref_us = started.elapsed().as_micros() as f64 / OPS as f64;

    let started = Instant::now();
    for (d, s) in pairs.iter().take(OPS) {
        assert_eq!(recover_address(d, s).unwrap(), expected);
    }
    let recover_new_us = started.elapsed().as_micros() as f64 / OPS as f64;

    let started = Instant::now();
    for (d, s) in pairs.iter().take(OPS) {
        assert_eq!(baseline::recover_address_reference(d, s), Some(expected));
    }
    let recover_ref_us = started.elapsed().as_micros() as f64 / OPS as f64;

    // Batch recovery: the sequential *baseline* loop is the pre-PR
    // shape (one by one, old algorithm); the optimized path fans the
    // batch across scoped workers.
    let started = Instant::now();
    for (d, s) in pairs.iter() {
        assert_eq!(baseline::recover_address_reference(d, s), Some(expected));
    }
    let batch_seq_us = started.elapsed().as_micros() as u64;

    let started = Instant::now();
    let recovered = recover_addresses_parallel(pairs);
    let batch_par_us = started.elapsed().as_micros() as u64;
    assert!(recovered.iter().all(|r| r.as_ref().ok() == Some(&expected)));

    let (quorum_single_wall_us, quorum_wall_us, quorum_single_sim_us, quorum_sim_us) =
        quorum_overhead();

    Numbers {
        sign_new_us,
        sign_ref_us,
        recover_new_us,
        recover_ref_us,
        batch_seq_us,
        batch_par_us,
        quorum_single_wall_us,
        quorum_wall_us,
        quorum_single_sim_us,
        quorum_sim_us,
    }
}

/// A network of honest providers with a connected gateway (mirrors the
/// `gateway_failover` fixture).
fn gateway_fixture(n: usize) -> (Network, Gateway, Vec<Address>) {
    let mut net = Network::with_latency(parp_net::LatencyModel::default());
    for i in 0..n {
        net.spawn_node(
            format!("cb-node-{i}").as_bytes(),
            U256::from(10 * (i as u64 + 1)),
        );
    }
    let targets: Vec<Address> = (0..8)
        .map(|i| Address::from_low_u64_be(0xC0DE + i))
        .collect();
    net.fund_many(&targets);
    let client = net.spawn_client(b"cb-client", U256::from(10u64));
    let gateway = Gateway::new(
        client,
        GatewayConfig {
            policy: SelectionPolicy::RoundRobin,
            ..GatewayConfig::default()
        },
    );
    (net, gateway, targets)
}

/// Wall + simulated time of `READS` single reads and `READS` quorum
/// reads at k = 3, fresh gateways each (so channel setup amortizes
/// identically).
fn quorum_overhead() -> (u64, u64, u64, u64) {
    let (mut net, mut gateway, targets) = gateway_fixture(QUORUM);
    // Warm channels + caches so both shapes measure steady state.
    for target in targets.iter().take(QUORUM) {
        gateway
            .call(
                &mut net,
                parp_contracts::RpcCall::GetBalance { address: *target },
            )
            .expect("warm read");
    }
    let sim_start = net.now_us();
    let wall = Instant::now();
    for i in 0..READS {
        let call = parp_contracts::RpcCall::GetBalance {
            address: targets[i % targets.len()],
        };
        black_box(gateway.call(&mut net, call).expect("single read"));
    }
    let single_wall_us = wall.elapsed().as_micros() as u64;
    let single_sim_us = net.now_us() - sim_start;

    let (mut net, mut gateway, targets) = gateway_fixture(QUORUM);
    gateway
        .quorum_call(
            &mut net,
            parp_contracts::RpcCall::GetBalance {
                address: targets[0],
            },
            QUORUM,
        )
        .expect("warm quorum");
    let sim_start = net.now_us();
    let wall = Instant::now();
    for i in 0..READS {
        let call = parp_contracts::RpcCall::GetBalance {
            address: targets[i % targets.len()],
        };
        let outcome = gateway
            .quorum_call(&mut net, call, QUORUM)
            .expect("quorum read");
        assert!(outcome.agreed, "honest quorum must agree");
        black_box(outcome);
    }
    let quorum_wall_us = wall.elapsed().as_micros() as u64;
    let quorum_sim_us = net.now_us() - sim_start;
    (single_wall_us, quorum_wall_us, single_sim_us, quorum_sim_us)
}

fn emit_artifact(n: &Numbers) {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let signs_per_sec = 1e6 / n.sign_new_us;
    let signs_per_sec_ref = 1e6 / n.sign_ref_us;
    let recovers_per_sec = 1e6 / n.recover_new_us;
    let recovers_per_sec_ref = 1e6 / n.recover_ref_us;
    let sign_speedup = n.sign_ref_us / n.sign_new_us;
    let recover_alg_speedup = n.recover_ref_us / n.recover_new_us;
    let batch_recovers_per_sec = ops_per_sec(BATCH, n.batch_par_us);
    let batch_recovers_per_sec_ref = ops_per_sec(BATCH, n.batch_seq_us);
    let recover_throughput_speedup = n.batch_seq_us as f64 / n.batch_par_us.max(1) as f64;
    let quorum_wall_overhead = n.quorum_wall_us as f64 / n.quorum_single_wall_us.max(1) as f64;
    let quorum_sim_overhead = n.quorum_sim_us as f64 / n.quorum_single_sim_us.max(1) as f64;
    let json = format!(
        "{{\"bench\":\"crypto_throughput\",\"cores\":{cores},\
         \"signs_per_sec\":{signs_per_sec:.0},\"signs_per_sec_prepr\":{signs_per_sec_ref:.0},\
         \"sign_speedup\":{sign_speedup:.2},\
         \"recovers_per_sec\":{recovers_per_sec:.0},\"recovers_per_sec_prepr\":{recovers_per_sec_ref:.0},\
         \"recover_alg_speedup\":{recover_alg_speedup:.2},\
         \"batch_recovers_per_sec\":{batch_recovers_per_sec:.0},\
         \"batch_recovers_per_sec_prepr\":{batch_recovers_per_sec_ref:.0},\
         \"recover_throughput_speedup\":{recover_throughput_speedup:.2},\
         \"quorum_k\":{QUORUM},\"quorum_wall_overhead\":{quorum_wall_overhead:.3},\
         \"quorum_sim_overhead\":{quorum_sim_overhead:.3}}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_crypto.json");
    std::fs::write(path, &json).expect("write BENCH_crypto.json");
    println!("wrote BENCH_crypto.json: {json}");
    println!(
        "sign: {:.1} µs vs pre-PR {:.1} µs ({sign_speedup:.1}×) | recover: {:.1} µs vs {:.1} µs \
         ({recover_alg_speedup:.1}× alg, {recover_throughput_speedup:.1}× batch throughput on \
         {cores} core(s))",
        n.sign_new_us, n.sign_ref_us, n.recover_new_us, n.recover_ref_us,
    );
    println!(
        "quorum k={QUORUM}: {quorum_wall_overhead:.2}× wall overhead vs single reads \
         ({quorum_sim_overhead:.2}× simulated)"
    );

    // Hard gates, set conservatively below the measured wins so VM
    // noise cannot flake CI: the real numbers live in the JSON.
    assert!(
        sign_speedup >= 3.0,
        "sign must beat the pre-PR loop by ≥3× (measured {sign_speedup:.2}×)"
    );
    assert!(
        recover_alg_speedup >= 2.0,
        "recover must beat the pre-PR loop by ≥2× single-threaded (measured {recover_alg_speedup:.2}×)"
    );
    // Parallel-throughput floors scale with the cores actually present:
    // the full targets only bind once the fan-out has k cores to spread
    // over (GitHub's runners have 4). A 2-core host can overlap at most
    // two of three legs, so it gets intermediate gates; a 1-core host
    // cannot overlap at all and is gated on the algorithmic win alone.
    let throughput_floor = match cores {
        1 => 2.0,
        2 | 3 => 2.5,
        _ => 4.0,
    };
    assert!(
        recover_throughput_speedup >= throughput_floor,
        "batch recovery throughput {recover_throughput_speedup:.2}× below the {throughput_floor}× floor for {cores} core(s)"
    );
    let overhead_ceiling = match cores {
        1 => 3.5,
        2 | 3 => 2.8,
        _ => 2.0,
    };
    assert!(
        quorum_wall_overhead < overhead_ceiling,
        "quorum wall overhead {quorum_wall_overhead:.2}× above the {overhead_ceiling}× ceiling for {cores} core(s)"
    );
}

fn bench_crypto_ops(c: &mut Criterion) {
    let (key, pairs) = fixtures(BATCH);
    let mut group = c.benchmark_group("crypto_throughput");
    group.sample_size(10);
    let digest = pairs[0].0;
    let signature = pairs[0].1;
    group.bench_function("sign", |b| b.iter(|| black_box(sign(&key, &digest))));
    group.bench_function("sign_prepr", |b| {
        b.iter(|| black_box(baseline::sign_reference(&key, &digest)))
    });
    group.bench_function("recover", |b| {
        b.iter(|| black_box(recover_address(&digest, &signature).unwrap()))
    });
    group.bench_function("recover_prepr", |b| {
        b.iter(|| black_box(baseline::recover_address_reference(&digest, &signature).unwrap()))
    });
    group.bench_function("recover_batch_128_parallel", |b| {
        b.iter(|| black_box(recover_addresses_parallel(&pairs)))
    });
    group.finish();
}

fn run_all(c: &mut Criterion) {
    let (key, pairs) = fixtures(BATCH);
    assert_byte_identical(&key, &pairs);
    let numbers = measure(&key, &pairs);
    emit_artifact(&numbers);
    bench_crypto_ops(c);
}

criterion_group!(benches, run_all);
criterion_main!(benches);
