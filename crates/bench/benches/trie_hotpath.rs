//! The trie hot-path bench: what the arena-flattened [`FrozenTrie`],
//! batched keccak freeze and zero-copy multiproof serialization bought,
//! measured **against the retained pre-optimization path**
//! (`parp_trie::baseline`) compiled into this same binary.
//!
//! Four sections:
//!
//! 1. **Correctness pin** — on the bench fixture, the arena path must
//!    produce the identical root hash and byte-identical multiproofs to
//!    the retained baseline (hard assert).
//! 2. **Warm multiproof** — a 64-call `GetBalance`-shaped batch against
//!    a frozen 10k-account trie: baseline `prove_many` vs arena
//!    `prove_many` vs `multiproof_into` writing into one reused
//!    [`ProofBuf`] allocation. The arena speedup is asserted ≥ 2×.
//! 3. **Freeze cost** — `FrozenTrie::new` (flatten + level-batched
//!    keccak) vs the baseline's recursive index pass, per snapshot.
//! 4. **Batched keccak** — `keccak256_batch` over the frozen node set
//!    vs one incremental `Keccak256` instance per node.
//!
//! Emits `BENCH_trie.json` at the workspace root (a CI artifact
//! alongside `BENCH_crypto.json` and friends).

use criterion::{criterion_group, criterion_main, Criterion};
use parp_chain::State;
use parp_crypto::{keccak256, keccak256_batch, Keccak256};
use parp_primitives::{Address, U256};
use parp_trie::{baseline, verify_many, FrozenTrie, ProofBuf, Trie};
use std::hint::black_box;
use std::time::Instant;

/// Accounts in the snapshot trie (the runtime bench's serving scale).
const ACCOUNTS: u64 = 10_000;
/// Calls per warm batch (the paper's batch evaluation size).
const BATCH: usize = 64;
/// Measurement rounds per timed section.
const ROUNDS: u32 = 30;

/// A populated snapshot trie plus the hashed keys of a 64-call batch
/// (every call an account read, some duplicated — the dedup-heavy shape
/// `handle_batch` actually serves).
fn fixture() -> (Trie, Vec<Vec<u8>>) {
    let state = State::with_alloc(
        (1..=ACCOUNTS).map(|i| (Address::from_low_u64_be(i * 31), U256::from(1_000 + i))),
    );
    let keys: Vec<Vec<u8>> = (0..BATCH)
        .map(|i| {
            // Three hot accounts soak ~30% of the batch; the rest spread.
            let account = if i % 10 < 3 {
                (i % 3 + 1) as u64
            } else {
                (i as u64 * 131) % ACCOUNTS + 1
            };
            let address = Address::from_low_u64_be(account * 31);
            keccak256(address.as_bytes()).as_bytes().to_vec()
        })
        .collect();
    (state.build_trie(), keys)
}

/// Section 1: the arena path must be indistinguishable from the
/// retained baseline on the wire.
fn assert_byte_identical(
    arena: &FrozenTrie,
    base: &baseline::FrozenTrie,
    keys: &[Vec<u8>],
) -> Vec<Vec<u8>> {
    assert_eq!(
        arena.root_hash(),
        base.root_hash(),
        "arena root diverged from the pre-optimization path"
    );
    let reference = base.prove_many(keys);
    assert_eq!(
        arena.prove_many(keys),
        reference,
        "arena multiproof diverged from the pre-optimization path"
    );
    let mut buf = ProofBuf::new();
    arena.multiproof_into(keys, &mut buf);
    assert_eq!(
        buf.to_vecs(),
        reference,
        "zero-copy serialization diverged from the allocating path"
    );
    let proven = verify_many(arena.root_hash(), keys, &buf.as_slices()).expect("verifies");
    assert!(proven.iter().all(Option::is_some), "batch keys all present");
    reference
}

struct Numbers {
    multiproof_base_us: f64,
    multiproof_arena_us: f64,
    multiproof_into_us: f64,
    freeze_base_us: f64,
    freeze_arena_us: f64,
    keccak_incremental_us: u64,
    keccak_batch_us: u64,
    hashed_nodes: usize,
    proof_nodes: usize,
    proof_bytes: usize,
}

fn measure(trie: &Trie, keys: &[Vec<u8>]) -> Numbers {
    let arena = FrozenTrie::new(trie.clone());
    let base = baseline::FrozenTrie::new(trie.clone());
    let reference = assert_byte_identical(&arena, &base, keys);
    let proof_nodes = reference.len();
    let proof_bytes = reference.iter().map(Vec::len).sum();

    let time = |f: &mut dyn FnMut()| {
        let started = Instant::now();
        for _ in 0..ROUNDS {
            f();
        }
        started.elapsed().as_micros() as f64 / f64::from(ROUNDS)
    };

    let multiproof_base_us = time(&mut || {
        black_box(base.prove_many(keys));
    });
    let multiproof_arena_us = time(&mut || {
        black_box(arena.prove_many(keys));
    });
    let mut buf = ProofBuf::new();
    arena.multiproof_into(keys, &mut buf); // pre-size the reused buffer
    let multiproof_into_us = time(&mut || {
        arena.multiproof_into(keys, &mut buf);
        black_box(&buf);
    });

    const FREEZE_ROUNDS: u32 = 5;
    let started = Instant::now();
    for _ in 0..FREEZE_ROUNDS {
        black_box(baseline::FrozenTrie::new(trie.clone()));
    }
    let freeze_base_us = started.elapsed().as_micros() as f64 / f64::from(FREEZE_ROUNDS);
    let started = Instant::now();
    for _ in 0..FREEZE_ROUNDS {
        black_box(FrozenTrie::new(trie.clone()));
    }
    let freeze_arena_us = started.elapsed().as_micros() as f64 / f64::from(FREEZE_ROUNDS);

    // Batched vs incremental keccak over the actual frozen node set.
    let nodes: Vec<&[u8]> = (0..arena.node_count() as u32)
        .map(|id| arena.node_bytes(id))
        .collect();
    let started = Instant::now();
    let incremental: Vec<_> = nodes
        .iter()
        .map(|node| {
            let mut hasher = Keccak256::new();
            hasher.update(node);
            hasher.finalize()
        })
        .collect();
    let keccak_incremental_us = started.elapsed().as_micros() as u64;
    let started = Instant::now();
    let batched = keccak256_batch(&nodes);
    let keccak_batch_us = started.elapsed().as_micros() as u64;
    assert_eq!(batched, incremental, "batched keccak diverged");

    Numbers {
        multiproof_base_us,
        multiproof_arena_us,
        multiproof_into_us,
        freeze_base_us,
        freeze_arena_us,
        keccak_incremental_us,
        keccak_batch_us,
        hashed_nodes: nodes.len(),
        proof_nodes,
        proof_bytes,
    }
}

fn emit_artifact(n: &Numbers) {
    let multiproof_speedup = n.multiproof_base_us / n.multiproof_arena_us.max(1e-9);
    let zero_copy_speedup = n.multiproof_base_us / n.multiproof_into_us.max(1e-9);
    let freeze_ratio = n.freeze_arena_us / n.freeze_base_us.max(1e-9);
    let keccak_speedup = n.keccak_incremental_us as f64 / n.keccak_batch_us.max(1) as f64;
    let batch_per_sec = 1e6 / n.multiproof_into_us.max(1e-9);
    let json = format!(
        "{{\"bench\":\"trie_hotpath\",\"accounts\":{ACCOUNTS},\"batch\":{BATCH},\
         \"multiproof_prepr_us\":{:.1},\"multiproof_arena_us\":{:.1},\
         \"multiproof_into_us\":{:.1},\"multiproof_speedup\":{multiproof_speedup:.2},\
         \"zero_copy_speedup\":{zero_copy_speedup:.2},\
         \"batches_per_sec\":{batch_per_sec:.0},\
         \"proof_nodes\":{},\"proof_bytes\":{},\
         \"freeze_prepr_us\":{:.0},\"freeze_arena_us\":{:.0},\"freeze_ratio\":{freeze_ratio:.2},\
         \"keccak_nodes\":{},\"keccak_incremental_us\":{},\"keccak_batch_us\":{},\
         \"keccak_batch_speedup\":{keccak_speedup:.2}}}\n",
        n.multiproof_base_us,
        n.multiproof_arena_us,
        n.multiproof_into_us,
        n.proof_nodes,
        n.proof_bytes,
        n.freeze_base_us,
        n.freeze_arena_us,
        n.hashed_nodes,
        n.keccak_incremental_us,
        n.keccak_batch_us,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trie.json");
    std::fs::write(path, &json).expect("write BENCH_trie.json");
    println!("wrote BENCH_trie.json: {json}");
    println!(
        "warm {BATCH}-call multiproof: pre-PR {:.0} µs | arena {:.0} µs ({multiproof_speedup:.1}×) \
         | zero-copy {:.0} µs ({zero_copy_speedup:.1}×) | {} nodes, {} B",
        n.multiproof_base_us, n.multiproof_arena_us, n.multiproof_into_us, n.proof_nodes,
        n.proof_bytes,
    );
    println!(
        "freeze {ACCOUNTS}-account snapshot: pre-PR {:.0} µs | arena {:.0} µs ({freeze_ratio:.2}× \
         relative) | batched keccak over {} nodes: {keccak_speedup:.2}× vs per-node incremental",
        n.freeze_base_us, n.freeze_arena_us, n.hashed_nodes,
    );

    // Hard gates, set conservatively below the measured wins so VM
    // noise cannot flake CI: the real numbers live in the JSON.
    assert!(
        multiproof_speedup >= 2.0,
        "arena multiproof must beat the pre-PR path by ≥2× (measured {multiproof_speedup:.2}×)"
    );
    assert!(
        zero_copy_speedup >= multiproof_speedup * 0.95,
        "zero-copy serialization must not give back the arena win \
         ({zero_copy_speedup:.2}× vs {multiproof_speedup:.2}×)"
    );
    // The incremental path shares this PR's one-shot absorb, so the
    // batch API's remaining edge is per-node hasher setup — small but
    // real. Gate on "never slower", with headroom for VM noise.
    assert!(
        keccak_speedup >= 0.9,
        "batched keccak must not lose to per-node incremental hashing \
         (measured {keccak_speedup:.2}×)"
    );
    assert!(
        freeze_ratio <= 1.5,
        "arena freeze must stay within 1.5× of the baseline index pass \
         (measured {freeze_ratio:.2}×)"
    );
}

fn bench_trie_ops(c: &mut Criterion) {
    let (trie, keys) = fixture();
    let arena = FrozenTrie::new(trie.clone());
    let base = baseline::FrozenTrie::new(trie.clone());
    let mut group = c.benchmark_group("trie_hotpath");
    group.sample_size(10);
    group.bench_function("multiproof_64_prepr", |b| {
        b.iter(|| black_box(base.prove_many(&keys)))
    });
    group.bench_function("multiproof_64_arena", |b| {
        b.iter(|| black_box(arena.prove_many(&keys)))
    });
    let mut buf = ProofBuf::new();
    group.bench_function("multiproof_64_zero_copy", |b| {
        b.iter(|| {
            arena.multiproof_into(&keys, &mut buf);
            black_box(buf.total_bytes())
        })
    });
    group.bench_function("freeze_10k", |b| {
        b.iter(|| black_box(FrozenTrie::new(trie.clone())))
    });
    group.finish();
}

fn run_all(c: &mut Criterion) {
    let (trie, keys) = fixture();
    let numbers = measure(&trie, &keys);
    emit_artifact(&numbers);
    bench_trie_ops(c);
}

criterion_group!(benches, run_all);
criterion_main!(benches);
