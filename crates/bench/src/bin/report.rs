//! Regenerates every table and figure from the paper's evaluation (§VI)
//! in one run, printing paper-vs-measured comparisons.
//!
//! Usage: `cargo run --release -p parp-bench --bin report [--full]`
//!
//! `--full` runs Figure 7 at the paper's full request volume
//! (240 requests per client); the default uses 40 per client.

use parp_bench::{chain_with_block_of, connected_fixture, read_call};
use parp_chain::Blockchain;
use parp_contracts::{
    build_module_call, confirmation_digest, min_deposit, payment_digest, ModuleCall, ParpExecutor,
    ParpRequest, ParpResponse, RpcCall, DISPUTE_WINDOW_BLOCKS,
};
use parp_core::classify_response;
use parp_crypto::{sign, SecretKey};
use parp_net::{dataset, run_scalability_sweep, ScalabilityConfig};
use parp_primitives::{Address, U256};
use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    section_2b_table1();
    table2();
    table3();
    table4();
    fig6();
    fig7(full);
    marketplace_section();
    chaos_section();
    contention_section();
    crypto_section();
    trie_section();
    println!("\nreport complete — see EXPERIMENTS.md for interpretation");
}

/// Renders one histogram row from a telemetry snapshot.
fn histogram_row(metrics: &parp_telemetry::MetricsSnapshot, label: &str, name: &str) {
    match metrics.histogram(name, &[]) {
        Some(h) => println!(
            "  {label:<28} n={:<6} p50={:<8} p99={:<8} max={}",
            h.count, h.p50, h.p99, h.max
        ),
        None => println!("  {label:<28} (no samples)"),
    }
}

/// Beyond the paper: the trie hot path after the arena-flattening
/// overhaul, against the retained pre-optimization frozen index.
fn trie_section() {
    println!("\n== trie hot path (beyond the paper) ==");
    const ACCOUNTS: u64 = 2_000;
    const BATCH: usize = 64;
    let state = parp_chain::State::with_alloc(
        (1..=ACCOUNTS).map(|i| (Address::from_low_u64_be(i * 17), U256::from(i))),
    );
    let trie = state.build_trie();
    let keys: Vec<Vec<u8>> = (0..BATCH)
        .map(|i| {
            let address = Address::from_low_u64_be(((i as u64 * 131) % ACCOUNTS + 1) * 17);
            parp_crypto::keccak256(address.as_bytes())
                .as_bytes()
                .to_vec()
        })
        .collect();
    let arena = parp_trie::FrozenTrie::new(trie.clone());
    let base = parp_trie::baseline::FrozenTrie::new(trie.clone());
    let reference = base.prove_many(&keys);
    assert_eq!(arena.prove_many(&keys), reference, "arena diverged");
    let multi_new = time_avg(30, || {
        arena.prove_many(&keys);
    });
    let multi_ref = time_avg(30, || {
        base.prove_many(&keys);
    });
    let mut buf = parp_trie::ProofBuf::new();
    let multi_into = time_avg(30, || {
        arena.multiproof_into(&keys, &mut buf);
    });
    let freeze_new = time_avg(5, || {
        parp_trie::FrozenTrie::new(trie.clone());
    });
    let freeze_ref = time_avg(5, || {
        parp_trie::baseline::FrozenTrie::new(trie.clone());
    });
    println!(
        "  {BATCH}-key multiproof  {multi_new:>10.2?}  (pre-PR frozen index {multi_ref:>10.2?}, {:.1}x)",
        multi_ref.as_secs_f64() / multi_new.as_secs_f64().max(1e-12)
    );
    println!(
        "  zero-copy into buf {multi_into:>10.2?}  ({:.1}x; {} nodes, {} B, one allocation)",
        multi_ref.as_secs_f64() / multi_into.as_secs_f64().max(1e-12),
        reference.len(),
        reference.iter().map(Vec::len).sum::<usize>(),
    );
    println!(
        "  freeze ({ACCOUNTS} accts) {freeze_new:>10.2?}  (pre-PR index pass {freeze_ref:>10.2?}, \
         level-batched keccak)",
    );
}

/// Beyond the paper: the crypto hot path after the fixed-base /
/// wNAF+GLV overhaul, against the retained pre-optimization loop.
fn crypto_section() {
    println!("\n== crypto hot path (beyond the paper) ==");
    const N: u32 = 60;
    let key = SecretKey::from_seed(b"report-crypto");
    let digests: Vec<_> = (0..N)
        .map(|i| parp_crypto::keccak256(&i.to_be_bytes()))
        .collect();
    let signatures: Vec<_> = digests.iter().map(|d| sign(&key, d)).collect();
    let mut cursor = digests.iter().cycle();
    let sign_new = time_avg(N, || {
        sign(&key, cursor.next().expect("cycle"));
    });
    let mut cursor = digests.iter().cycle();
    let sign_ref = time_avg(N, || {
        parp_crypto::baseline::sign_reference(&key, cursor.next().expect("cycle"));
    });
    let mut cursor = digests.iter().zip(&signatures).cycle();
    let rec_new = time_avg(N, || {
        let (d, s) = cursor.next().expect("cycle");
        parp_crypto::recover_address(d, s).expect("recovers");
    });
    let mut cursor = digests.iter().zip(&signatures).cycle();
    let rec_ref = time_avg(N, || {
        let (d, s) = cursor.next().expect("cycle");
        parp_crypto::baseline::recover_address_reference(d, s).expect("recovers");
    });
    let pairs: Vec<_> = digests
        .iter()
        .zip(&signatures)
        .map(|(d, s)| (*d, *s))
        .collect();
    let batch = time_avg(4, || {
        parp_crypto::recover_addresses_parallel(&pairs);
    });
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!(
        "  sign            {sign_new:>10.2?}  (pre-PR loop {sign_ref:>10.2?}, {:.1}x)",
        sign_ref.as_secs_f64() / sign_new.as_secs_f64().max(1e-12)
    );
    println!(
        "  recover         {rec_new:>10.2?}  (pre-PR loop {rec_ref:>10.2?}, {:.1}x)",
        rec_ref.as_secs_f64() / rec_new.as_secs_f64().max(1e-12)
    );
    println!(
        "  batch recover   {:>10.2?}/op across {} items on {cores} core(s) \
         (scoped-worker fan-out)",
        batch / N,
        pairs.len(),
    );
}

/// Beyond the paper: the gateway marketplace scenario — fraud detected
/// and slashed mid-run, live failover, per-provider exchange
/// aggregates (the accounting the reputation scorer feeds on).
fn marketplace_section() {
    println!("\n== gateway marketplace (beyond the paper) ==");
    let report = parp_gateway::run_marketplace(&parp_gateway::MarketplaceConfig::default());
    println!(
        "{} verified results, {} wrong payloads, {} failover(s), \
         fraud proofs accepted: {}, cheapest slashed: {}",
        report.results,
        report.wrong_payloads,
        report.failovers,
        report.fraud_proofs_accepted,
        report.cheapest_slashed,
    );
    println!(
        "time-to-recover after provider failure: {:?} µs; quorum reads {} \
         (disagreements {}); payments monotone: {}",
        report.recoveries_us,
        report.quorum_reads,
        report.quorum_disagreements,
        report.payments_monotone,
    );
    let by_cause: Vec<String> = report
        .failovers_by_cause
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(cause, n)| format!("{cause} {n}"))
        .collect();
    println!(
        "failovers by cause: {}",
        if by_cause.is_empty() {
            "none".to_string()
        } else {
            by_cause.join(", ")
        }
    );
    println!("per-provider aggregates:");
    println!(
        "  {:<44} {:>6} {:>9} {:>9} {:>9}",
        "provider", "calls", "failures", "p50 µs", "p99 µs"
    );
    for (address, stats) in &report.provider_stats {
        println!(
            "  {:<44} {:>6} {:>9} {:>9} {:>9}",
            address.to_string(),
            stats.calls(),
            stats.failures(),
            stats.latency_p50_us(),
            stats.latency_p99_us(),
        );
    }
    // The same run seen through the unified telemetry registry: the
    // counters below are the very cells the gateway/net/runtime
    // incremented, snapshotted at end of run.
    let m = &report.metrics;
    println!("telemetry snapshot ({} series):", m.entries.len());
    for (label, name) in [
        ("gateway calls served", "parp_gateway_calls_served_total"),
        ("gateway failovers", "parp_gateway_failovers_total"),
        ("gateway fraud proofs", "parp_gateway_fraud_proofs_total"),
        ("gateway quorum reads", "parp_gateway_quorum_reads_total"),
        ("net exchanges", "parp_net_exchanges_total"),
        ("net failures", "parp_net_failures_total"),
        (
            "runtime cache hits",
            "parp_runtime_snapshot_cache_hits_total",
        ),
    ] {
        println!("  {label:<28} {}", m.counter(name, &[]).unwrap_or(0));
    }
    histogram_row(m, "exchange latency µs", "parp_net_exchange_latency_us");
    histogram_row(m, "multiproof build µs", "parp_runtime_multiproof_us");
    println!(
        "captured request-lifecycle trace: {} events (Chrome trace-event \
         JSON via Tracer::export_chrome_json — see TRACE_sample.json)",
        report.telemetry.tracer.len()
    );
}

/// Beyond the paper: the chaos scenario — the same marketplace under a
/// seeded fault schedule (crash + partition + drop/corrupt/delay), with
/// the gateway's resilience machinery (deadlines, retries, hedging,
/// circuit breakers) carrying the workload.
fn chaos_section() {
    println!("\n== chaos / fault injection (beyond the paper) ==");
    let config = parp_gateway::ChaosConfig::default();
    let report = parp_gateway::run_chaos(&config);
    println!(
        "{} calls issued under seed {:#x}: {} served, {} degraded, \
         {} errored, {} unclassified, {} wrong payloads",
        report.issued,
        config.seed,
        report.served,
        report.degraded,
        report.errored,
        report.unclassified,
        report.wrong_payloads,
    );
    println!(
        "faults injected: {} drops, {} corruptions, {} delays, \
         {} crash refusals, {} partition swallows, {} deadline burns",
        report.fault_drops,
        report.fault_corruptions,
        report.fault_delays,
        report.fault_crashes,
        report.fault_partitions,
        report.fault_timeouts,
    );
    let by_cause: Vec<String> = report
        .failovers_by_cause
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(cause, n)| format!("{cause} {n}"))
        .collect();
    println!(
        "resilience: {} retries, {} hedged legs, breaker {}x open / {}x \
         half-open; failovers by cause: {}",
        report.retries,
        report.hedges_fired,
        report.breaker_opens,
        report.breaker_half_opens,
        if by_cause.is_empty() {
            "none".to_string()
        } else {
            by_cause.join(", ")
        }
    );
    let mut recoveries = report.recoveries_us.clone();
    recoveries.sort_unstable();
    let p50 = recoveries.get(recoveries.len() / 2).copied().unwrap_or(0);
    let p99 = recoveries.last().copied().unwrap_or(0);
    println!(
        "time-to-recover: p50 {p50} µs, max {p99} µs over {} failovers; \
         payments monotone: {}",
        recoveries.len(),
        report.payments_monotone,
    );
}

/// Beyond the paper: the over-capacity serving scenario, rendered from
/// the run's telemetry snapshot — admission verdicts and serve-path
/// latency distributions come from the registry, not ad-hoc fields.
fn contention_section() {
    println!("\n== runtime contention (beyond the paper) ==");
    let config = parp_net::ContentionConfig::default();
    let report = parp_net::run_contention(&config);
    println!(
        "{} honest client(s) at {}/s vs flooder at {}/s for {} ms \
         (batch size {})",
        config.honest_clients,
        config.honest_rate_per_sec,
        config.flood_rate_per_sec,
        config.duration_ms,
        config.batch_size,
    );
    println!(
        "honest: mean latency {} µs over {} served calls; flooder: {} \
         admitted, {} throttled",
        report.honest_mean_latency_us(),
        report.honest_served_calls(config.batch_size),
        report.flooder.admitted_calls,
        report.flooder.throttled_calls,
    );
    let m = &report.metrics;
    println!("telemetry snapshot ({} series):", m.entries.len());
    for (label, name) in [
        ("admitted calls", "parp_runtime_admitted_calls_total"),
        ("throttled calls", "parp_runtime_throttled_calls_total"),
        ("cache hits", "parp_runtime_snapshot_cache_hits_total"),
        ("cache misses", "parp_runtime_snapshot_cache_misses_total"),
    ] {
        println!("  {label:<28} {}", m.counter(name, &[]).unwrap_or(0));
    }
    histogram_row(m, "serve_batch µs", "parp_runtime_serve_batch_us");
    histogram_row(m, "multiproof µs", "parp_runtime_multiproof_us");
    histogram_row(m, "batch size (calls)", "parp_runtime_batch_calls");
}

fn section_2b_table1() {
    println!("== §II-B / Table I: node provider centralization ==");
    println!(
        "{} of {} dApps call node providers directly",
        dataset::RPC_DAPPS,
        dataset::TOTAL_DAPPS
    );
    for provider in dataset::providers() {
        println!(
            "  {:<12} {:>3}/{} dApps = {:>5.2}%   signup: {}   crypto pay: {}",
            provider.name,
            provider.dapp_count,
            dataset::RPC_DAPPS,
            dataset::traffic_share(&provider),
            if provider.email_required {
                "email required"
            } else if provider.wallet_login {
                "wallet (permissionless)"
            } else {
                "none"
            },
            if provider.accepts_crypto { "yes" } else { "no" },
        );
    }
}

fn table2() {
    println!("\n== Table II: message size overhead ==");
    let (mut net, node, mut client) = connected_fixture();
    let me = client.address();
    let base_read = parp_jsonrpc::base_request(&read_call(me), 1).wire_size();
    let read_req = client.request(read_call(me)).expect("request");
    let read_res = net.serve(node, &read_req).expect("serve");
    net.sync_client(&mut client);
    client.process_response(&read_res).expect("valid");

    let key = SecretKey::from_seed(b"report-sender");
    net.fund(key.address());
    net.sync_client(&mut client);
    let raw = parp_chain::Transaction {
        nonce: 0,
        gas_price: U256::ZERO,
        gas_limit: 21_000,
        to: Some(Address::from_low_u64_be(0x77)),
        value: U256::from(3u64),
        data: Vec::new(),
    }
    .sign(&key)
    .encode();
    let write_call = RpcCall::SendRawTransaction { raw: raw.clone() };
    let base_write = parp_jsonrpc::base_request(&write_call, 1).wire_size();
    let write_req = client.request(write_call).expect("request");
    let write_res = net.serve(node, &write_req).expect("serve");

    println!("  base eth_getBalance request:         {base_read} B   (paper 118 B)");
    println!("  base eth_sendRawTransaction request: {base_write} B  (paper 422 B, ~170 B tx)");
    println!(
        "  PARP request overhead:               {} B   (paper 226 B)",
        read_req.overhead_bytes()
    );
    println!(
        "  PARP response overhead:              {} B + proof ({} B read / {} B write)   (paper 187 B + proof)",
        read_res.overhead_bytes(),
        read_res.proof_bytes(),
        write_res.proof_bytes()
    );
}

fn table3() {
    println!("\n== Table III: added processing latency (averages over 100 requests) ==");
    const N: u32 = 100;

    // (A) request generation.
    let (_n, _id, client) = connected_fixture();
    let me = client.address();
    let wallet = SecretKey::from_seed(b"report-wallet");
    let read_a = time_avg(N, || {
        let mut lc = client.clone();
        lc.request(read_call(me)).expect("request");
    });
    let write_a = time_avg(N, || {
        let mut lc = client.clone();
        let raw = parp_chain::Transaction {
            nonce: 0,
            gas_price: U256::ZERO,
            gas_limit: 21_000,
            to: Some(Address::from_low_u64_be(0xaa)),
            value: U256::from(5u64),
            data: Vec::new(),
        }
        .sign(&wallet)
        .encode();
        lc.request(RpcCall::SendRawTransaction { raw })
            .expect("request");
    });
    println!("  (A) request generation    write {write_a:>9.2?}  read {read_a:>9.2?}   (paper 10.91 ms / 4.82 ms)");

    // (B) request verification.
    let (mut net, node, mut client) = connected_fixture();
    let me = client.address();
    let request = client.request(read_call(me)).expect("request");
    let fnode = net.node(node).clone();
    let executor = net.executor().clone();
    let b_time = time_avg(N, || {
        fnode.verify_request(&request, &executor).expect("valid");
    });
    println!("  (B) request verification  write {b_time:>9.2?}  read {b_time:>9.2?}   (paper 714 µs / 703 µs)");

    // (C) response generation: read = account proof + sign; write =
    // 200-tx block proof + sign.
    let state = net.chain().state().clone();
    let c_read_proof = time_avg(N, || {
        state.account_proof(&me);
    });
    let node_key = *net.node(node).secret();
    let c_read_total = time_avg(N, || {
        let proof = state.account_proof(&me);
        let account = state.account(&me).map(|a| a.encode()).unwrap_or_default();
        ParpResponse::build(&node_key, &request, 1, account, proof);
    });
    let (chain200, _) = chain_with_block_of(200);
    let block = chain200.head().clone();
    let lc_key = SecretKey::from_seed(b"report-lc");
    let w_request = ParpRequest::build(
        &lc_key,
        0,
        block.hash(),
        U256::from(10u64),
        RpcCall::SendRawTransaction {
            raw: block.transactions[100].encode(),
        },
    );
    let c_write_proof = time_avg(N, || {
        block.transaction_proof(100).expect("in range");
    });
    let c_write_total = time_avg(N, || {
        let proof = block.transaction_proof(100).expect("in range");
        ParpResponse::build(
            &node_key,
            &w_request,
            block.number(),
            parp_rlp::encode_u64(100),
            proof,
        );
    });
    println!("  (C) response gen (proof)  write {c_write_proof:>9.2?}  read {c_read_proof:>9.2?}   (paper 3.08 ms / 477 µs)");
    println!("  (C) response gen (total)  write {c_write_total:>9.2?}  read {c_read_total:>9.2?}   (paper 3.37 ms / 1.29 ms)");

    // (D) response verification.
    let response = net.serve(node, &request).expect("serve");
    net.sync_client(&mut client);
    let header = net.chain().head().header.clone();
    let account_key = parp_crypto::keccak256(me.as_bytes());
    let d_read_proof = time_avg(N, || {
        parp_trie::verify_proof(header.state_root, account_key.as_bytes(), &response.proof)
            .expect("verifies");
    });
    let node_addr = net.node(node).address();
    let request_height = request_height_of(&net, &request);
    let d_read_total = time_avg(N, || {
        classify_response(&request, &response, node_addr, request_height, |n| {
            (n == header.number).then(|| header.clone())
        });
    });
    let w_proof = block.transaction_proof(100).expect("in range");
    let w_response = ParpResponse::build(
        &node_key,
        &w_request,
        block.number(),
        parp_rlp::encode_u64(100),
        w_proof,
    );
    let tx_key = parp_rlp::encode_u64(100);
    let d_write_proof = time_avg(N, || {
        parp_trie::verify_proof(block.header.transactions_root, &tx_key, &w_response.proof)
            .expect("verifies");
    });
    let d_write_total = time_avg(N, || {
        classify_response(
            &w_request,
            &w_response,
            node_key.address(),
            block.number(),
            |n| (n == block.header.number).then(|| block.header.clone()),
        );
    });
    println!("  (D) response ver (proof)  write {d_write_proof:>9.2?}  read {d_read_proof:>9.2?}   (paper 7.13 ms / 5.78 ms)");
    println!("  (D) response ver (total)  write {d_write_total:>9.2?}  read {d_read_total:>9.2?}   (paper 8.11 ms / 1.01 ms)");
}

fn request_height_of(net: &parp_net::Network, request: &ParpRequest) -> u64 {
    net.chain()
        .block_number_by_hash(&request.block_hash)
        .unwrap_or(0)
}

fn table4() {
    println!("\n== Table IV: on-chain gas costs ==");
    let node = SecretKey::from_seed(b"t4r-node");
    let client = SecretKey::from_seed(b"t4r-client");
    let funds = U256::from(100u64) * min_deposit();
    let mut chain = Blockchain::new(vec![(node.address(), funds), (client.address(), funds)]);
    let mut executor = ParpExecutor::new();
    let mut node_nonce = 0u64;
    let mut client_nonce = 0u64;
    let run = |chain: &mut Blockchain,
               executor: &mut ParpExecutor,
               key: &SecretKey,
               nonce: &mut u64,
               call: ModuleCall,
               value: U256|
     -> u64 {
        let tx = build_module_call(key, *nonce, call, value);
        *nonce += 1;
        chain.produce_block(vec![tx], executor).expect("block");
        assert_eq!(
            chain.receipts(chain.height()).unwrap()[0].status,
            1,
            "module call must succeed"
        );
        chain.head().header.gas_used
    };

    let deposit_gas = run(
        &mut chain,
        &mut executor,
        &node,
        &mut node_nonce,
        ModuleCall::Deposit,
        min_deposit(),
    );
    run(
        &mut chain,
        &mut executor,
        &node,
        &mut node_nonce,
        ModuleCall::SetServing { serving: true },
        U256::ZERO,
    );
    let expiry = chain.head().header.timestamp + 3600;
    let sig = sign(&node, &confirmation_digest(&client.address(), expiry));
    let open_gas = run(
        &mut chain,
        &mut executor,
        &client,
        &mut client_nonce,
        ModuleCall::OpenChannel {
            full_node: node.address(),
            expiry,
            confirmation_sig: sig,
        },
        U256::from(1_000_000u64),
    );
    let id = executor.cmm().channel_count() as u64 - 1;
    let amount = U256::from(500u64);
    let pay_sig = sign(&client, &payment_digest(id, &amount));
    let close_gas = run(
        &mut chain,
        &mut executor,
        &node,
        &mut node_nonce,
        ModuleCall::CloseChannel {
            channel_id: id,
            amount,
            payment_sig: pay_sig,
        },
        U256::ZERO,
    );
    for _ in 0..DISPUTE_WINDOW_BLOCKS {
        chain
            .produce_block(Vec::new(), &mut executor)
            .expect("block");
    }
    let confirm_gas = run(
        &mut chain,
        &mut executor,
        &node,
        &mut node_nonce,
        ModuleCall::ConfirmClosure { channel_id: id },
        U256::ZERO,
    );
    // Second channel for the fraud path.
    let expiry2 = chain.head().header.timestamp + 3600;
    let sig2 = sign(&node, &confirmation_digest(&client.address(), expiry2));
    run(
        &mut chain,
        &mut executor,
        &client,
        &mut client_nonce,
        ModuleCall::OpenChannel {
            full_node: node.address(),
            expiry: expiry2,
            confirmation_sig: sig2,
        },
        U256::from(1_000u64),
    );
    let id2 = executor.cmm().channel_count() as u64 - 1;
    let head = chain.head().header.clone();
    let f_request = ParpRequest::build(
        &client,
        id2,
        head.hash(),
        U256::from(10u64),
        RpcCall::GetBalance {
            address: client.address(),
        },
    );
    let proof = chain
        .state_at(head.number)
        .unwrap()
        .account_proof(&client.address());
    let forged = parp_chain::Account::with_balance(U256::ONE);
    let f_response = ParpResponse::build(&node, &f_request, head.number, forged.encode(), proof);
    let fraud_gas = run(
        &mut chain,
        &mut executor,
        &client,
        &mut client_nonce,
        ModuleCall::SubmitFraudProof {
            request: f_request.encode(),
            response: f_response.encode(),
            witness: Address::from_low_u64_be(0x317),
            header: head.encode(),
        },
        U256::ZERO,
    );

    let usd = |gas: u64, gwei: f64| gas as f64 * gwei * 1e-9 * 4000.0;
    for (label, gas, paper) in [
        ("Deposit funds", deposit_gas, 45_238u64),
        ("Open a channel", open_gas, 196_183),
        ("Close a channel", close_gas, 110_118),
        ("Confirm closure", confirm_gas, 87_128),
        ("Submit a fraud proof", fraud_gas, 762_508),
    ] {
        println!(
            "  {label:<22} {gas:>8} gas (paper {paper:>7})  mainnet ${:>7.3}  arbitrum ${:>7.4}",
            usd(gas, 12.0),
            usd(gas, 0.1)
        );
    }
}

fn fig6() {
    println!("\n== Figure 6: Merkle proof size vs transaction index ==");
    println!("  block_size  avg_bytes  min  max   (paper: ~1150 B average at 200 txs)");
    for &size in &[50usize, 100, 200, 300, 400, 500] {
        let (chain, _) = chain_with_block_of(size);
        let block = chain.head();
        let sizes: Vec<usize> = (0..size)
            .map(|i| {
                block
                    .transaction_proof(i)
                    .expect("in range")
                    .iter()
                    .map(Vec::len)
                    .sum()
            })
            .collect();
        let avg = sizes.iter().sum::<usize>() / size;
        let min = *sizes.iter().min().expect("nonempty");
        let max = *sizes.iter().max().expect("nonempty");
        println!("  {size:>10}  {avg:>9}  {min:>4} {max:>5}");
    }
}

fn fig7(full: bool) {
    let requests = if full { 240 } else { 40 };
    println!("\n== Figure 7: scalability, {requests} requests/client ==");
    let config = ScalabilityConfig {
        requests_per_client: requests,
        read_fraction: 0.9,
        seed: 0xF167,
    };
    println!("  clients  cpu_ratio  mem_ratio   (paper at 20: 3.43x cpu, 2.38x mem)");
    for point in run_scalability_sweep(&[1, 5, 10, 15, 20], &config) {
        println!(
            "  {:>7}  {:>8.2}x  {:>8.2}x",
            point.clients,
            point.cpu_ratio(),
            point.mem_ratio()
        );
    }
}

fn time_avg(n: u32, mut f: impl FnMut()) -> std::time::Duration {
    let started = Instant::now();
    for _ in 0..n {
        f();
    }
    started.elapsed() / n
}
