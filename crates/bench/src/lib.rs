//! Shared fixtures for the evaluation benches and the `report` binary.
//!
//! Every table and figure of the paper's §VI maps to one bench target in
//! `benches/` plus one section of the `report` binary (see DESIGN.md §4).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use parp_chain::Blockchain;
use parp_contracts::{ParpRequest, ParpResponse, RpcCall};
use parp_core::LightClient;
use parp_crypto::SecretKey;
use parp_net::{Network, NodeId, Workload};
use parp_primitives::{Address, U256};

/// Price per call used across benches (wei).
pub fn bench_price() -> U256 {
    U256::from(10u64)
}

/// A network with one staked node and one bonded client, ready to serve.
pub fn connected_fixture() -> (Network, NodeId, LightClient) {
    let mut net = Network::with_latency(parp_net::LatencyModel::zero());
    let node = net.spawn_node(b"bench-node", bench_price());
    let mut client = net.spawn_client(b"bench-client", bench_price());
    net.connect(&mut client, node, U256::from(1_000_000_000u64))
        .expect("bench connect");
    (net, node, client)
}

/// A chain whose head block contains exactly `tx_count` transfer
/// transactions (the Figure 6 / Table III "write" substrate), together
/// with the funded sender key.
pub fn chain_with_block_of(tx_count: usize) -> (Blockchain, SecretKey) {
    let sender = SecretKey::from_seed(b"block-filler");
    let supply = U256::ONE << 120;
    let mut chain = Blockchain::new(vec![(sender.address(), supply)]);
    let mut workload = Workload::new(0xF166, sender, 0);
    let txs = workload.transfer_batch(tx_count);
    chain
        .produce_block(txs, &mut parp_chain::TransferExecutor)
        .expect("filled block");
    (chain, sender)
}

/// The read-workload call of §VI-A (`eth_getBalance`).
pub fn read_call(target: Address) -> RpcCall {
    RpcCall::GetBalance { address: target }
}

/// A connected fixture whose chain also carries `accounts` funded
/// accounts, so balance reads walk a populated state trie. Returns the
/// funded addresses (the batch-vs-singles targets).
pub fn populated_fixture(accounts: usize) -> (Network, NodeId, LightClient, Vec<Address>) {
    let (mut net, node, client) = connected_fixture();
    let addresses: Vec<Address> = (0..accounts)
        .map(|i| Address::from_low_u64_be(0xA000_0000 + i as u64))
        .collect();
    for address in &addresses {
        net.fund(*address);
    }
    let mut client = client;
    net.sync_client(&mut client);
    (net, node, client, addresses)
}

/// A ready-to-verify `(request, response, request_height)` triple served
/// honestly over the fixture network.
pub fn served_exchange(
    net: &mut Network,
    node: NodeId,
    client: &mut LightClient,
    call: RpcCall,
) -> (ParpRequest, ParpResponse, u64) {
    let request = client.request(call).expect("bench request");
    let request_height = client.tip().expect("synced").number;
    let response = net.serve(node, &request).expect("bench serve");
    net.sync_client(client);
    (request, response, request_height)
}

/// Formats a `paper vs measured` comparison row.
pub fn comparison_row(label: &str, paper: &str, measured: &str) -> String {
    format!("{label:<42} paper: {paper:>14}   measured: {measured:>14}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_core::ProcessOutcome;

    #[test]
    fn fixture_serves_valid_responses() {
        let (mut net, node, mut client) = connected_fixture();
        let me = client.address();
        let (_, response, _) = served_exchange(&mut net, node, &mut client, read_call(me));
        let outcome = client.process_response(&response).unwrap();
        assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
    }

    #[test]
    fn filled_block_has_requested_size() {
        let (chain, _) = chain_with_block_of(50);
        assert_eq!(chain.head().transactions.len(), 50);
    }
}
