//! Byte-budgeted warm tier over frozen tries: resident pages measured
//! by [`FrozenTrie::mem_bytes`], cold pages spilled to an append-only
//! [`SpillStore`] and rehydrated on demand.

use parp_chain::{Blockchain, State};
use parp_core::ProofEngine;
use parp_primitives::{Address, H256};
use parp_store::SpillStore;
use parp_telemetry::{Counter, Gauge};
use parp_trie::FrozenTrie;
use std::sync::Arc;

/// A [`SnapshotCache`](crate::SnapshotCache)-shaped store whose warm
/// tier is bounded by **measured bytes**, not entry counts.
///
/// The snapshot cache holds N tries regardless of size; for deep
/// historical serving that either wastes the budget on small tries or
/// blows it on large ones. This store accounts every resident page at
/// its [`FrozenTrie::mem_bytes`] — the arena, pools and encoding
/// buffer that actually sit in RAM — and when the total exceeds the
/// budget it serializes the least-recently-used pages to the spill
/// store ([`FrozenTrie::to_bytes`]) and drops them from memory. A
/// later lookup rehydrates the page ([`FrozenTrie::from_bytes`]) with
/// proofs byte-identical to the in-memory original.
///
/// Content addressing (keys are trie roots) makes spilled pages
/// immutable and forever reusable: a rehydrate can never be wrong for
/// its key, so the disk tier needs no invalidation.
///
/// Hit/miss/spill/rehydrate accounting lives in live [`Counter`]
/// handles a telemetry registry can adopt; the resident footprint is
/// mirrored into a [`Gauge`] after every mutation.
#[derive(Debug, Clone)]
pub struct TieredSnapshotStore {
    /// `(root, page, measured bytes)` triples, least recently used
    /// first. Growth is bounded by the byte budget: `enforce_budget`
    /// spills and removes from the front whenever the measured total
    /// exceeds it.
    warm: Vec<(H256, Arc<FrozenTrie>, usize)>,
    budget_bytes: usize,
    resident_bytes: usize,
    spill: SpillStore,
    hits: Counter,
    misses: Counter,
    spills: Counter,
    rehydrates: Counter,
    resident_gauge: Gauge,
}

impl TieredSnapshotStore {
    /// A store keeping at most `budget_bytes` of measured trie bytes
    /// resident, spilling overflow into `spill`.
    ///
    /// The most recently used page is always kept resident even when
    /// it alone exceeds the budget — a budget smaller than one page
    /// must degrade to serve-then-spill, not fail.
    pub fn new(budget_bytes: usize, spill: SpillStore) -> Self {
        TieredSnapshotStore {
            warm: Vec::new(),
            budget_bytes,
            resident_bytes: 0,
            spill,
            hits: Counter::new(),
            misses: Counter::new(),
            spills: Counter::new(),
            rehydrates: Counter::new(),
            resident_gauge: Gauge::new(),
        }
    }

    /// The page for `root`: from the warm tier if resident, rehydrated
    /// from the spill store if spilled, otherwise built via `build`
    /// (returning `None` when `build` cannot produce it). Whatever the
    /// source, the page ends resident and the budget is re-enforced.
    pub fn get_or_insert_with<F>(&mut self, root: H256, build: F) -> Option<Arc<FrozenTrie>>
    where
        F: FnOnce() -> Option<Arc<FrozenTrie>>,
    {
        if let Some(position) = self.warm.iter().position(|(r, _, _)| *r == root) {
            let entry = self.warm.remove(position);
            let page = entry.1.clone();
            self.warm.push(entry);
            self.hits.inc();
            return Some(page);
        }
        // Disk tier: a spilled page rehydrates without touching the
        // chain. A page that fails its bounds checks (torn spill
        // file) falls through to a fresh build instead of erroring.
        let rehydrated = self
            .spill
            .get(&root)
            .ok()
            .flatten()
            .and_then(|page| FrozenTrie::from_bytes(&page))
            .filter(|trie| trie.root_hash() == root);
        let (page, counter) = match rehydrated {
            Some(trie) => (Arc::new(trie), &self.rehydrates),
            None => (build()?, &self.misses),
        };
        counter.inc();
        let bytes = page.mem_bytes();
        self.warm.push((root, page.clone(), bytes));
        self.resident_bytes += bytes;
        self.enforce_budget();
        Some(page)
    }

    /// Spills least-recently-used pages until the measured resident
    /// total fits the budget (always keeping the newest page).
    fn enforce_budget(&mut self) {
        while self.resident_bytes > self.budget_bytes && self.warm.len() > 1 {
            let (root, page, bytes) = self.warm.remove(0);
            // Content-addressed pages never change: spilling the same
            // root twice is a no-op inside the store, so only count
            // the first materialization.
            if !self.spill.contains(&root) && self.spill.put(root, &page.to_bytes()).is_ok() {
                self.spills.inc();
            }
            self.resident_bytes -= bytes;
        }
        self.resident_gauge.set(self.resident_bytes as i64);
    }

    /// Measured bytes currently resident in the warm tier.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// The configured warm-tier budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Resident page count.
    pub fn len(&self) -> usize {
        self.warm.len()
    }

    /// Whether the warm tier is empty.
    pub fn is_empty(&self) -> bool {
        self.warm.is_empty()
    }

    /// Bytes the spill store occupies on disk.
    pub fn disk_bytes(&self) -> u64 {
        self.spill.disk_bytes()
    }

    /// Warm-tier lookups served without a build or a disk read.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that built a fresh page.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Pages serialized out to the spill store.
    pub fn spill_count(&self) -> u64 {
        self.spills.get()
    }

    /// Lookups served by deserializing a spilled page.
    pub fn rehydrate_count(&self) -> u64 {
        self.rehydrates.get()
    }

    /// Live counter handle for registry adoption (hits).
    pub fn hit_counter(&self) -> Counter {
        self.hits.clone()
    }

    /// Live counter handle for registry adoption (misses).
    pub fn miss_counter(&self) -> Counter {
        self.misses.clone()
    }

    /// Live counter handle for registry adoption (spills).
    pub fn spill_counter(&self) -> Counter {
        self.spills.clone()
    }

    /// Live counter handle for registry adoption (rehydrates).
    pub fn rehydrate_counter(&self) -> Counter {
        self.rehydrates.clone()
    }

    /// Live gauge handle for registry adoption (resident bytes).
    pub fn resident_gauge(&self) -> Gauge {
        self.resident_gauge.clone()
    }
}

/// Segment-backed inclusion-proof engine for deep history.
///
/// The runtime's default inclusion path assumes the block is resident
/// (`Blockchain::block` panics past the pruning window). This engine
/// resolves headers and bodies through the chain's cold accessors —
/// which fall through to the append-only segment files when the block
/// has been pruned — and keeps the rebuilt per-block transaction and
/// receipt tries in a [`TieredSnapshotStore`], so repeated old-block
/// lookups pay the segment decode once and a page rehydrate (or warm
/// hit) thereafter. Proofs are byte-identical to the in-memory path:
/// same ordered trie over the same encoded items.
///
/// A missing location yields an *empty* proof rather than a panic; the
/// protocol layer treats an empty proof as unverifiable, so a client
/// asking for a block the node never had gets a refusable answer, not
/// a crashed server.
#[derive(Debug, Clone)]
pub struct ColdProofEngine {
    tier: TieredSnapshotStore,
}

impl ColdProofEngine {
    /// An engine spilling to `spill` under a `budget_bytes` warm tier.
    pub fn new(budget_bytes: usize, spill: SpillStore) -> Self {
        ColdProofEngine {
            tier: TieredSnapshotStore::new(budget_bytes, spill),
        }
    }

    /// The tiered store (counters, resident/disk footprint).
    pub fn tier(&self) -> &TieredSnapshotStore {
        &self.tier
    }

    /// Inclusion proof for item `index` under the ordered trie over
    /// `items`, served through the warm tier.
    fn ordered_proof(
        &mut self,
        root: H256,
        index: usize,
        items: Option<Vec<Vec<u8>>>,
    ) -> Vec<Vec<u8>> {
        let trie = self.tier.get_or_insert_with(root, || {
            let encoded = items?;
            Some(Arc::new(FrozenTrie::new(parp_trie::ordered_trie(
                encoded.iter().map(Vec::as_slice),
            ))))
        });
        match trie {
            Some(trie) => trie.prove(&parp_rlp::encode_u64(index as u64)),
            None => Vec::new(),
        }
    }
}

impl ProofEngine for ColdProofEngine {
    fn account_multiproof(&mut self, state: &State, addresses: &[Address]) -> Vec<Vec<u8>> {
        state.account_multiproof(addresses)
    }

    fn account_proof(&mut self, state: &State, address: &Address) -> Vec<Vec<u8>> {
        state.account_proof(address)
    }

    fn transaction_proof(&mut self, chain: &Blockchain, block: u64, index: usize) -> Vec<Vec<u8>> {
        let Some(header) = chain.header_at(block) else {
            return Vec::new();
        };
        // Resolve the body lazily: a warm (or spilled) trie page means
        // the segment file is never touched.
        let root = header.transactions_root;
        if let Some(trie) = self.tier_hit(root) {
            return trie.prove(&parp_rlp::encode_u64(index as u64));
        }
        let items = chain.transactions_encoded(block);
        self.ordered_proof(root, index, items)
    }

    fn receipt_proof(&mut self, chain: &Blockchain, block: u64, index: usize) -> Vec<Vec<u8>> {
        let Some(header) = chain.header_at(block) else {
            return Vec::new();
        };
        let root = header.receipts_root;
        if let Some(trie) = self.tier_hit(root) {
            return trie.prove(&parp_rlp::encode_u64(index as u64));
        }
        let items = chain.receipts_encoded(block);
        self.ordered_proof(root, index, items)
    }
}

impl ColdProofEngine {
    /// A warm-tier or spill-store page for `root`, if one exists, with
    /// no build fallback (counts a hit or rehydrate, never a miss).
    fn tier_hit(&mut self, root: H256) -> Option<Arc<FrozenTrie>> {
        self.tier.get_or_insert_with(root, || None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_trie::Trie;

    fn page(seed: u64, keys: u32) -> (H256, Arc<FrozenTrie>) {
        let mut trie = Trie::new();
        for i in 0..keys {
            let key = parp_crypto::keccak256(&(seed ^ u64::from(i) << 17).to_be_bytes());
            trie.insert(key.as_bytes().to_vec(), vec![seed as u8; 40]);
        }
        let frozen = FrozenTrie::new(trie);
        (frozen.root_hash(), Arc::new(frozen))
    }

    fn store(budget: usize) -> (TieredSnapshotStore, std::path::PathBuf) {
        let dir = parp_store::scratch_dir("tiered").unwrap();
        let spill = SpillStore::open(&dir).unwrap();
        (TieredSnapshotStore::new(budget, spill), dir)
    }

    #[test]
    fn budget_spills_lru_and_rehydrates_byte_identically() {
        let (root_a, page_a) = page(1, 120);
        let (root_b, page_b) = page(2, 120);
        let budget = page_a.mem_bytes() + page_b.mem_bytes() / 2;
        let (mut tiered, dir) = store(budget);
        assert!(tiered
            .get_or_insert_with(root_a, || Some(page_a.clone()))
            .is_some());
        assert!(tiered
            .get_or_insert_with(root_b, || Some(page_b.clone()))
            .is_some());
        // A was least recently used: spilled to fit the budget.
        assert_eq!(tiered.spill_count(), 1);
        assert_eq!(tiered.len(), 1);
        assert!(tiered.resident_bytes() <= budget);
        assert!(tiered.disk_bytes() > 0);
        // Touching A again rehydrates from disk — no rebuild — and the
        // proofs are byte-identical to the in-memory original.
        let back = tiered
            .get_or_insert_with(root_a, || panic!("must rehydrate, not rebuild"))
            .unwrap();
        assert_eq!(tiered.rehydrate_count(), 1);
        let key = parp_crypto::keccak256(&1u64.to_be_bytes());
        assert_eq!(back.prove(key.as_bytes()), page_a.prove(key.as_bytes()));
        assert_eq!(back.root_hash(), root_a);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn warm_hits_do_not_touch_disk() {
        let (root, page) = page(7, 50);
        let (mut tiered, dir) = store(usize::MAX);
        tiered.get_or_insert_with(root, || Some(page.clone()));
        let first = tiered
            .get_or_insert_with(root, || panic!("resident"))
            .unwrap();
        let second = tiered
            .get_or_insert_with(root, || panic!("resident"))
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second), "one shared resident build");
        assert_eq!(tiered.hits(), 2);
        assert_eq!(tiered.misses(), 1);
        assert_eq!(tiered.spill_count(), 0);
        assert_eq!(tiered.disk_bytes(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn newest_page_survives_a_tiny_budget() {
        let (root_a, page_a) = page(3, 80);
        let (root_b, page_b) = page(4, 80);
        let (mut tiered, dir) = store(1); // smaller than any one page
        tiered.get_or_insert_with(root_a, || Some(page_a.clone()));
        tiered.get_or_insert_with(root_b, || Some(page_b.clone()));
        assert_eq!(tiered.len(), 1, "newest page stays resident");
        assert_eq!(tiered.warm[0].0, root_b);
        assert_eq!(tiered.spill_count(), 1);
        // Alternating lookups keep serving via rehydration.
        assert!(tiered
            .get_or_insert_with(root_a, || panic!("spilled, must rehydrate"))
            .is_some());
        assert_eq!(tiered.rehydrate_count(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn gauge_tracks_resident_bytes() {
        let (root, page) = page(9, 60);
        let (mut tiered, dir) = store(usize::MAX);
        let gauge = tiered.resident_gauge();
        tiered.get_or_insert_with(root, || Some(page.clone()));
        // enforce_budget ran and mirrored the measured size.
        assert_eq!(gauge.get(), page.mem_bytes() as i64);
        assert_eq!(tiered.resident_bytes(), page.mem_bytes());
        let _ = std::fs::remove_dir_all(dir);
    }
}
