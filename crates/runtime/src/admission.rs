//! Per-client admission control: token-bucket rate limiting plus fair
//! round-robin dequeueing across open channels.
//!
//! Multi-tenant RPC serving is only incentive-compatible when one
//! aggressive client cannot buy the whole node (Relay Mining makes the
//! same observation for its relay quotas): a payment channel entitles a
//! client to *its* rate, not to the head of every queue. The runtime
//! enforces that in two layers — a [`TokenBucket`] per client bounds
//! how many calls it may even enqueue per unit time, and a [`FairQueue`]
//! rotates service across clients so queued backlogs from one channel
//! cannot starve another's.
//!
//! All time is a caller-supplied microsecond clock, so simulations stay
//! deterministic and tests never sleep.

use parp_primitives::Address;
use parp_telemetry::Counter;
use std::collections::{HashMap, VecDeque};

/// Micro-tokens per token: buckets refill with integer math only.
const MICRO: u64 = 1_000_000;

/// A token bucket: `capacity` burst, `rate` tokens/second steady state.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity_micro: u64,
    available_micro: u64,
    rate_per_sec: u64,
    last_refill_us: u64,
}

impl TokenBucket {
    /// A bucket starting full.
    pub fn new(capacity: u64, rate_per_sec: u64, now_us: u64) -> Self {
        TokenBucket {
            capacity_micro: capacity.saturating_mul(MICRO),
            available_micro: capacity.saturating_mul(MICRO),
            rate_per_sec,
            last_refill_us: now_us,
        }
    }

    /// Whole tokens currently available.
    pub fn available(&self, now_us: u64) -> u64 {
        self.peek_available_micro(now_us) / MICRO
    }

    fn peek_available_micro(&self, now_us: u64) -> u64 {
        let elapsed = now_us.saturating_sub(self.last_refill_us);
        let refill = (elapsed as u128 * self.rate_per_sec as u128) as u64;
        self.available_micro
            .saturating_add(refill)
            .min(self.capacity_micro)
    }

    fn refill(&mut self, now_us: u64) {
        self.available_micro = self.peek_available_micro(now_us);
        self.last_refill_us = self.last_refill_us.max(now_us);
    }

    /// Takes `cost` tokens, or reports how many microseconds until they
    /// will have refilled.
    ///
    /// # Errors
    ///
    /// Returns `Err(retry_after_us)` when the bucket cannot cover the
    /// cost now.
    pub fn try_take(&mut self, cost: u64, now_us: u64) -> Result<(), u64> {
        self.refill(now_us);
        let cost_micro = cost.saturating_mul(MICRO);
        if cost_micro > self.capacity_micro {
            // Never admissible; report a full-capacity refill horizon.
            return Err(u64::MAX);
        }
        if self.available_micro >= cost_micro {
            self.available_micro -= cost_micro;
            return Ok(());
        }
        let missing = cost_micro - self.available_micro;
        let retry_after_us = if self.rate_per_sec == 0 {
            u64::MAX
        } else {
            missing.div_ceil(self.rate_per_sec)
        };
        Err(retry_after_us)
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The client's bucket is empty; retry after roughly this long.
    RateLimited {
        /// Microseconds until the bucket covers the rejected cost
        /// (`u64::MAX` when it never will).
        retry_after_us: u64,
    },
}

/// Per-client admission statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Calls admitted for serving.
    pub admitted: u64,
    /// Calls rejected by the rate limit.
    pub throttled: u64,
}

/// Token buckets for every client a node serves.
///
/// Besides the per-client [`AdmissionStats`], the controller keeps two
/// live global [`Counter`]s (total admitted / throttled calls) that a
/// telemetry registry can adopt, so fleet-wide admission pressure is
/// one exported metric instead of a walk over every client.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    burst_capacity: u64,
    rate_per_sec: u64,
    buckets: HashMap<Address, TokenBucket>,
    stats: HashMap<Address, AdmissionStats>,
    admitted_total: Counter,
    throttled_total: Counter,
}

impl AdmissionController {
    /// A controller giving every client a `burst_capacity`-call burst
    /// refilling at `rate_per_sec` calls per second.
    pub fn new(burst_capacity: u64, rate_per_sec: u64) -> Self {
        AdmissionController {
            burst_capacity,
            rate_per_sec,
            buckets: HashMap::new(),
            stats: HashMap::new(),
            admitted_total: Counter::new(),
            throttled_total: Counter::new(),
        }
    }

    /// Admits `calls` calls from `client` at `now_us`, charging one
    /// token per call (a batch of N costs N — batching amortizes
    /// signatures, not entitlement).
    ///
    /// # Errors
    ///
    /// Returns [`AdmissionError::RateLimited`] when the client's bucket
    /// cannot cover the calls.
    pub fn admit(
        &mut self,
        client: Address,
        calls: u64,
        now_us: u64,
    ) -> Result<(), AdmissionError> {
        let bucket = self
            .buckets
            .entry(client)
            .or_insert_with(|| TokenBucket::new(self.burst_capacity, self.rate_per_sec, now_us));
        let stats = self.stats.entry(client).or_default();
        match bucket.try_take(calls, now_us) {
            Ok(()) => {
                stats.admitted += calls;
                self.admitted_total.add(calls);
                Ok(())
            }
            Err(retry_after_us) => {
                stats.throttled += calls;
                self.throttled_total.add(calls);
                Err(AdmissionError::RateLimited { retry_after_us })
            }
        }
    }

    /// Admission statistics for `client`.
    pub fn stats(&self, client: &Address) -> AdmissionStats {
        self.stats.get(client).copied().unwrap_or_default()
    }

    /// Live handle to the global admitted-calls counter, for registry
    /// adoption.
    pub fn admitted_counter(&self) -> Counter {
        self.admitted_total.clone()
    }

    /// Live handle to the global throttled-calls counter, for registry
    /// adoption.
    pub fn throttled_counter(&self) -> Counter {
        self.throttled_total.clone()
    }
}

/// Round-robin queues, one per client: each [`FairQueue::pop`] serves
/// the next client in rotation, so a deep backlog on one channel delays
/// other channels by at most one service each per round.
///
/// A client's entry lives exactly as long as it has backlog: popping a
/// queue's last item drops the queue from the rotation, and a later
/// [`FairQueue::push`] re-registers the client at the rotation's tail.
/// (The original implementation kept drained queues forever — unbounded
/// memory growth and O(total-clients-ever-seen) `pop` scans under churn
/// of one-shot clients.)
#[derive(Debug, Clone)]
pub struct FairQueue<T> {
    /// Per-client queues in rotation order; every queue is non-empty
    /// (emptied queues are removed on pop). `cursor` points at the next
    /// client to serve.
    queues: Vec<(Address, VecDeque<T>)>,
    cursor: usize,
    len: usize,
}

impl<T> Default for FairQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FairQueue<T> {
    /// An empty queue set.
    pub fn new() -> Self {
        FairQueue {
            queues: Vec::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Total queued items across all clients.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of clients currently holding backlog — the rotation's
    /// size, and the upper bound on how many services any one client
    /// waits between its turns.
    pub fn active_clients(&self) -> usize {
        self.queues.len()
    }

    /// Queued items for one client.
    pub fn backlog(&self, client: &Address) -> usize {
        self.queues
            .iter()
            .find(|(c, _)| c == client)
            .map(|(_, q)| q.len())
            .unwrap_or(0)
    }

    /// Enqueues an item for `client`, registering the client at the end
    /// of the rotation when it has no backlog.
    pub fn push(&mut self, client: Address, item: T) {
        self.len += 1;
        match self.queues.iter_mut().find(|(c, _)| *c == client) {
            Some((_, queue)) => queue.push_back(item),
            None => {
                // Insert at the rotation's tail: every client that
                // already has backlog is served once before the
                // newcomer, exactly as if it had always been last.
                let at = self.cursor.min(self.queues.len());
                self.queues.insert(at, (client, VecDeque::from([item])));
                self.cursor = at + 1;
            }
        }
    }

    /// Dequeues the next item round-robin across clients with backlog.
    /// O(1) scan: every registered queue is non-empty by invariant.
    pub fn pop(&mut self) -> Option<(Address, T)> {
        if self.len == 0 {
            return None;
        }
        if self.cursor >= self.queues.len() {
            self.cursor = 0;
        }
        let (client, queue) = &mut self.queues[self.cursor];
        let client = *client;
        let item = queue.pop_front().expect("queues in rotation are non-empty");
        self.len -= 1;
        if queue.is_empty() {
            // Drop the drained queue; the element after it shifts into
            // `cursor`, which is exactly the next client in rotation.
            self.queues.remove(self.cursor);
        } else {
            self.cursor += 1;
        }
        Some((client, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(n: u64) -> Address {
        Address::from_low_u64_be(n)
    }

    #[test]
    fn bucket_burst_then_rate() {
        let mut bucket = TokenBucket::new(10, 5, 0);
        assert!(bucket.try_take(10, 0).is_ok());
        let retry = bucket.try_take(1, 0).unwrap_err();
        assert_eq!(retry, 200_000, "one token at 5/s is 200ms away");
        // After one second, exactly 5 tokens refilled.
        assert_eq!(bucket.available(1_000_000), 5);
        assert!(bucket.try_take(5, 1_000_000).is_ok());
        assert!(bucket.try_take(1, 1_000_000).is_err());
        // Refill caps at capacity.
        assert_eq!(bucket.available(100_000_000), 10);
    }

    #[test]
    fn oversized_and_zero_rate_requests() {
        let mut bucket = TokenBucket::new(4, 0, 0);
        assert!(bucket.try_take(4, 0).is_ok());
        assert_eq!(bucket.try_take(1, 0).unwrap_err(), u64::MAX);
        let mut bucket = TokenBucket::new(4, 10, 0);
        assert_eq!(bucket.try_take(5, 0).unwrap_err(), u64::MAX);
    }

    #[test]
    fn controller_isolates_clients() {
        let mut controller = AdmissionController::new(3, 1);
        assert!(controller.admit(client(1), 3, 0).is_ok());
        assert!(matches!(
            controller.admit(client(1), 1, 0),
            Err(AdmissionError::RateLimited { .. })
        ));
        // Client 2's bucket is untouched by client 1's exhaustion.
        assert!(controller.admit(client(2), 3, 0).is_ok());
        assert_eq!(
            controller.stats(&client(1)),
            AdmissionStats {
                admitted: 3,
                throttled: 1
            }
        );
    }

    #[test]
    fn fair_queue_round_robins() {
        let mut queue = FairQueue::new();
        // Client 1 floods 100 items before client 2 enqueues 3.
        for i in 0..100 {
            queue.push(client(1), i);
        }
        for i in 0..3 {
            queue.push(client(2), 100 + i);
        }
        assert_eq!(queue.len(), 103);
        assert_eq!(queue.backlog(&client(1)), 100);
        // Client 2's three items are all served within the first 6 pops.
        let first_six: Vec<Address> = (0..6).map(|_| queue.pop().unwrap().0).collect();
        assert_eq!(
            first_six.iter().filter(|c| **c == client(2)).count(),
            3,
            "round-robin must interleave the small queue"
        );
        // Drain preserves per-client FIFO order.
        let mut last = None;
        while let Some((c, item)) = queue.pop() {
            assert_eq!(c, client(1));
            if let Some(previous) = last {
                assert!(item > previous);
            }
            last = Some(item);
        }
        assert!(queue.is_empty());
    }
}
