//! Sharded multiproof generation: batch items partitioned across a
//! `std::thread` worker pool by account trie key, per-shard proof paths
//! generated in parallel, merged into the exact deduplicated multiproof
//! the sequential path produces.
//!
//! Determinism is the contract: the merged node set is **byte-identical
//! to [`parp_trie::Trie::prove_many`] for every shard count**, because each key's
//! proof path is a pure function of the trie, and the merge replays the
//! paths in the original call order with the same first-touch
//! deduplication. Sharding only decides *which worker walks which key*,
//! never what ends up on the wire — so a response served with 8 shards
//! verifies (and hashes, and signs) exactly like one served with 1.

use parp_crypto::keccak256;
use parp_primitives::{Address, H256};
use parp_trie::FrozenTrie;
use std::collections::HashSet;

/// Upper bound on worker threads per batch; more shards than this would
/// only add scheduling noise on any realistic host.
pub const MAX_SHARDS: usize = 64;

/// Below this many keys the batch runs inline: against a frozen trie
/// each proof walk is O(depth), so spawning workers costs more than the
/// walks themselves.
pub const INLINE_THRESHOLD: usize = 32;

/// The shard a trie key lands on: its leading byte modulo the shard
/// count. Keys are keccak256 outputs, so the leading byte is uniform and
/// the partition is balanced without any coordination.
pub fn shard_of(key: &[u8], shards: usize) -> usize {
    debug_assert!(shards > 0);
    key.first().map(|b| *b as usize % shards).unwrap_or(0)
}

/// Deduplicated account multiproof for `addresses` under `trie`,
/// generated across `shards` workers. Byte-identical to
/// `trie.prove_many(keccak256(address) for address in addresses)` for
/// every shard count (including 1, which runs inline without spawning).
/// Takes a [`FrozenTrie`] so every per-key walk is O(depth) — the
/// snapshot cache hands the same frozen trie to all workers.
pub fn sharded_account_multiproof(
    trie: &FrozenTrie,
    addresses: &[Address],
    shards: usize,
) -> Vec<Vec<u8>> {
    let keys: Vec<H256> = addresses
        .iter()
        .map(|address| keccak256(address.as_bytes()))
        .collect();
    let paths = prove_paths(trie, &keys, shards);
    merge_paths(paths)
}

/// Per-key proof paths in call order, walked by `shards` scoped workers
/// (spawned per batch — workers live exactly as long as the batch, so
/// there is no idle pool to drain on shutdown).
fn prove_paths(trie: &FrozenTrie, keys: &[H256], shards: usize) -> Vec<Vec<Vec<u8>>> {
    let shards = shards.clamp(1, MAX_SHARDS);
    if shards == 1 || keys.len() < INLINE_THRESHOLD {
        return keys.iter().map(|key| trie.prove(key.as_bytes())).collect();
    }
    let mut paths: Vec<Option<Vec<Vec<u8>>>> = vec![None; keys.len()];
    // Partition key indices by shard; each worker owns its slice of the
    // key space and walks the shared trie read-only.
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for (index, key) in keys.iter().enumerate() {
        assignment[shard_of(key.as_bytes(), shards)].push(index);
    }
    let mut results: Vec<Vec<(usize, Vec<Vec<u8>>)>> = Vec::new();
    std::thread::scope(|scope| {
        let workers: Vec<_> = assignment
            .iter()
            .filter(|indices| !indices.is_empty())
            .map(|indices| {
                scope.spawn(move || {
                    indices
                        .iter()
                        .map(|&index| (index, trie.prove(keys[index].as_bytes())))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        results = workers
            .into_iter()
            .map(|worker| worker.join().expect("shard worker panicked"))
            .collect();
    });
    for shard_paths in results {
        for (index, path) in shard_paths {
            paths[index] = Some(path);
        }
    }
    paths
        .into_iter()
        .map(|path| path.expect("every key assigned to exactly one shard"))
        .collect()
}

/// First-touch-order dedup merge — the same fold [`Trie::prove_many`]
/// performs, applied to pre-walked paths.
fn merge_paths(paths: Vec<Vec<Vec<u8>>>) -> Vec<Vec<u8>> {
    let mut seen: HashSet<H256> = HashSet::new();
    let mut nodes = Vec::new();
    for path in paths {
        for node in path {
            if seen.insert(keccak256(&node)) {
                nodes.push(node);
            }
        }
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_primitives::U256;

    fn populated_trie(n: u64) -> (FrozenTrie, Vec<Address>) {
        let state = parp_chain::State::with_alloc(
            (1..=n).map(|i| (Address::from_low_u64_be(i * 31), U256::from(i))),
        );
        let addresses: Vec<Address> = (1..=n).map(|i| Address::from_low_u64_be(i * 31)).collect();
        (FrozenTrie::new(state.build_trie()), addresses)
    }

    #[test]
    fn byte_identical_across_shard_counts() {
        let (trie, addresses) = populated_trie(300);
        // The unfrozen trie's walk-and-encode path is the reference.
        let sequential = trie.trie().prove_many(
            addresses
                .iter()
                .map(|a| keccak256(a.as_bytes()).as_bytes().to_vec()),
        );
        for shards in [1, 2, 3, 8, 64] {
            assert_eq!(
                sharded_account_multiproof(&trie, &addresses, shards),
                sequential,
                "shard count {shards} diverged"
            );
        }
    }

    #[test]
    fn duplicates_absences_and_empty_inputs() {
        let (trie, addresses) = populated_trie(50);
        // Duplicate keys and absent accounts, shuffled across shards —
        // enough of them to clear INLINE_THRESHOLD so the parallel
        // merge path is the one under test.
        let mut mixed = vec![
            addresses[3],
            Address::from_low_u64_be(0xdead),
            addresses[3],
            addresses[40],
            Address::from_low_u64_be(0xbeef),
        ];
        for i in 0..INLINE_THRESHOLD {
            mixed.push(addresses[i % addresses.len()]);
        }
        let sequential = trie.trie().prove_many(
            mixed
                .iter()
                .map(|a| keccak256(a.as_bytes()).as_bytes().to_vec()),
        );
        for shards in [1, 2, 8] {
            assert_eq!(
                sharded_account_multiproof(&trie, &mixed, shards),
                sequential
            );
        }
        assert!(sharded_account_multiproof(&trie, &[], 8).is_empty());
    }

    #[test]
    fn oversized_shard_count_clamped() {
        let (trie, addresses) = populated_trie(INLINE_THRESHOLD as u64 + 10);
        let reference = sharded_account_multiproof(&trie, &addresses, 1);
        assert_eq!(
            sharded_account_multiproof(&trie, &addresses, 10_000),
            reference
        );
    }

    #[test]
    fn shard_partition_is_total() {
        for shards in 1..=8 {
            for byte in 0..=255u8 {
                let shard = shard_of(&[byte, 1, 2], shards);
                assert!(shard < shards);
            }
        }
        assert_eq!(shard_of(&[], 4), 0);
    }
}
