//! Sharded multiproof generation: batch items partitioned across a
//! `std::thread` worker pool, per-shard proof paths walked in parallel
//! as **arena witness ids**, merged into the exact deduplicated
//! multiproof the sequential path produces.
//!
//! Determinism is the contract: the merged node set is **byte-identical
//! to [`parp_trie::Trie::prove_many`] for every shard count**, because each key's
//! proof path is a pure function of the trie, and the merge replays the
//! paths in the original call order with the same first-touch
//! deduplication. Sharding only decides *which worker walks which key*,
//! never what ends up on the wire — so a response served with 8 shards
//! verifies (and hashes, and signs) exactly like one served with 1.
//!
//! Workers never touch proof bytes: each walks its keys over the shared
//! [`FrozenTrie`] arena and returns `u32` witness ids. The merge dedups
//! them through a bitset (no hashing) and materializes each surviving
//! node exactly once — straight into the caller's [`ProofBuf`] on the
//! zero-copy path.
//!
//! Work is split into **equal-size contiguous index chunks**, not by key
//! bytes: a byte-keyed partition (the previous leading-byte scheme)
//! collapses under Zipf-skewed hot-account workloads, where most keys of
//! a batch can share a prefix or simply repeat. Chunking balances worker
//! load for any key distribution, including all-duplicates.

use parp_crypto::keccak256;
use parp_primitives::{Address, H256};
use parp_trie::{FrozenTrie, ProofBuf};

/// Upper bound on worker threads per batch; more shards than this would
/// only add scheduling noise on any realistic host.
pub const MAX_SHARDS: usize = 64;

/// Below this many keys the batch runs inline: against a frozen trie
/// each proof walk is O(depth), so spawning workers costs more than the
/// walks themselves.
pub const INLINE_THRESHOLD: usize = 32;

/// The shard a trie key lands on: a splitmix64 mix of the key's first
/// eight bytes, reduced modulo the shard count.
///
/// Mixing (rather than taking the leading byte, as this function once
/// did) keeps the partition balanced even when keys share a prefix —
/// the Zipf-skew failure mode of hot-account workloads. The proof
/// workers themselves no longer partition by key at all (see the module
/// docs); this remains the key-affine partitioner for callers that need
/// a stable key → shard mapping (e.g. cache sharding).
pub fn shard_of(key: &[u8], shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut acc = 0u64;
    for &byte in key.iter().take(8) {
        acc = (acc << 8) | u64::from(byte);
    }
    let mut z = acc.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// Deduplicated account multiproof for `addresses` under `trie`,
/// generated across `shards` workers. Byte-identical to
/// `trie.prove_many(keccak256(address) for address in addresses)` for
/// every shard count (including 1, which runs inline without spawning).
/// Takes a [`FrozenTrie`] so every per-key walk is O(depth) — the
/// snapshot cache hands the same frozen trie to all workers.
pub fn sharded_account_multiproof(
    trie: &FrozenTrie,
    addresses: &[Address],
    shards: usize,
) -> Vec<Vec<u8>> {
    let paths = account_id_paths(trie, addresses, shards);
    let mut nodes = Vec::new();
    merge_id_paths(trie, &paths, |bytes| nodes.push(bytes.to_vec()));
    nodes
}

/// [`sharded_account_multiproof`] serialized into a reusable
/// [`ProofBuf`]: the same node set, written zero-copy into one
/// contiguous allocation. Clears `out` first; capacity is retained
/// across batches.
pub fn sharded_account_multiproof_into(
    trie: &FrozenTrie,
    addresses: &[Address],
    shards: usize,
    out: &mut ProofBuf,
) {
    out.clear();
    let paths = account_id_paths(trie, addresses, shards);
    merge_id_paths(trie, &paths, |bytes| out.push(bytes));
}

/// Per-key witness-id paths for the account keys, in call order.
fn account_id_paths(trie: &FrozenTrie, addresses: &[Address], shards: usize) -> Vec<Vec<u32>> {
    let keys: Vec<H256> = addresses
        .iter()
        .map(|address| keccak256(address.as_bytes()))
        .collect();
    prove_id_paths(trie, &keys, shards)
}

/// Per-key witness-id paths in call order, walked by up to `shards`
/// scoped workers (spawned per batch — workers live exactly as long as
/// the batch, so there is no idle pool to drain on shutdown). Keys are
/// split into equal-size contiguous chunks, so worker load stays
/// balanced for arbitrarily skewed (or duplicate-heavy) key sets.
fn prove_id_paths(trie: &FrozenTrie, keys: &[H256], shards: usize) -> Vec<Vec<u32>> {
    let shards = shards.clamp(1, MAX_SHARDS);
    let walk = |key: &H256| {
        let mut ids = Vec::new();
        trie.prove_ids(key.as_bytes(), &mut ids);
        ids
    };
    if shards == 1 || keys.len() < INLINE_THRESHOLD {
        return keys.iter().map(walk).collect();
    }
    let chunk = keys.len().div_ceil(shards);
    let mut results: Vec<Vec<Vec<u32>>> = Vec::new();
    std::thread::scope(|scope| {
        let workers: Vec<_> = keys
            .chunks(chunk)
            .map(|chunk_keys| scope.spawn(move || chunk_keys.iter().map(walk).collect::<Vec<_>>()))
            .collect();
        results = workers
            .into_iter()
            .map(|worker| worker.join().expect("shard worker panicked"))
            .collect();
    });
    // Chunks are contiguous in call order, so flattening restores it.
    results.into_iter().flatten().collect()
}

/// First-touch-order dedup merge — the same fold
/// [`parp_trie::Trie::prove_many`] performs, applied to pre-walked
/// witness ids: a bitset probe per id, one byte materialization per
/// surviving node, zero hashing.
fn merge_id_paths<F: FnMut(&[u8])>(trie: &FrozenTrie, paths: &[Vec<u32>], mut emit: F) {
    let mut seen = vec![false; trie.node_count()];
    for path in paths {
        for &id in path {
            if !std::mem::replace(&mut seen[id as usize], true) {
                emit(trie.node_bytes(id));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_primitives::U256;

    fn populated_trie(n: u64) -> (FrozenTrie, Vec<Address>) {
        let state = parp_chain::State::with_alloc(
            (1..=n).map(|i| (Address::from_low_u64_be(i * 31), U256::from(i))),
        );
        let addresses: Vec<Address> = (1..=n).map(|i| Address::from_low_u64_be(i * 31)).collect();
        (FrozenTrie::new(state.build_trie()), addresses)
    }

    #[test]
    fn byte_identical_across_shard_counts() {
        let (trie, addresses) = populated_trie(300);
        // The unfrozen trie's walk-and-encode path is the reference.
        let sequential = trie.trie().prove_many(
            addresses
                .iter()
                .map(|a| keccak256(a.as_bytes()).as_bytes().to_vec()),
        );
        for shards in [1, 2, 3, 8, 64] {
            assert_eq!(
                sharded_account_multiproof(&trie, &addresses, shards),
                sequential,
                "shard count {shards} diverged"
            );
        }
    }

    #[test]
    fn zero_copy_path_matches_allocating_path() {
        let (trie, addresses) = populated_trie(200);
        let mut buf = ProofBuf::new();
        for shards in [1, 4] {
            sharded_account_multiproof_into(&trie, &addresses, shards, &mut buf);
            assert_eq!(
                buf.to_vecs(),
                sharded_account_multiproof(&trie, &addresses, shards)
            );
        }
        sharded_account_multiproof_into(&trie, &[], 4, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn duplicates_absences_and_empty_inputs() {
        let (trie, addresses) = populated_trie(50);
        // Duplicate keys and absent accounts, shuffled across shards —
        // enough of them to clear INLINE_THRESHOLD so the parallel
        // merge path is the one under test.
        let mut mixed = vec![
            addresses[3],
            Address::from_low_u64_be(0xdead),
            addresses[3],
            addresses[40],
            Address::from_low_u64_be(0xbeef),
        ];
        for i in 0..INLINE_THRESHOLD {
            mixed.push(addresses[i % addresses.len()]);
        }
        let sequential = trie.trie().prove_many(
            mixed
                .iter()
                .map(|a| keccak256(a.as_bytes()).as_bytes().to_vec()),
        );
        for shards in [1, 2, 8] {
            assert_eq!(
                sharded_account_multiproof(&trie, &mixed, shards),
                sequential
            );
        }
        assert!(sharded_account_multiproof(&trie, &[], 8).is_empty());
    }

    #[test]
    fn skewed_key_sets_stay_byte_identical() {
        // A Zipf-flavoured workload: a handful of hot accounts dominate
        // the batch. Under the old leading-byte partition, every copy of
        // a hot key landed on one worker; chunking splits them evenly —
        // and the output must not change either way.
        let (trie, addresses) = populated_trie(100);
        let mut skewed = Vec::new();
        for i in 0..128usize {
            // ~70% of calls hit 4 hot accounts, the rest spread out.
            let address = if i % 10 < 7 {
                addresses[i % 4]
            } else {
                addresses[(i * 13) % addresses.len()]
            };
            skewed.push(address);
        }
        let sequential = trie.trie().prove_many(
            skewed
                .iter()
                .map(|a| keccak256(a.as_bytes()).as_bytes().to_vec()),
        );
        for shards in [1, 2, 8] {
            assert_eq!(
                sharded_account_multiproof(&trie, &skewed, shards),
                sequential,
                "shard count {shards} diverged on the skewed set"
            );
        }
    }

    #[test]
    fn oversized_shard_count_clamped() {
        let (trie, addresses) = populated_trie(INLINE_THRESHOLD as u64 + 10);
        let reference = sharded_account_multiproof(&trie, &addresses, 1);
        assert_eq!(
            sharded_account_multiproof(&trie, &addresses, 10_000),
            reference
        );
    }

    #[test]
    fn shard_partition_is_total() {
        for shards in 1..=8 {
            for byte in 0..=255u8 {
                let shard = shard_of(&[byte, 1, 2], shards);
                assert!(shard < shards);
            }
            assert!(shard_of(&[], shards) < shards);
        }
    }

    #[test]
    fn shard_of_spreads_shared_prefixes() {
        // Every key shares the same leading byte — the case the old
        // `key[0] % shards` partition mapped onto a single shard.
        for shards in [2usize, 4, 8] {
            let mut hit = vec![0usize; shards];
            for i in 0..=255u8 {
                let key = [0xaa, i, 3, 4, 5, 6, 7, 8];
                hit[shard_of(&key, shards)] += 1;
            }
            assert!(
                hit.iter().all(|&count| count > 0),
                "shared-prefix keys collapsed onto a subset of {shards} shards: {hit:?}"
            );
        }
    }
}
