//! `parp-runtime`: the concurrent serving runtime behind a PARP full
//! node.
//!
//! The accountable RPC protocol only matters at provider scale — a full
//! node serving heavy read traffic from many light clients must not let
//! per-request overheads swamp the accountability machinery. This crate
//! supplies the three serving-layer mechanisms the protocol layer
//! (`parp-core`) deliberately stays agnostic of:
//!
//! * [`SnapshotCache`] — an LRU of fully built, `Arc`-shared state
//!   tries keyed by state root. Every exchange served at an unchanged
//!   head reuses one trie instead of paying an O(accounts) rebuild;
//!   [`Runtime::note_new_head`] is the invalidation hook block
//!   production (and reorgs) drive.
//! * [`sharded_account_multiproof`] — batch items split across a
//!   `std::thread` worker pool in equal contiguous chunks (balanced for
//!   any key skew), workers exchanging arena witness ids rather than
//!   proof bytes, with per-shard paths merged into the *same*
//!   deduplicated multiproof the sequential path produces:
//!   byte-identical output for every shard count, so sharding can never
//!   change what the client verifies.
//! * [`AdmissionController`] + [`FairQueue`] — per-client token-bucket
//!   rate limiting and fair round-robin dequeueing across open
//!   channels, so one flooding client is bounded to its paid-for rate
//!   and cannot starve honest clients (the incentive-compatibility
//!   condition Relay Mining identifies for multi-tenant RPC serving).
//! * [`TieredSnapshotStore`] + [`ColdProofEngine`] — a byte-budgeted
//!   warm tier over per-block inclusion tries, spilling cold pages to
//!   `parp-store` segment files and rehydrating them on demand, so a
//!   node can serve arbitrarily deep history under a fixed
//!   `storage_budget_bytes` memory envelope.
//!
//! [`Runtime`] bundles the three behind `parp-core`'s
//! [`ProofEngine`](parp_core::ProofEngine) hook:
//!
//! ```
//! use parp_runtime::{Runtime, RuntimeConfig};
//! use parp_chain::State;
//! use parp_core::ProofEngine;
//! use parp_primitives::{Address, U256};
//!
//! let mut runtime = Runtime::new(RuntimeConfig { shards: 4, ..Default::default() });
//! let state = State::with_alloc(
//!     (1..=100u64).map(|i| (Address::from_low_u64_be(i), U256::from(i))),
//! );
//! let addresses = [Address::from_low_u64_be(1), Address::from_low_u64_be(2)];
//! let multiproof = runtime.account_multiproof(&state, &addresses);
//! // Identical bytes to the sequential path, with the build now cached.
//! assert_eq!(multiproof, state.account_multiproof(&addresses));
//! assert_eq!(runtime.cache().misses(), 1);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod admission;
mod cache;
mod runtime;
mod shard;
mod tiered;

pub use admission::{AdmissionController, AdmissionError, AdmissionStats, FairQueue, TokenBucket};
pub use cache::SnapshotCache;
pub use runtime::{FrozenReadEngine, Runtime, RuntimeConfig, RuntimeError};
pub use shard::{
    shard_of, sharded_account_multiproof, sharded_account_multiproof_into, INLINE_THRESHOLD,
    MAX_SHARDS,
};
pub use tiered::{ColdProofEngine, TieredSnapshotStore};
