//! The serving runtime: snapshot cache + sharded proof executor +
//! admission controller behind one [`parp_core::ProofEngine`].

use crate::admission::{AdmissionController, AdmissionError, AdmissionStats};
use crate::cache::SnapshotCache;
use crate::shard::{sharded_account_multiproof, sharded_account_multiproof_into};
use crate::tiered::ColdProofEngine;
use parp_chain::{Blockchain, State};
use parp_contracts::{
    ParpBatchRequest, ParpBatchResponse, ParpExecutor, ParpRequest, ParpResponse,
};
use parp_core::{FullNode, ProofEngine, ServeError};
use parp_crypto::keccak256;
use parp_primitives::Address;
use parp_telemetry::{Histogram, Telemetry, TimeSource};
use parp_trie::{FrozenTrie, ProofBuf};
use std::collections::HashSet;
use std::sync::Arc;

/// Tuning knobs for a [`Runtime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Built tries kept in the snapshot cache (head + recent history).
    pub snapshot_cache_capacity: usize,
    /// Built per-block transaction and receipt tries kept for serving
    /// batched inclusion lookups (each block contributes up to two
    /// tries, so this covers roughly half as many hot blocks).
    pub inclusion_cache_capacity: usize,
    /// Worker shards for multiproof generation.
    pub shards: usize,
    /// Per-client admission burst (calls).
    pub burst_capacity: u64,
    /// Per-client steady-state admission rate (calls per second).
    pub rate_per_sec: u64,
    /// Warm-tier byte budget for historical inclusion tries. Zero (the
    /// default) keeps the fixed-slot inclusion cache; a non-zero budget
    /// routes inclusion proofs through a [`ColdProofEngine`] whose
    /// resident pages are bounded by *measured* bytes
    /// ([`parp_trie::FrozenTrie::mem_bytes`]), spilling overflow to an
    /// on-disk [`parp_store::SpillStore`] in a scratch directory (use
    /// [`Runtime::enable_cold_storage`] to pick the directory instead).
    pub storage_budget_bytes: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            snapshot_cache_capacity: 8,
            inclusion_cache_capacity: 16,
            shards: 4,
            burst_capacity: 256,
            rate_per_sec: 512,
            storage_budget_bytes: 0,
        }
    }
}

/// Why the runtime refused to serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The client's admission bucket is exhausted.
    Throttled {
        /// Microseconds until the rejected cost would be admissible.
        retry_after_us: u64,
    },
    /// The underlying protocol layer refused the request.
    Serve(ServeError),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Throttled { retry_after_us } => {
                write!(f, "rate limited; retry in {retry_after_us} µs")
            }
            RuntimeError::Serve(e) => write!(f, "serve error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ServeError> for RuntimeError {
    fn from(e: ServeError) -> Self {
        RuntimeError::Serve(e)
    }
}

/// The concurrent serving engine behind a PARP full node.
///
/// Combines the runtime concerns:
///
/// * a [`SnapshotCache`] so exchanges served at an unchanged head reuse
///   one `Arc`-shared trie instead of paying an O(accounts) rebuild;
/// * a second cache of per-block **transaction and receipt tries**
///   (content-addressed by their roots, exactly like state tries), so
///   batched historical inclusion lookups against a hot block reuse one
///   frozen trie instead of rebuilding it per proof;
/// * [sharded multiproof generation](crate::sharded_account_multiproof),
///   byte-identical to the sequential path for any shard count;
/// * an [`AdmissionController`] so one aggressive client cannot starve
///   the others ([`Runtime::admit`] + [`crate::FairQueue`]).
///
/// `FullNode::handle_request`/`handle_batch` route through a runtime by
/// taking it as their [`ProofEngine`]; [`Runtime::serve_request`] and
/// [`Runtime::serve_batch`] are the ready-made entry points.
#[derive(Debug, Clone)]
pub struct Runtime {
    cache: SnapshotCache,
    /// Frozen transaction/receipt tries keyed by their trie roots.
    /// Content addressing makes entries reusable across forks and
    /// immune to invalidation: a block's transaction set never changes.
    inclusion_cache: SnapshotCache,
    shards: usize,
    admission: AdmissionController,
    /// Serve-path histograms, present once a telemetry registry is
    /// attached. `None` keeps the uninstrumented path at one branch.
    metrics: Option<RuntimeMetrics>,
    /// The injected clock serve-path durations are measured with.
    /// Defaults to the host clock (production serving); the
    /// deterministic simulator injects a [`TimeSource::fixed`] handle
    /// so metric readings reproduce across hosts (lint W002).
    clock: TimeSource,
    /// Byte-budgeted cold-storage inclusion path; `None` keeps the
    /// fixed-slot `inclusion_cache` (see `RuntimeConfig::storage_budget_bytes`).
    cold: Option<ColdProofEngine>,
}

/// The runtime's registered histograms (fixed-memory, lock-free).
#[derive(Debug, Clone)]
struct RuntimeMetrics {
    multiproof_us: Arc<Histogram>,
    serve_single_us: Arc<Histogram>,
    serve_batch_us: Arc<Histogram>,
    batch_calls: Arc<Histogram>,
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new(RuntimeConfig::default())
    }
}

impl ProofEngine for Runtime {
    fn account_multiproof(&mut self, state: &State, addresses: &[Address]) -> Vec<Vec<u8>> {
        let trie = self.cache.get_or_build(state);
        let start = self.metrics.is_some().then(|| self.clock.start());
        let proof = sharded_account_multiproof(&trie, addresses, self.shards);
        if let (Some(m), Some(t)) = (&self.metrics, start) {
            m.multiproof_us.record(self.clock.elapsed_us(t));
        }
        proof
    }

    fn account_multiproof_into(
        &mut self,
        state: &State,
        addresses: &[Address],
        out: &mut ProofBuf,
    ) {
        let trie = self.cache.get_or_build(state);
        let start = self.metrics.is_some().then(|| self.clock.start());
        sharded_account_multiproof_into(&trie, addresses, self.shards, out);
        if let (Some(m), Some(t)) = (&self.metrics, start) {
            m.multiproof_us.record(self.clock.elapsed_us(t));
        }
    }

    fn account_proof(&mut self, state: &State, address: &Address) -> Vec<Vec<u8>> {
        let trie = self.cache.get_or_build(state);
        trie.prove(keccak256(address.as_bytes()).as_bytes())
    }

    fn transaction_proof(&mut self, chain: &Blockchain, block: u64, index: usize) -> Vec<Vec<u8>> {
        if let Some(cold) = &mut self.cold {
            return cold.transaction_proof(chain, block, index);
        }
        let Some(header) = chain.header_at(block) else {
            return Vec::new();
        };
        let root = header.transactions_root;
        if let Some(trie) = self.inclusion_cache.get(&root) {
            return trie.prove(&parp_rlp::encode_u64(index as u64));
        }
        let Some(encoded) = chain.transactions_encoded(block) else {
            return Vec::new();
        };
        self.inclusion_cache.miss_counter().inc();
        let trie = Arc::new(FrozenTrie::new(parp_trie::ordered_trie(
            encoded.iter().map(Vec::as_slice),
        )));
        self.inclusion_cache.insert(root, trie.clone());
        trie.prove(&parp_rlp::encode_u64(index as u64))
    }

    fn receipt_proof(&mut self, chain: &Blockchain, block: u64, index: usize) -> Vec<Vec<u8>> {
        if let Some(cold) = &mut self.cold {
            return cold.receipt_proof(chain, block, index);
        }
        let Some(header) = chain.header_at(block) else {
            return Vec::new();
        };
        let root = header.receipts_root;
        if let Some(trie) = self.inclusion_cache.get(&root) {
            return trie.prove(&parp_rlp::encode_u64(index as u64));
        }
        // The ordered trie over the encoded receipts is exactly
        // `parp_chain::receipts_trie`, so the proof bytes match the
        // in-memory path whether the body came from RAM or a segment.
        let Some(encoded) = chain.receipts_encoded(block) else {
            return Vec::new();
        };
        self.inclusion_cache.miss_counter().inc();
        let trie = Arc::new(FrozenTrie::new(parp_trie::ordered_trie(
            encoded.iter().map(Vec::as_slice),
        )));
        self.inclusion_cache.insert(root, trie.clone());
        trie.prove(&parp_rlp::encode_u64(index as u64))
    }
}

impl Runtime {
    /// A runtime with the given tuning.
    ///
    /// A non-zero `storage_budget_bytes` opens a spill store in a fresh
    /// scratch directory; an environment without a writable temp dir
    /// falls back to the in-memory inclusion cache (serving still
    /// works, just unbudgeted). Call [`Runtime::enable_cold_storage`]
    /// to place the spill file somewhere durable instead.
    pub fn new(config: RuntimeConfig) -> Self {
        let cold = (config.storage_budget_bytes > 0)
            .then(|| {
                let dir = parp_store::scratch_dir("runtime-spill").ok()?;
                let spill = parp_store::SpillStore::open(&dir).ok()?;
                Some(ColdProofEngine::new(
                    config.storage_budget_bytes as usize,
                    spill,
                ))
            })
            .flatten();
        Runtime {
            cache: SnapshotCache::new(config.snapshot_cache_capacity),
            inclusion_cache: SnapshotCache::new(config.inclusion_cache_capacity),
            shards: config.shards.max(1),
            admission: AdmissionController::new(config.burst_capacity, config.rate_per_sec),
            metrics: None,
            clock: TimeSource::default(),
            cold,
        }
    }

    /// Routes historical inclusion proofs through a byte-budgeted
    /// [`ColdProofEngine`] spilling to `spill`. Call before
    /// [`Runtime::attach_telemetry`] so the tier's counters are
    /// adopted.
    pub fn enable_cold_storage(&mut self, spill: parp_store::SpillStore, budget_bytes: usize) {
        self.cold = Some(ColdProofEngine::new(budget_bytes, spill));
    }

    /// The cold-storage inclusion engine, when one is enabled (tier
    /// counters, resident/disk footprint).
    pub fn cold_storage(&self) -> Option<&ColdProofEngine> {
        self.cold.as_ref()
    }

    /// Replaces the clock serve-path durations are measured with. The
    /// simulator injects its deterministic [`TimeSource`] here so
    /// runtime histograms record sim-consistent readings; benches
    /// inject [`TimeSource::wall`] to measure the hardware.
    pub fn set_time_source(&mut self, clock: TimeSource) {
        self.clock = clock;
    }

    /// The clock serve-path durations are measured with.
    pub fn time_source(&self) -> &TimeSource {
        &self.clock
    }

    /// Registers the runtime's counters and histograms with
    /// `telemetry` and turns on serve-path latency recording.
    ///
    /// The caches' and admission controller's live counters are
    /// *adopted* (the registry exports the same atomic cells the hot
    /// path already increments), so attaching late loses no counts.
    /// Metric names follow the `parp_<subsystem>_<name>_<unit>`
    /// convention.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let r = &telemetry.registry;
        r.adopt_counter(
            "parp_runtime_snapshot_cache_hits_total",
            &[],
            &self.cache.hit_counter(),
        );
        r.adopt_counter(
            "parp_runtime_snapshot_cache_misses_total",
            &[],
            &self.cache.miss_counter(),
        );
        r.adopt_counter(
            "parp_runtime_inclusion_cache_hits_total",
            &[],
            &self.inclusion_cache.hit_counter(),
        );
        r.adopt_counter(
            "parp_runtime_inclusion_cache_misses_total",
            &[],
            &self.inclusion_cache.miss_counter(),
        );
        r.adopt_counter(
            "parp_runtime_admitted_calls_total",
            &[],
            &self.admission.admitted_counter(),
        );
        r.adopt_counter(
            "parp_runtime_throttled_calls_total",
            &[],
            &self.admission.throttled_counter(),
        );
        if let Some(cold) = &self.cold {
            let tier = cold.tier();
            r.adopt_counter(
                "parp_runtime_warm_tier_hits_total",
                &[],
                &tier.hit_counter(),
            );
            r.adopt_counter(
                "parp_runtime_warm_tier_misses_total",
                &[],
                &tier.miss_counter(),
            );
            r.adopt_counter(
                "parp_runtime_warm_tier_spills_total",
                &[],
                &tier.spill_counter(),
            );
            r.adopt_counter(
                "parp_runtime_warm_tier_rehydrates_total",
                &[],
                &tier.rehydrate_counter(),
            );
            r.adopt_gauge(
                "parp_runtime_warm_tier_resident_bytes",
                &[],
                &tier.resident_gauge(),
            );
        }
        self.metrics = Some(RuntimeMetrics {
            multiproof_us: r.histogram("parp_runtime_multiproof_us", &[]),
            serve_single_us: r.histogram("parp_runtime_serve_single_us", &[]),
            serve_batch_us: r.histogram("parp_runtime_serve_batch_us", &[]),
            batch_calls: r.histogram("parp_runtime_batch_calls", &[]),
        });
    }

    /// Builder form of [`Runtime::attach_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.attach_telemetry(telemetry);
        self
    }

    /// The snapshot cache (hit/miss counters, contents).
    pub fn cache(&self) -> &SnapshotCache {
        &self.cache
    }

    /// The per-block transaction/receipt trie cache (hit/miss counters,
    /// contents), keyed by transaction- or receipt-trie root.
    pub fn inclusion_cache(&self) -> &SnapshotCache {
        &self.inclusion_cache
    }

    /// Current shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Changes the shard count (responses stay byte-identical).
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// Admission check for `calls` calls from `client` at `now_us`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Throttled`] when the client's token
    /// bucket cannot cover the calls.
    pub fn admit(&mut self, client: Address, calls: u64, now_us: u64) -> Result<(), RuntimeError> {
        self.admission.admit(client, calls, now_us).map_err(
            |AdmissionError::RateLimited { retry_after_us }| RuntimeError::Throttled {
                retry_after_us,
            },
        )
    }

    /// Admission statistics for `client`.
    pub fn admission_stats(&self, client: &Address) -> AdmissionStats {
        self.admission.stats(client)
    }

    /// Serves one single-call exchange through the snapshot cache.
    ///
    /// # Errors
    ///
    /// Propagates the node's [`ServeError`]s.
    pub fn serve_request(
        &mut self,
        node: &mut FullNode,
        request: &ParpRequest,
        chain: &mut Blockchain,
        executor: &mut ParpExecutor,
    ) -> Result<ParpResponse, ServeError> {
        let start = self.metrics.is_some().then(|| self.clock.start());
        let response = node.handle_request_with(request, chain, executor, self);
        if let (Some(m), Some(t)) = (&self.metrics, start) {
            m.serve_single_us.record(self.clock.elapsed_us(t));
        }
        response
    }

    /// Serves one batched exchange through the snapshot cache and the
    /// shard pool.
    ///
    /// # Errors
    ///
    /// Propagates the node's [`ServeError`]s.
    pub fn serve_batch(
        &mut self,
        node: &mut FullNode,
        request: &ParpBatchRequest,
        chain: &mut Blockchain,
        executor: &mut ParpExecutor,
    ) -> Result<ParpBatchResponse, ServeError> {
        let start = self.metrics.is_some().then(|| self.clock.start());
        let response = node.handle_batch_with(request, chain, executor, self);
        if let (Some(m), Some(t)) = (&self.metrics, start) {
            m.serve_batch_us.record(self.clock.elapsed_us(t));
            m.batch_calls.record(request.calls.len() as u64);
        }
        response
    }

    /// A self-contained **read-only** proof engine over the cached head
    /// snapshot: the hook a fan-out uses to serve several read legs
    /// concurrently. The one `&mut` moment (resolving the `Arc`-shared
    /// frozen trie out of the cache) happens here; the returned engine
    /// is then independent of the runtime, so each worker thread owns
    /// one while the runtime stays untouched. Proofs are byte-identical
    /// to the cached sequential path — same frozen trie, same walk.
    pub fn read_engine(&mut self, chain: &Blockchain) -> FrozenReadEngine {
        let state = chain.state_at(chain.height()).expect("head state exists");
        FrozenReadEngine {
            trie: self.cache.get_or_build(state),
        }
    }

    /// Invalidation hook for `Blockchain::mine` (and reorgs): drops
    /// cached tries whose roots are no longer reachable from the
    /// canonical chain's recent history, then warms the cache with the
    /// new head so the next exchange is a hit.
    pub fn note_new_head(&mut self, chain: &Blockchain) {
        let head = chain.height();
        let window = self.cache.capacity() as u64;
        let recent: HashSet<_> = (head.saturating_sub(window.saturating_sub(1))..=head)
            .filter_map(|number| chain.block(number))
            .map(|block| block.header.state_root)
            .collect();
        self.cache.retain(|root| recent.contains(root));
        if let Some(state) = chain.state_at(head) {
            self.cache.get_or_build(state);
        }
    }
}

/// A detached read-only [`ProofEngine`] over one `Arc`-shared frozen
/// snapshot trie (see [`Runtime::read_engine`]). State proofs walk the
/// shared trie; inclusion proofs fall back to the default per-lookup
/// rebuild (correct, uncached — concurrent read legs are single-call
/// exchanges, which rarely touch historical tries).
#[derive(Debug, Clone)]
pub struct FrozenReadEngine {
    trie: Arc<FrozenTrie>,
}

impl ProofEngine for FrozenReadEngine {
    fn account_multiproof(&mut self, _state: &State, addresses: &[Address]) -> Vec<Vec<u8>> {
        sharded_account_multiproof(&self.trie, addresses, 1)
    }

    fn account_multiproof_into(
        &mut self,
        _state: &State,
        addresses: &[Address],
        out: &mut ProofBuf,
    ) {
        sharded_account_multiproof_into(&self.trie, addresses, 1, out);
    }

    fn account_proof(&mut self, _state: &State, address: &Address) -> Vec<Vec<u8>> {
        self.trie.prove(keccak256(address.as_bytes()).as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_primitives::U256;
    use std::sync::Arc;

    #[test]
    fn engine_reuses_cached_trie() {
        let mut runtime = Runtime::default();
        let state =
            State::with_alloc((1..=64u64).map(|i| (Address::from_low_u64_be(i), U256::from(i))));
        let addresses: Vec<Address> = (1..=8).map(Address::from_low_u64_be).collect();
        let multi = runtime.account_multiproof(&state, &addresses);
        assert_eq!(multi, state.account_multiproof(&addresses));
        assert_eq!(runtime.cache().misses(), 1);
        let single = runtime.account_proof(&state, &addresses[0]);
        assert_eq!(single, state.account_proof(&addresses[0]));
        assert_eq!(runtime.cache().misses(), 1, "second proof hits the cache");
        assert_eq!(runtime.cache().hits(), 1);
    }

    #[test]
    fn note_new_head_evicts_unreachable_roots() {
        let mut runtime = Runtime::new(RuntimeConfig {
            snapshot_cache_capacity: 2,
            ..RuntimeConfig::default()
        });
        let key = parp_crypto::SecretKey::from_seed(b"runtime-head");
        let mut chain = Blockchain::new(vec![(key.address(), U256::from(1u64) << 64)]);
        // A foreign root (an abandoned fork, say) sits in the cache.
        let foreign = State::with_alloc([(Address::from_low_u64_be(9), U256::ONE)]);
        let foreign_root = foreign.state_root();
        runtime.cache.insert(foreign_root, foreign.shared_trie());
        // Also warm an Arc for the genesis trie to check continuity.
        let genesis_trie = runtime.cache.get_or_build(chain.state_at(0).unwrap());
        chain
            .produce_block(
                vec![parp_chain::Transaction {
                    nonce: 0,
                    gas_price: U256::ZERO,
                    gas_limit: 21_000,
                    to: Some(Address::from_low_u64_be(2)),
                    value: U256::ONE,
                    data: Vec::new(),
                }
                .sign(&key)],
                &mut parp_chain::TransferExecutor,
            )
            .unwrap();
        runtime.note_new_head(&chain);
        let head_root = chain.head().header.state_root;
        assert!(runtime.cache().contains(&head_root), "head warmed");
        assert!(
            !runtime.cache().contains(&foreign_root),
            "unreachable root evicted"
        );
        // The genesis root is still within the 2-block window: kept, and
        // still the same shared build.
        let genesis_root = chain.block(0).unwrap().header.state_root;
        assert!(runtime.cache().contains(&genesis_root));
        let again = runtime.cache.get(&genesis_root).unwrap();
        assert!(Arc::ptr_eq(&genesis_trie, &again));
    }

    #[test]
    fn cold_runtime_serves_pruned_blocks_byte_identically() {
        let key = parp_crypto::SecretKey::from_seed(b"cold-runtime");
        let make_tx = |nonce| {
            parp_chain::Transaction {
                nonce,
                gas_price: U256::ZERO,
                gas_limit: 21_000,
                to: Some(Address::from_low_u64_be(7)),
                value: U256::ONE,
                data: Vec::new(),
            }
            .sign(&key)
        };
        // Twin chains over the same blocks: `cold` prunes behind a
        // history store, `resident` keeps everything in memory.
        let alloc = vec![(key.address(), U256::from(1u64) << 64)];
        let mut cold_chain = Blockchain::new(alloc.clone());
        let mut resident = Blockchain::new(alloc);
        let dir = parp_store::scratch_dir("cold-runtime").unwrap();
        let store = parp_store::BlockStore::open(&dir).unwrap();
        cold_chain.attach_history(store, 0).unwrap();
        let blocks = parp_chain::MIN_HISTORY_WINDOW + 20;
        for nonce in 0..blocks {
            let executor = &mut parp_chain::TransferExecutor;
            cold_chain
                .produce_block(vec![make_tx(nonce)], executor)
                .unwrap();
            resident
                .produce_block(vec![make_tx(nonce)], executor)
                .unwrap();
        }
        assert!(cold_chain.resident_base() > 1, "old blocks were pruned");
        // A storage-budgeted runtime against the pruned chain must
        // produce the same proof bytes as a plain runtime against the
        // fully resident one.
        let mut cold_rt = Runtime::new(RuntimeConfig {
            storage_budget_bytes: 1, // force spills after every page
            ..RuntimeConfig::default()
        });
        assert!(cold_rt.cold_storage().is_some());
        let mut warm_rt = Runtime::default();
        for block in [1u64, 2, 3, 1, 2, 3] {
            let cold_proof = cold_rt.transaction_proof(&cold_chain, block, 0);
            assert_eq!(cold_proof, warm_rt.transaction_proof(&resident, block, 0));
            assert!(!cold_proof.is_empty());
            let cold_receipt = cold_rt.receipt_proof(&cold_chain, block, 0);
            assert_eq!(cold_receipt, warm_rt.receipt_proof(&resident, block, 0));
        }
        let tier = cold_rt.cold_storage().unwrap().tier();
        assert!(tier.spill_count() > 0, "tiny budget forced spills");
        assert!(tier.rehydrate_count() > 0, "revisits rehydrated from disk");
        // Unknown locations degrade to empty proofs, not panics.
        assert!(cold_rt
            .transaction_proof(&cold_chain, blocks + 99, 0)
            .is_empty());
        assert!(warm_rt
            .transaction_proof(&resident, blocks + 99, 0)
            .is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn throttle_surfaces_retry_hint() {
        let mut runtime = Runtime::new(RuntimeConfig {
            burst_capacity: 2,
            rate_per_sec: 2,
            ..RuntimeConfig::default()
        });
        let client = Address::from_low_u64_be(0xc1);
        assert!(runtime.admit(client, 2, 0).is_ok());
        let Err(RuntimeError::Throttled { retry_after_us }) = runtime.admit(client, 1, 0) else {
            panic!("expected throttle");
        };
        assert_eq!(retry_after_us, 500_000);
        assert_eq!(runtime.admission_stats(&client).admitted, 2);
        assert_eq!(runtime.admission_stats(&client).throttled, 1);
    }
}
