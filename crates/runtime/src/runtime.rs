//! The serving runtime: snapshot cache + sharded proof executor +
//! admission controller behind one [`parp_core::ProofEngine`].

use crate::admission::{AdmissionController, AdmissionError, AdmissionStats};
use crate::cache::SnapshotCache;
use crate::shard::{sharded_account_multiproof, sharded_account_multiproof_into};
use parp_chain::{Blockchain, State};
use parp_contracts::{
    ParpBatchRequest, ParpBatchResponse, ParpExecutor, ParpRequest, ParpResponse,
};
use parp_core::{FullNode, ProofEngine, ServeError};
use parp_crypto::keccak256;
use parp_primitives::Address;
use parp_telemetry::{Histogram, Telemetry, TimeSource};
use parp_trie::{FrozenTrie, ProofBuf};
use std::collections::HashSet;
use std::sync::Arc;

/// Tuning knobs for a [`Runtime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Built tries kept in the snapshot cache (head + recent history).
    pub snapshot_cache_capacity: usize,
    /// Built per-block transaction and receipt tries kept for serving
    /// batched inclusion lookups (each block contributes up to two
    /// tries, so this covers roughly half as many hot blocks).
    pub inclusion_cache_capacity: usize,
    /// Worker shards for multiproof generation.
    pub shards: usize,
    /// Per-client admission burst (calls).
    pub burst_capacity: u64,
    /// Per-client steady-state admission rate (calls per second).
    pub rate_per_sec: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            snapshot_cache_capacity: 8,
            inclusion_cache_capacity: 16,
            shards: 4,
            burst_capacity: 256,
            rate_per_sec: 512,
        }
    }
}

/// Why the runtime refused to serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The client's admission bucket is exhausted.
    Throttled {
        /// Microseconds until the rejected cost would be admissible.
        retry_after_us: u64,
    },
    /// The underlying protocol layer refused the request.
    Serve(ServeError),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Throttled { retry_after_us } => {
                write!(f, "rate limited; retry in {retry_after_us} µs")
            }
            RuntimeError::Serve(e) => write!(f, "serve error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ServeError> for RuntimeError {
    fn from(e: ServeError) -> Self {
        RuntimeError::Serve(e)
    }
}

/// The concurrent serving engine behind a PARP full node.
///
/// Combines the runtime concerns:
///
/// * a [`SnapshotCache`] so exchanges served at an unchanged head reuse
///   one `Arc`-shared trie instead of paying an O(accounts) rebuild;
/// * a second cache of per-block **transaction and receipt tries**
///   (content-addressed by their roots, exactly like state tries), so
///   batched historical inclusion lookups against a hot block reuse one
///   frozen trie instead of rebuilding it per proof;
/// * [sharded multiproof generation](crate::sharded_account_multiproof),
///   byte-identical to the sequential path for any shard count;
/// * an [`AdmissionController`] so one aggressive client cannot starve
///   the others ([`Runtime::admit`] + [`crate::FairQueue`]).
///
/// `FullNode::handle_request`/`handle_batch` route through a runtime by
/// taking it as their [`ProofEngine`]; [`Runtime::serve_request`] and
/// [`Runtime::serve_batch`] are the ready-made entry points.
#[derive(Debug, Clone)]
pub struct Runtime {
    cache: SnapshotCache,
    /// Frozen transaction/receipt tries keyed by their trie roots.
    /// Content addressing makes entries reusable across forks and
    /// immune to invalidation: a block's transaction set never changes.
    inclusion_cache: SnapshotCache,
    shards: usize,
    admission: AdmissionController,
    /// Serve-path histograms, present once a telemetry registry is
    /// attached. `None` keeps the uninstrumented path at one branch.
    metrics: Option<RuntimeMetrics>,
    /// The injected clock serve-path durations are measured with.
    /// Defaults to the host clock (production serving); the
    /// deterministic simulator injects a [`TimeSource::fixed`] handle
    /// so metric readings reproduce across hosts (lint W002).
    clock: TimeSource,
}

/// The runtime's registered histograms (fixed-memory, lock-free).
#[derive(Debug, Clone)]
struct RuntimeMetrics {
    multiproof_us: Arc<Histogram>,
    serve_single_us: Arc<Histogram>,
    serve_batch_us: Arc<Histogram>,
    batch_calls: Arc<Histogram>,
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new(RuntimeConfig::default())
    }
}

impl ProofEngine for Runtime {
    fn account_multiproof(&mut self, state: &State, addresses: &[Address]) -> Vec<Vec<u8>> {
        let trie = self.cache.get_or_build(state);
        let start = self.metrics.is_some().then(|| self.clock.start());
        let proof = sharded_account_multiproof(&trie, addresses, self.shards);
        if let (Some(m), Some(t)) = (&self.metrics, start) {
            m.multiproof_us.record(self.clock.elapsed_us(t));
        }
        proof
    }

    fn account_multiproof_into(
        &mut self,
        state: &State,
        addresses: &[Address],
        out: &mut ProofBuf,
    ) {
        let trie = self.cache.get_or_build(state);
        let start = self.metrics.is_some().then(|| self.clock.start());
        sharded_account_multiproof_into(&trie, addresses, self.shards, out);
        if let (Some(m), Some(t)) = (&self.metrics, start) {
            m.multiproof_us.record(self.clock.elapsed_us(t));
        }
    }

    fn account_proof(&mut self, state: &State, address: &Address) -> Vec<Vec<u8>> {
        let trie = self.cache.get_or_build(state);
        trie.prove(keccak256(address.as_bytes()).as_bytes())
    }

    fn transaction_proof(&mut self, chain: &Blockchain, block: u64, index: usize) -> Vec<Vec<u8>> {
        let located = chain.block(block).expect("located block exists");
        let root = located.header.transactions_root;
        let trie = self.inclusion_cache.get_or_insert_with(root, || {
            let encoded: Vec<Vec<u8>> = located
                .transactions
                .iter()
                .map(parp_chain::SignedTransaction::encode)
                .collect();
            Arc::new(FrozenTrie::new(parp_trie::ordered_trie(
                encoded.iter().map(Vec::as_slice),
            )))
        });
        trie.prove(&parp_rlp::encode_u64(index as u64))
    }

    fn receipt_proof(&mut self, chain: &Blockchain, block: u64, index: usize) -> Vec<Vec<u8>> {
        let root = chain
            .block(block)
            .expect("located block exists")
            .header
            .receipts_root;
        let trie = self.inclusion_cache.get_or_insert_with(root, || {
            let receipts = chain.receipts(block).expect("located block has receipts");
            Arc::new(FrozenTrie::new(parp_chain::receipts_trie(receipts)))
        });
        trie.prove(&parp_rlp::encode_u64(index as u64))
    }
}

impl Runtime {
    /// A runtime with the given tuning.
    pub fn new(config: RuntimeConfig) -> Self {
        Runtime {
            cache: SnapshotCache::new(config.snapshot_cache_capacity),
            inclusion_cache: SnapshotCache::new(config.inclusion_cache_capacity),
            shards: config.shards.max(1),
            admission: AdmissionController::new(config.burst_capacity, config.rate_per_sec),
            metrics: None,
            clock: TimeSource::default(),
        }
    }

    /// Replaces the clock serve-path durations are measured with. The
    /// simulator injects its deterministic [`TimeSource`] here so
    /// runtime histograms record sim-consistent readings; benches
    /// inject [`TimeSource::wall`] to measure the hardware.
    pub fn set_time_source(&mut self, clock: TimeSource) {
        self.clock = clock;
    }

    /// The clock serve-path durations are measured with.
    pub fn time_source(&self) -> &TimeSource {
        &self.clock
    }

    /// Registers the runtime's counters and histograms with
    /// `telemetry` and turns on serve-path latency recording.
    ///
    /// The caches' and admission controller's live counters are
    /// *adopted* (the registry exports the same atomic cells the hot
    /// path already increments), so attaching late loses no counts.
    /// Metric names follow the `parp_<subsystem>_<name>_<unit>`
    /// convention.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let r = &telemetry.registry;
        r.adopt_counter(
            "parp_runtime_snapshot_cache_hits_total",
            &[],
            &self.cache.hit_counter(),
        );
        r.adopt_counter(
            "parp_runtime_snapshot_cache_misses_total",
            &[],
            &self.cache.miss_counter(),
        );
        r.adopt_counter(
            "parp_runtime_inclusion_cache_hits_total",
            &[],
            &self.inclusion_cache.hit_counter(),
        );
        r.adopt_counter(
            "parp_runtime_inclusion_cache_misses_total",
            &[],
            &self.inclusion_cache.miss_counter(),
        );
        r.adopt_counter(
            "parp_runtime_admitted_calls_total",
            &[],
            &self.admission.admitted_counter(),
        );
        r.adopt_counter(
            "parp_runtime_throttled_calls_total",
            &[],
            &self.admission.throttled_counter(),
        );
        self.metrics = Some(RuntimeMetrics {
            multiproof_us: r.histogram("parp_runtime_multiproof_us", &[]),
            serve_single_us: r.histogram("parp_runtime_serve_single_us", &[]),
            serve_batch_us: r.histogram("parp_runtime_serve_batch_us", &[]),
            batch_calls: r.histogram("parp_runtime_batch_calls", &[]),
        });
    }

    /// Builder form of [`Runtime::attach_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.attach_telemetry(telemetry);
        self
    }

    /// The snapshot cache (hit/miss counters, contents).
    pub fn cache(&self) -> &SnapshotCache {
        &self.cache
    }

    /// The per-block transaction/receipt trie cache (hit/miss counters,
    /// contents), keyed by transaction- or receipt-trie root.
    pub fn inclusion_cache(&self) -> &SnapshotCache {
        &self.inclusion_cache
    }

    /// Current shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Changes the shard count (responses stay byte-identical).
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// Admission check for `calls` calls from `client` at `now_us`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Throttled`] when the client's token
    /// bucket cannot cover the calls.
    pub fn admit(&mut self, client: Address, calls: u64, now_us: u64) -> Result<(), RuntimeError> {
        self.admission.admit(client, calls, now_us).map_err(
            |AdmissionError::RateLimited { retry_after_us }| RuntimeError::Throttled {
                retry_after_us,
            },
        )
    }

    /// Admission statistics for `client`.
    pub fn admission_stats(&self, client: &Address) -> AdmissionStats {
        self.admission.stats(client)
    }

    /// Serves one single-call exchange through the snapshot cache.
    ///
    /// # Errors
    ///
    /// Propagates the node's [`ServeError`]s.
    pub fn serve_request(
        &mut self,
        node: &mut FullNode,
        request: &ParpRequest,
        chain: &mut Blockchain,
        executor: &mut ParpExecutor,
    ) -> Result<ParpResponse, ServeError> {
        let start = self.metrics.is_some().then(|| self.clock.start());
        let response = node.handle_request_with(request, chain, executor, self);
        if let (Some(m), Some(t)) = (&self.metrics, start) {
            m.serve_single_us.record(self.clock.elapsed_us(t));
        }
        response
    }

    /// Serves one batched exchange through the snapshot cache and the
    /// shard pool.
    ///
    /// # Errors
    ///
    /// Propagates the node's [`ServeError`]s.
    pub fn serve_batch(
        &mut self,
        node: &mut FullNode,
        request: &ParpBatchRequest,
        chain: &mut Blockchain,
        executor: &mut ParpExecutor,
    ) -> Result<ParpBatchResponse, ServeError> {
        let start = self.metrics.is_some().then(|| self.clock.start());
        let response = node.handle_batch_with(request, chain, executor, self);
        if let (Some(m), Some(t)) = (&self.metrics, start) {
            m.serve_batch_us.record(self.clock.elapsed_us(t));
            m.batch_calls.record(request.calls.len() as u64);
        }
        response
    }

    /// A self-contained **read-only** proof engine over the cached head
    /// snapshot: the hook a fan-out uses to serve several read legs
    /// concurrently. The one `&mut` moment (resolving the `Arc`-shared
    /// frozen trie out of the cache) happens here; the returned engine
    /// is then independent of the runtime, so each worker thread owns
    /// one while the runtime stays untouched. Proofs are byte-identical
    /// to the cached sequential path — same frozen trie, same walk.
    pub fn read_engine(&mut self, chain: &Blockchain) -> FrozenReadEngine {
        let state = chain.state_at(chain.height()).expect("head state exists");
        FrozenReadEngine {
            trie: self.cache.get_or_build(state),
        }
    }

    /// Invalidation hook for `Blockchain::mine` (and reorgs): drops
    /// cached tries whose roots are no longer reachable from the
    /// canonical chain's recent history, then warms the cache with the
    /// new head so the next exchange is a hit.
    pub fn note_new_head(&mut self, chain: &Blockchain) {
        let head = chain.height();
        let window = self.cache.capacity() as u64;
        let recent: HashSet<_> = (head.saturating_sub(window.saturating_sub(1))..=head)
            .filter_map(|number| chain.block(number))
            .map(|block| block.header.state_root)
            .collect();
        self.cache.retain(|root| recent.contains(root));
        if let Some(state) = chain.state_at(head) {
            self.cache.get_or_build(state);
        }
    }
}

/// A detached read-only [`ProofEngine`] over one `Arc`-shared frozen
/// snapshot trie (see [`Runtime::read_engine`]). State proofs walk the
/// shared trie; inclusion proofs fall back to the default per-lookup
/// rebuild (correct, uncached — concurrent read legs are single-call
/// exchanges, which rarely touch historical tries).
#[derive(Debug, Clone)]
pub struct FrozenReadEngine {
    trie: Arc<FrozenTrie>,
}

impl ProofEngine for FrozenReadEngine {
    fn account_multiproof(&mut self, _state: &State, addresses: &[Address]) -> Vec<Vec<u8>> {
        sharded_account_multiproof(&self.trie, addresses, 1)
    }

    fn account_multiproof_into(
        &mut self,
        _state: &State,
        addresses: &[Address],
        out: &mut ProofBuf,
    ) {
        sharded_account_multiproof_into(&self.trie, addresses, 1, out);
    }

    fn account_proof(&mut self, _state: &State, address: &Address) -> Vec<Vec<u8>> {
        self.trie.prove(keccak256(address.as_bytes()).as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_primitives::U256;
    use std::sync::Arc;

    #[test]
    fn engine_reuses_cached_trie() {
        let mut runtime = Runtime::default();
        let state =
            State::with_alloc((1..=64u64).map(|i| (Address::from_low_u64_be(i), U256::from(i))));
        let addresses: Vec<Address> = (1..=8).map(Address::from_low_u64_be).collect();
        let multi = runtime.account_multiproof(&state, &addresses);
        assert_eq!(multi, state.account_multiproof(&addresses));
        assert_eq!(runtime.cache().misses(), 1);
        let single = runtime.account_proof(&state, &addresses[0]);
        assert_eq!(single, state.account_proof(&addresses[0]));
        assert_eq!(runtime.cache().misses(), 1, "second proof hits the cache");
        assert_eq!(runtime.cache().hits(), 1);
    }

    #[test]
    fn note_new_head_evicts_unreachable_roots() {
        let mut runtime = Runtime::new(RuntimeConfig {
            snapshot_cache_capacity: 2,
            ..RuntimeConfig::default()
        });
        let key = parp_crypto::SecretKey::from_seed(b"runtime-head");
        let mut chain = Blockchain::new(vec![(key.address(), U256::from(1u64) << 64)]);
        // A foreign root (an abandoned fork, say) sits in the cache.
        let foreign = State::with_alloc([(Address::from_low_u64_be(9), U256::ONE)]);
        let foreign_root = foreign.state_root();
        runtime.cache.insert(foreign_root, foreign.shared_trie());
        // Also warm an Arc for the genesis trie to check continuity.
        let genesis_trie = runtime.cache.get_or_build(chain.state_at(0).unwrap());
        chain
            .produce_block(
                vec![parp_chain::Transaction {
                    nonce: 0,
                    gas_price: U256::ZERO,
                    gas_limit: 21_000,
                    to: Some(Address::from_low_u64_be(2)),
                    value: U256::ONE,
                    data: Vec::new(),
                }
                .sign(&key)],
                &mut parp_chain::TransferExecutor,
            )
            .unwrap();
        runtime.note_new_head(&chain);
        let head_root = chain.head().header.state_root;
        assert!(runtime.cache().contains(&head_root), "head warmed");
        assert!(
            !runtime.cache().contains(&foreign_root),
            "unreachable root evicted"
        );
        // The genesis root is still within the 2-block window: kept, and
        // still the same shared build.
        let genesis_root = chain.block(0).unwrap().header.state_root;
        assert!(runtime.cache().contains(&genesis_root));
        let again = runtime.cache.get(&genesis_root).unwrap();
        assert!(Arc::ptr_eq(&genesis_trie, &again));
    }

    #[test]
    fn throttle_surfaces_retry_hint() {
        let mut runtime = Runtime::new(RuntimeConfig {
            burst_capacity: 2,
            rate_per_sec: 2,
            ..RuntimeConfig::default()
        });
        let client = Address::from_low_u64_be(0xc1);
        assert!(runtime.admit(client, 2, 0).is_ok());
        let Err(RuntimeError::Throttled { retry_after_us }) = runtime.admit(client, 1, 0) else {
            panic!("expected throttle");
        };
        assert_eq!(retry_after_us, 500_000);
        assert_eq!(runtime.admission_stats(&client).admitted, 2);
        assert_eq!(runtime.admission_stats(&client).throttled, 1);
    }
}
