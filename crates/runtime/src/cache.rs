//! LRU cache of fully built, [`Arc`]-shared state tries, keyed by state
//! root.
//!
//! A PARP full node serves almost all of its traffic at an unchanged
//! head: every batch and every single balance read between two blocks
//! walks the *same* state trie. Rebuilding it per exchange is an O(n)
//! cost in the account count — the dominant term the ROADMAP's
//! "snapshot caching across batches" item names. The cache holds the
//! last few built tries (head plus a short tail of recent snapshots for
//! historical serving) behind `Arc`s, so concurrent shard workers and
//! overlapping exchanges all share one build.
//!
//! Keying by state root makes entries content-addressed: a cached trie
//! can never be *wrong* for its key, so invalidation is purely a memory
//! and relevance concern — [`SnapshotCache::retain`] drops roots that a
//! new head (or a reorg) has made unreachable.

use parp_chain::State;
use parp_primitives::H256;
use parp_telemetry::Counter;
use parp_trie::FrozenTrie;
use std::sync::Arc;

/// An LRU of built state tries keyed by their root hash.
///
/// Hit/miss accounting lives in live [`Counter`] handles so a
/// telemetry [`Registry`](parp_telemetry::Registry) can adopt them
/// (via [`SnapshotCache::hit_counter`] / [`SnapshotCache::miss_counter`])
/// and export the very cells the cache increments — no polling, no
/// count transfer. Clones share those cells.
#[derive(Debug, Clone)]
pub struct SnapshotCache {
    /// `(root, trie)` pairs, least recently used first.
    entries: Vec<(H256, Arc<FrozenTrie>)>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
}

impl SnapshotCache {
    /// Creates a cache holding at most `capacity` built tries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero (a zero-entry cache would silently
    /// degrade every serve to a cold build).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "snapshot cache needs at least one slot");
        SnapshotCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    /// Maximum number of cached tries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently cached tries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that had to build (or import) a trie.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Live handle to the hit counter, for registry adoption.
    pub fn hit_counter(&self) -> Counter {
        self.hits.clone()
    }

    /// Live handle to the miss counter, for registry adoption.
    pub fn miss_counter(&self) -> Counter {
        self.misses.clone()
    }

    /// Whether a trie for `root` is cached (does not touch LRU order or
    /// the hit/miss counters; observability for tests).
    pub fn contains(&self, root: &H256) -> bool {
        self.entries.iter().any(|(r, _)| r == root)
    }

    /// The cached trie for `root`, marking it most recently used.
    pub fn get(&mut self, root: &H256) -> Option<Arc<FrozenTrie>> {
        let index = self.entries.iter().position(|(r, _)| r == root)?;
        let entry = self.entries.remove(index);
        let trie = entry.1.clone();
        self.entries.push(entry);
        self.hits.inc();
        Some(trie)
    }

    /// Inserts a built trie under `root`, evicting the least recently
    /// used entry when full. An existing entry for `root` is refreshed.
    pub fn insert(&mut self, root: H256, trie: Arc<FrozenTrie>) {
        if let Some(index) = self.entries.iter().position(|(r, _)| *r == root) {
            self.entries.remove(index);
        } else if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((root, trie));
    }

    /// The trie for `state`, from cache when its root is present, built
    /// (via the state's own memo) and cached otherwise.
    pub fn get_or_build(&mut self, state: &State) -> Arc<FrozenTrie> {
        let root = state.state_root();
        self.get_or_insert_with(root, || state.shared_trie())
    }

    /// The trie for `root`, from cache when present, built by `build`
    /// and cached otherwise (counting a miss). Content addressing makes
    /// this correct for *any* trie family — state, transaction or
    /// receipt — as long as `build` returns the trie whose root is
    /// `root`.
    pub fn get_or_insert_with(
        &mut self,
        root: H256,
        build: impl FnOnce() -> Arc<FrozenTrie>,
    ) -> Arc<FrozenTrie> {
        if let Some(trie) = self.get(&root) {
            return trie;
        }
        self.misses.inc();
        let trie = build();
        debug_assert_eq!(trie.root_hash(), root, "cached trie must match its key");
        self.insert(root, trie.clone());
        trie
    }

    /// Drops the entry for `root`, returning whether one existed.
    pub fn invalidate(&mut self, root: &H256) -> bool {
        match self.entries.iter().position(|(r, _)| r == root) {
            Some(index) => {
                self.entries.remove(index);
                true
            }
            None => false,
        }
    }

    /// Keeps only the entries whose root satisfies `keep` — the
    /// invalidation hook a new head or a reorg drives: roots no longer
    /// reachable from the canonical chain are dropped in one sweep.
    pub fn retain(&mut self, keep: impl Fn(&H256) -> bool) {
        self.entries.retain(|(root, _)| keep(root));
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_primitives::{Address, U256};

    fn state_with(n: u64) -> State {
        State::with_alloc((1..=n).map(|i| (Address::from_low_u64_be(i), U256::from(i))))
    }

    #[test]
    fn caches_and_counts() {
        let mut cache = SnapshotCache::new(4);
        let state = state_with(10);
        let first = cache.get_or_build(&state);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = cache.get_or_build(&state);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut cache = SnapshotCache::new(2);
        let states = [state_with(1), state_with(2), state_with(3)];
        for state in &states {
            cache.get_or_build(state);
        }
        assert_eq!(cache.len(), 2);
        assert!(!cache.contains(&states[0].state_root()), "oldest evicted");
        assert!(cache.contains(&states[1].state_root()));
        assert!(cache.contains(&states[2].state_root()));
        // Touching an entry protects it from the next eviction.
        cache.get(&states[1].state_root()).unwrap();
        cache.get_or_build(&states[0]);
        assert!(cache.contains(&states[1].state_root()));
        assert!(!cache.contains(&states[2].state_root()));
    }

    #[test]
    fn invalidate_and_retain() {
        let mut cache = SnapshotCache::new(4);
        let a = state_with(1);
        let b = state_with(2);
        cache.get_or_build(&a);
        cache.get_or_build(&b);
        assert!(cache.invalidate(&a.state_root()));
        assert!(!cache.invalidate(&a.state_root()));
        let keep = b.state_root();
        cache.get_or_build(&a);
        cache.retain(|root| *root == keep);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&keep));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        SnapshotCache::new(0);
    }
}
