//! Core primitive types shared by every crate in the PARP workspace.
//!
//! This crate provides the fixed-size byte types ([`H256`], [`Address`]), the
//! 256-bit unsigned integer [`U256`] used for balances and payment amounts,
//! and hex encoding/decoding helpers compatible with Ethereum's `0x`-prefixed
//! conventions.
//!
//! # Examples
//!
//! ```
//! use parp_primitives::{Address, H256, U256};
//!
//! let a = U256::from(1_000u64);
//! let b = U256::from(234u64);
//! assert_eq!(a + b, U256::from(1_234u64));
//!
//! let h = H256::from_low_u64_be(42);
//! assert_eq!(h.as_bytes()[31], 42);
//!
//! let addr: Address = "0x00000000000000000000000000000000000000ff".parse().unwrap();
//! assert_eq!(addr.as_bytes()[19], 0xff);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod hash;
pub mod hex;
mod uint;

pub use hash::{Address, H256};
pub use hex::{from_hex, to_hex, to_hex_prefixed, FromHexError};
pub use uint::{ParseU256Error, U256};
