//! Fixed-size byte array types: 32-byte hashes and 20-byte addresses.

use crate::hex::{self, FromHexError};
use std::fmt;
use std::str::FromStr;

macro_rules! fixed_bytes {
    ($(#[$doc:meta])* $name:ident, $len:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub [u8; $len]);

        impl $name {
            /// Number of bytes in this type.
            pub const LEN: usize = $len;

            /// The all-zero value.
            pub const ZERO: $name = $name([0u8; $len]);

            /// Wraps a raw byte array.
            pub const fn new(bytes: [u8; $len]) -> Self {
                $name(bytes)
            }

            /// Returns a view of the underlying bytes.
            pub fn as_bytes(&self) -> &[u8] {
                &self.0
            }

            /// Extracts the underlying byte array.
            pub fn into_inner(self) -> [u8; $len] {
                self.0
            }

            /// Builds a value from a byte slice.
            ///
            /// Returns `None` when `slice.len() != Self::LEN`.
            pub fn from_slice(slice: &[u8]) -> Option<Self> {
                if slice.len() != $len {
                    return None;
                }
                let mut bytes = [0u8; $len];
                bytes.copy_from_slice(slice);
                Some($name(bytes))
            }

            /// Returns `true` when every byte is zero.
            pub fn is_zero(&self) -> bool {
                self.0.iter().all(|&b| b == 0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}(0x{})", stringify!($name), hex::to_hex(&self.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "0x{}", hex::to_hex(&self.0))
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if f.alternate() {
                    write!(f, "0x")?;
                }
                write!(f, "{}", hex::to_hex(&self.0))
            }
        }

        impl FromStr for $name {
            type Err = FromHexError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let bytes = hex::from_hex(s)?;
                Self::from_slice(&bytes).ok_or(FromHexError::OddLength)
            }
        }

        impl From<[u8; $len]> for $name {
            fn from(bytes: [u8; $len]) -> Self {
                $name(bytes)
            }
        }

        impl AsRef<[u8]> for $name {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
    };
}

fixed_bytes!(
    /// A 32-byte hash (block hashes, trie roots, message digests).
    H256,
    32
);

fixed_bytes!(
    /// A 20-byte account address, derived from the Keccak-256 hash of a
    /// public key as in Ethereum.
    Address,
    20
);

impl H256 {
    /// Creates a hash whose last 8 bytes hold `value` big-endian; the rest
    /// are zero. Mirrors the common Ethereum test helper.
    pub fn from_low_u64_be(value: u64) -> Self {
        let mut bytes = [0u8; 32];
        bytes[24..].copy_from_slice(&value.to_be_bytes());
        H256(bytes)
    }

    /// Interprets the last 8 bytes as a big-endian `u64`, ignoring the rest.
    pub fn to_low_u64_be(&self) -> u64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.0[24..]);
        u64::from_be_bytes(buf)
    }
}

impl Address {
    /// Creates an address whose last 8 bytes hold `value` big-endian.
    pub fn from_low_u64_be(value: u64) -> Self {
        let mut bytes = [0u8; 20];
        bytes[12..].copy_from_slice(&value.to_be_bytes());
        Address(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h256_parse_and_display_roundtrip() {
        let h: H256 = "0x00000000000000000000000000000000000000000000000000000000000000ff"
            .parse()
            .unwrap();
        assert_eq!(h.to_low_u64_be(), 0xff);
        assert_eq!(h.to_string().parse::<H256>().unwrap(), h);
    }

    #[test]
    fn wrong_length_rejected() {
        assert!("0x0011".parse::<H256>().is_err());
        assert!("0x0011".parse::<Address>().is_err());
    }

    #[test]
    fn from_slice_checks_length() {
        assert!(H256::from_slice(&[0u8; 31]).is_none());
        assert!(H256::from_slice(&[0u8; 32]).is_some());
        assert!(Address::from_slice(&[0u8; 20]).is_some());
    }

    #[test]
    fn low_u64_roundtrip() {
        let h = H256::from_low_u64_be(0xdead_beef_1234_5678);
        assert_eq!(h.to_low_u64_be(), 0xdead_beef_1234_5678);
    }

    #[test]
    fn zero_is_zero() {
        assert!(H256::ZERO.is_zero());
        assert!(!H256::from_low_u64_be(1).is_zero());
        assert!(Address::ZERO.is_zero());
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(format!("{:?}", Address::ZERO).contains("Address"));
    }

    #[test]
    fn ordering_is_bytewise() {
        let a = H256::from_low_u64_be(1);
        let b = H256::from_low_u64_be(2);
        assert!(a < b);
    }
}
