//! A 256-bit unsigned integer used for balances, payment amounts and gas
//! arithmetic.
//!
//! The representation is four little-endian `u64` limbs. All arithmetic
//! operators panic on overflow in debug terms — like the primitive integer
//! types they wrap — while `checked_*`, `overflowing_*` and `saturating_*`
//! variants are provided for explicit control.

use crate::hex;
use std::cmp::Ordering;
use std::error::Error;
use std::fmt;
use std::iter::Sum;
use std::ops::{
    Add, AddAssign, BitAnd, BitOr, BitXor, Div, Mul, Not, Rem, Shl, Shr, Sub, SubAssign,
};
use std::str::FromStr;

/// A 256-bit unsigned integer.
///
/// # Examples
///
/// ```
/// use parp_primitives::U256;
///
/// let gwei = U256::from(1_000_000_000u64);
/// let fee = gwei * U256::from(21_000u64);
/// assert_eq!(fee.to_string(), "21000000000000");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

/// Error returned when parsing a [`U256`] from a string fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseU256Error {
    /// The string was empty.
    Empty,
    /// A character was not a valid digit for the radix.
    InvalidDigit,
    /// The value does not fit in 256 bits.
    Overflow,
}

impl fmt::Display for ParseU256Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseU256Error::Empty => write!(f, "cannot parse integer from empty string"),
            ParseU256Error::InvalidDigit => write!(f, "invalid digit found in string"),
            ParseU256Error::Overflow => write!(f, "number too large to fit in 256 bits"),
        }
    }
}

impl Error for ParseU256Error {}

impl U256 {
    /// The value `0`.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The value `1`.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The largest representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Creates a value from four little-endian `u64` limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256(limbs)
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Interprets 32 big-endian bytes as a `U256`.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            limbs[3 - i] = u64::from_be_bytes(buf);
        }
        U256(limbs)
    }

    /// Returns the value as 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..(i + 1) * 8].copy_from_slice(&self.0[3 - i].to_be_bytes());
        }
        out
    }

    /// Parses a big-endian byte slice of at most 32 bytes.
    ///
    /// Shorter slices are zero-extended on the left, matching the
    /// minimal-big-endian convention used by RLP integer encoding.
    pub fn from_be_slice(slice: &[u8]) -> Option<Self> {
        if slice.len() > 32 {
            return None;
        }
        let mut bytes = [0u8; 32];
        bytes[32 - slice.len()..].copy_from_slice(slice);
        Some(Self::from_be_bytes(bytes))
    }

    /// Returns the minimal big-endian byte representation (no leading
    /// zeroes; zero encodes to an empty vector) as used by RLP.
    pub fn to_be_bytes_minimal(&self) -> Vec<u8> {
        let bytes = self.to_be_bytes();
        let first = bytes.iter().position(|&b| b != 0).unwrap_or(32);
        bytes[first..].to_vec()
    }

    /// Number of bits required to represent the value (`0` for zero).
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return (i as u32) * 64 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Returns the low 64 bits, discarding higher limbs.
    pub fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.0[2] == 0 && self.0[3] == 0 {
            Some((self.0[1] as u128) << 64 | self.0[0] as u128)
        } else {
            None
        }
    }

    /// Addition returning the wrapped result and an overflow flag.
    #[allow(clippy::needless_range_loop)]
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 | c2;
        }
        (U256(out), carry)
    }

    /// Subtraction returning the wrapped result and a borrow flag.
    #[allow(clippy::needless_range_loop)]
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 | b2;
        }
        (U256(out), borrow)
    }

    /// Multiplication returning the low 256 bits and an overflow flag.
    pub fn overflowing_mul(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u64;
            for j in 0..4 {
                let wide =
                    self.0[i] as u128 * rhs.0[j] as u128 + out[i + j] as u128 + carry as u128;
                out[i + j] = wide as u64;
                carry = (wide >> 64) as u64;
            }
            out[i + 4] = out[i + 4].wrapping_add(carry);
        }
        let overflow = out[4..].iter().any(|&l| l != 0);
        (U256([out[0], out[1], out[2], out[3]]), overflow)
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked multiplication; `None` on overflow.
    pub fn checked_mul(self, rhs: U256) -> Option<U256> {
        match self.overflowing_mul(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked division; `None` when `rhs` is zero.
    pub fn checked_div(self, rhs: U256) -> Option<U256> {
        if rhs.is_zero() {
            None
        } else {
            Some(self.div_rem(rhs).0)
        }
    }

    /// Checked remainder; `None` when `rhs` is zero.
    pub fn checked_rem(self, rhs: U256) -> Option<U256> {
        if rhs.is_zero() {
            None
        } else {
            Some(self.div_rem(rhs).1)
        }
    }

    /// Saturating addition, clamping at [`U256::MAX`].
    pub fn saturating_add(self, rhs: U256) -> U256 {
        self.checked_add(rhs).unwrap_or(U256::MAX)
    }

    /// Saturating subtraction, clamping at zero.
    pub fn saturating_sub(self, rhs: U256) -> U256 {
        self.checked_sub(rhs).unwrap_or(U256::ZERO)
    }

    /// Simultaneous quotient and remainder.
    ///
    /// # Panics
    ///
    /// Panics when `divisor` is zero.
    pub fn div_rem(self, divisor: U256) -> (U256, U256) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (U256::ZERO, self);
        }
        if divisor.bits() <= 64 {
            return self.div_rem_u64(divisor.0[0]);
        }
        // Bitwise long division: shift-subtract from the most significant bit.
        let mut quotient = U256::ZERO;
        let mut remainder = U256::ZERO;
        let bits = self.bits();
        for i in (0..bits).rev() {
            remainder = remainder << 1;
            if self.bit(i) {
                remainder.0[0] |= 1;
            }
            if remainder >= divisor {
                remainder = remainder.overflowing_sub(divisor).0;
                quotient = quotient.set_bit(i);
            }
        }
        (quotient, remainder)
    }

    fn div_rem_u64(self, divisor: u64) -> (U256, U256) {
        let mut quotient = [0u64; 4];
        let mut rem: u128 = 0;
        for i in (0..4).rev() {
            let acc = (rem << 64) | self.0[i] as u128;
            quotient[i] = (acc / divisor as u128) as u64;
            rem = acc % divisor as u128;
        }
        (U256(quotient), U256::from(rem as u64))
    }

    /// Returns bit `i` (0 = least significant).
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        limb < 4 && (self.0[limb] >> (i % 64)) & 1 == 1
    }

    fn set_bit(mut self, i: u32) -> U256 {
        self.0[(i / 64) as usize] |= 1 << (i % 64);
        self
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseU256Error`] on empty input, non-digit characters or
    /// values larger than 2^256 - 1.
    pub fn from_dec_str(s: &str) -> Result<Self, ParseU256Error> {
        if s.is_empty() {
            return Err(ParseU256Error::Empty);
        }
        let mut value = U256::ZERO;
        let ten = U256::from(10u64);
        for ch in s.bytes() {
            let digit = match ch {
                b'0'..=b'9' => ch - b'0',
                _ => return Err(ParseU256Error::InvalidDigit),
            };
            value = value
                .checked_mul(ten)
                .and_then(|v| v.checked_add(U256::from(digit as u64)))
                .ok_or(ParseU256Error::Overflow)?;
        }
        Ok(value)
    }

    /// Parses a hex string with or without a `0x` prefix.
    ///
    /// # Errors
    ///
    /// Returns [`ParseU256Error`] on empty input, non-hex characters or more
    /// than 64 hex digits.
    pub fn from_hex_str(s: &str) -> Result<Self, ParseU256Error> {
        let digits = s.strip_prefix("0x").unwrap_or(s);
        if digits.is_empty() {
            return Err(ParseU256Error::Empty);
        }
        if digits.len() > 64 {
            return Err(ParseU256Error::Overflow);
        }
        let padded = if digits.len() % 2 == 1 {
            format!("0{digits}")
        } else {
            digits.to_string()
        };
        let bytes = hex::from_hex(&padded).map_err(|_| ParseU256Error::InvalidDigit)?;
        Ok(Self::from_be_slice(&bytes).expect("length checked above"))
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256({self})")
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut value = *self;
        while !value.is_zero() {
            let (q, r) = value.div_rem_u64(10);
            digits.push(b'0' + r.0[0] as u8);
            value = q;
        }
        digits.reverse();
        f.write_str(std::str::from_utf8(&digits).expect("ascii digits"))
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            write!(f, "0x")?;
        }
        if self.is_zero() {
            return write!(f, "0");
        }
        let bytes = self.to_be_bytes_minimal();
        let s = hex::to_hex(&bytes);
        write!(f, "{}", s.trim_start_matches('0'))
    }
}

impl FromStr for U256 {
    type Err = ParseU256Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex_digits) = s.strip_prefix("0x") {
            U256::from_hex_str(hex_digits)
        } else {
            U256::from_dec_str(s)
        }
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }
}

impl From<u32> for U256 {
    fn from(v: u32) -> Self {
        U256::from(v as u64)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl Add for U256 {
    type Output = U256;

    fn add(self, rhs: U256) -> U256 {
        let (v, overflow) = self.overflowing_add(rhs);
        assert!(!overflow, "U256 addition overflow");
        v
    }
}

impl AddAssign for U256 {
    fn add_assign(&mut self, rhs: U256) {
        *self = *self + rhs;
    }
}

impl Sub for U256 {
    type Output = U256;

    fn sub(self, rhs: U256) -> U256 {
        let (v, borrow) = self.overflowing_sub(rhs);
        assert!(!borrow, "U256 subtraction underflow");
        v
    }
}

impl SubAssign for U256 {
    fn sub_assign(&mut self, rhs: U256) {
        *self = *self - rhs;
    }
}

impl Mul for U256 {
    type Output = U256;

    fn mul(self, rhs: U256) -> U256 {
        let (v, overflow) = self.overflowing_mul(rhs);
        assert!(!overflow, "U256 multiplication overflow");
        v
    }
}

impl Div for U256 {
    type Output = U256;

    fn div(self, rhs: U256) -> U256 {
        self.div_rem(rhs).0
    }
}

impl Rem for U256 {
    type Output = U256;

    fn rem(self, rhs: U256) -> U256 {
        self.div_rem(rhs).1
    }
}

impl Not for U256 {
    type Output = U256;

    fn not(self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl BitAnd for U256 {
    type Output = U256;

    fn bitand(self, rhs: U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for U256 {
    type Output = U256;

    fn bitor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for U256 {
    type Output = U256;

    fn bitxor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl Shl<u32> for U256 {
    type Output = U256;

    fn shl(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            out[i] = self.0[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                out[i] |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
            }
        }
        U256(out)
    }
}

impl Shr<u32> for U256 {
    type Output = U256;

    #[allow(clippy::needless_range_loop)]
    fn shr(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in 0..4 - limb_shift {
            out[i] = self.0[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < 4 {
                out[i] |= self.0[i + limb_shift + 1] << (64 - bit_shift);
            }
        }
        U256(out)
    }
}

impl Sum for U256 {
    fn sum<I: Iterator<Item = U256>>(iter: I) -> U256 {
        iter.fold(U256::ZERO, |acc, v| acc + v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = U256::from(7u64);
        let b = U256::from(3u64);
        assert_eq!(a + b, U256::from(10u64));
        assert_eq!(a - b, U256::from(4u64));
        assert_eq!(a * b, U256::from(21u64));
        assert_eq!(a / b, U256::from(2u64));
        assert_eq!(a % b, U256::from(1u64));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = U256::from(u64::MAX);
        let b = U256::ONE;
        assert_eq!(a + b, U256([0, 1, 0, 0]));
    }

    #[test]
    fn overflow_is_detected() {
        assert_eq!(U256::MAX.overflowing_add(U256::ONE), (U256::ZERO, true));
        assert!(U256::MAX.checked_add(U256::ONE).is_none());
        assert!(U256::ZERO.checked_sub(U256::ONE).is_none());
        assert!(U256::MAX.checked_mul(U256::from(2u64)).is_none());
        assert_eq!(U256::MAX.saturating_add(U256::ONE), U256::MAX);
        assert_eq!(U256::ZERO.saturating_sub(U256::ONE), U256::ZERO);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn add_panics_on_overflow() {
        let _ = U256::MAX + U256::ONE;
    }

    #[test]
    fn mul_wide_values() {
        // (2^64)^2 = 2^128
        let x = U256([0, 1, 0, 0]);
        assert_eq!(x * x, U256([0, 0, 1, 0]));
    }

    #[test]
    fn div_rem_large_divisor() {
        let a = U256::from_hex_str("ffffffffffffffffffffffffffffffff").unwrap();
        let b = U256::from_hex_str("10000000000000001").unwrap();
        let (q, r) = a.div_rem(b);
        assert_eq!(q * b + r, a);
        assert!(r < b);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = U256::ONE.div_rem(U256::ZERO);
    }

    #[test]
    fn byte_roundtrip() {
        let v = U256::from_hex_str("0123456789abcdef0011223344556677").unwrap();
        assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
    }

    #[test]
    fn minimal_bytes() {
        assert_eq!(U256::ZERO.to_be_bytes_minimal(), Vec::<u8>::new());
        assert_eq!(
            U256::from(0x1234u64).to_be_bytes_minimal(),
            vec![0x12, 0x34]
        );
        assert_eq!(
            U256::from_be_slice(&[0x12, 0x34]).unwrap(),
            U256::from(0x1234u64)
        );
        assert!(U256::from_be_slice(&[0u8; 33]).is_none());
    }

    #[test]
    fn decimal_display_and_parse() {
        let v = U256::from_dec_str("340282366920938463463374607431768211456").unwrap(); // 2^128
        assert_eq!(v, U256([0, 0, 1, 0]));
        assert_eq!(v.to_string(), "340282366920938463463374607431768211456");
        assert_eq!("123".parse::<U256>().unwrap(), U256::from(123u64));
        assert_eq!("0x7b".parse::<U256>().unwrap(), U256::from(123u64));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(U256::from_dec_str(""), Err(ParseU256Error::Empty));
        assert_eq!(U256::from_dec_str("12a"), Err(ParseU256Error::InvalidDigit));
        let huge = "1".repeat(80);
        assert_eq!(U256::from_dec_str(&huge), Err(ParseU256Error::Overflow));
        assert_eq!(
            U256::from_hex_str(&"f".repeat(65)),
            Err(ParseU256Error::Overflow)
        );
    }

    #[test]
    fn max_decimal_parses_back() {
        let max_str = U256::MAX.to_string();
        assert_eq!(U256::from_dec_str(&max_str).unwrap(), U256::MAX);
        assert_eq!(
            U256::from_dec_str(
                "115792089237316195423570985008687907853269984665640564039457584007913129639936"
            ),
            Err(ParseU256Error::Overflow)
        );
    }

    #[test]
    fn shifts() {
        let one = U256::ONE;
        assert_eq!(one << 64, U256([0, 1, 0, 0]));
        assert_eq!(one << 255 >> 255, one);
        assert_eq!(one << 256, U256::ZERO);
        assert_eq!((U256([0, 0, 0, 1]) >> 192), U256::ONE);
        assert_eq!(U256::MAX >> 256, U256::ZERO);
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!((U256::ONE << 200).bits(), 201);
        assert!((U256::ONE << 200).bit(200));
        assert!(!(U256::ONE << 200).bit(199));
    }

    #[test]
    fn bit_ops() {
        let a = U256::from(0b1100u64);
        let b = U256::from(0b1010u64);
        assert_eq!(a & b, U256::from(0b1000u64));
        assert_eq!(a | b, U256::from(0b1110u64));
        assert_eq!(a ^ b, U256::from(0b0110u64));
        assert_eq!(!U256::ZERO, U256::MAX);
    }

    #[test]
    fn hex_display() {
        assert_eq!(format!("{:x}", U256::from(0x1f2eu64)), "1f2e");
        assert_eq!(format!("{:#x}", U256::from(255u64)), "0xff");
        assert_eq!(format!("{:x}", U256::ZERO), "0");
    }

    #[test]
    fn conversions() {
        assert_eq!(U256::from(5u32).to_u64(), Some(5));
        assert_eq!((U256::ONE << 64).to_u64(), None);
        assert_eq!((U256::ONE << 64).to_u128(), Some(1u128 << 64));
        assert_eq!((U256::ONE << 128).to_u128(), None);
        assert_eq!(U256::from(7u64).low_u64(), 7);
    }

    #[test]
    fn sum_iterator() {
        let total: U256 = (1..=10u64).map(U256::from).sum();
        assert_eq!(total, U256::from(55u64));
    }
}
