//! Hex encoding and decoding helpers.
//!
//! Encoding always produces lowercase hex. Decoding accepts upper- and
//! lowercase digits and an optional `0x` prefix.

use std::error::Error;
use std::fmt;

/// Error returned when decoding an invalid hex string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FromHexError {
    /// The input contained a character outside `[0-9a-fA-F]`.
    InvalidDigit {
        /// Byte offset of the offending character (after any `0x` prefix).
        index: usize,
        /// The offending character.
        ch: char,
    },
    /// The input had an odd number of hex digits.
    OddLength,
}

impl fmt::Display for FromHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromHexError::InvalidDigit { index, ch } => {
                write!(f, "invalid hex digit {ch:?} at index {index}")
            }
            FromHexError::OddLength => write!(f, "hex string has an odd number of digits"),
        }
    }
}

impl Error for FromHexError {}

fn digit_value(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Decodes a hex string (with or without a `0x` prefix) into bytes.
///
/// # Errors
///
/// Returns [`FromHexError::OddLength`] if the digit count is odd and
/// [`FromHexError::InvalidDigit`] on the first non-hex character.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), parp_primitives::FromHexError> {
/// assert_eq!(parp_primitives::from_hex("0xdeadBEEF")?, vec![0xde, 0xad, 0xbe, 0xef]);
/// assert_eq!(parp_primitives::from_hex("")?, Vec::<u8>::new());
/// # Ok(())
/// # }
/// ```
pub fn from_hex(s: &str) -> Result<Vec<u8>, FromHexError> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(FromHexError::OddLength);
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hi = digit_value(pair[0]).ok_or(FromHexError::InvalidDigit {
            index: 2 * i,
            ch: pair[0] as char,
        })?;
        let lo = digit_value(pair[1]).ok_or(FromHexError::InvalidDigit {
            index: 2 * i + 1,
            ch: pair[1] as char,
        })?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

const HEX_CHARS: &[u8; 16] = b"0123456789abcdef";

/// Encodes bytes as lowercase hex without a prefix.
///
/// # Examples
///
/// ```
/// assert_eq!(parp_primitives::to_hex(&[0xde, 0xad]), "dead");
/// ```
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX_CHARS[(b >> 4) as usize] as char);
        s.push(HEX_CHARS[(b & 0x0f) as usize] as char);
    }
    s
}

/// Encodes bytes as lowercase hex with a `0x` prefix.
///
/// # Examples
///
/// ```
/// assert_eq!(parp_primitives::to_hex_prefixed(&[0x01, 0x02]), "0x0102");
/// ```
pub fn to_hex_prefixed(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(2 + bytes.len() * 2);
    s.push_str("0x");
    s.push_str(&to_hex(bytes));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_empty() {
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
        assert_eq!(from_hex("0x").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn decode_mixed_case() {
        assert_eq!(from_hex("aAbB").unwrap(), vec![0xaa, 0xbb]);
    }

    #[test]
    fn decode_with_prefix() {
        assert_eq!(from_hex("0x00ff").unwrap(), vec![0x00, 0xff]);
    }

    #[test]
    fn odd_length_rejected() {
        assert_eq!(from_hex("abc").unwrap_err(), FromHexError::OddLength);
        assert_eq!(from_hex("0xf").unwrap_err(), FromHexError::OddLength);
    }

    #[test]
    fn invalid_digit_rejected() {
        assert_eq!(
            from_hex("0xg0").unwrap_err(),
            FromHexError::InvalidDigit { index: 0, ch: 'g' }
        );
        assert_eq!(
            from_hex("a0 b").unwrap_err(),
            FromHexError::InvalidDigit { index: 2, ch: ' ' }
        );
    }

    #[test]
    fn encode_roundtrip() {
        let data = [0u8, 1, 15, 16, 127, 128, 255];
        let encoded = to_hex(&data);
        assert_eq!(from_hex(&encoded).unwrap(), data);
        let prefixed = to_hex_prefixed(&data);
        assert!(prefixed.starts_with("0x"));
        assert_eq!(from_hex(&prefixed).unwrap(), data);
    }

    #[test]
    fn error_display_is_lowercase_prose() {
        let e = FromHexError::OddLength.to_string();
        assert!(e.starts_with("hex string"));
    }
}
