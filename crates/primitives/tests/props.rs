//! Property-based tests for U256 arithmetic laws and hex codecs.

use parp_primitives::{from_hex, to_hex, H256, U256};
use proptest::prelude::*;

fn arb_u256() -> impl Strategy<Value = U256> {
    any::<[u64; 4]>().prop_map(U256::from_limbs)
}

proptest! {
    #[test]
    fn add_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.overflowing_add(b), b.overflowing_add(a));
    }

    #[test]
    fn add_sub_roundtrip(a in arb_u256(), b in arb_u256()) {
        let (sum, overflow) = a.overflowing_add(b);
        if !overflow {
            prop_assert_eq!(sum.checked_sub(b), Some(a));
        }
    }

    #[test]
    fn mul_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.overflowing_mul(b), b.overflowing_mul(a));
    }

    #[test]
    fn div_rem_reconstructs(a in arb_u256(), b in arb_u256()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(b);
        prop_assert!(r < b);
        let (qb, overflow) = q.overflowing_mul(b);
        prop_assert!(!overflow);
        prop_assert_eq!(qb.checked_add(r), Some(a));
    }

    #[test]
    fn distributive_small(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (U256::from(a), U256::from(b), U256::from(c));
        let lhs = a.overflowing_mul(b.overflowing_add(c).0).0;
        let rhs = a.overflowing_mul(b).0.overflowing_add(a.overflowing_mul(c).0).0;
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn byte_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_be_bytes(a.to_be_bytes()), a);
    }

    #[test]
    fn minimal_bytes_roundtrip(a in arb_u256()) {
        let minimal = a.to_be_bytes_minimal();
        if !minimal.is_empty() {
            prop_assert_ne!(minimal[0], 0);
        }
        prop_assert_eq!(U256::from_be_slice(&minimal), Some(a));
    }

    #[test]
    fn decimal_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_dec_str(&a.to_string()), Ok(a));
    }

    #[test]
    fn shift_inverse(a in arb_u256(), s in 0u32..256) {
        // Shifting left then right clears only the bits shifted out the top.
        let masked = (a << s) >> s;
        let expected = if s == 0 { a } else { a & (U256::MAX >> s) };
        prop_assert_eq!(masked, expected);
    }

    #[test]
    fn ordering_consistent_with_sub(a in arb_u256(), b in arb_u256()) {
        let (_, borrow) = a.overflowing_sub(b);
        prop_assert_eq!(borrow, a < b);
    }

    #[test]
    fn hex_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let encoded = to_hex(&bytes);
        prop_assert_eq!(from_hex(&encoded).unwrap(), bytes);
    }

    #[test]
    fn h256_parse_roundtrip(bytes in any::<[u8; 32]>()) {
        let h = H256::new(bytes);
        prop_assert_eq!(h.to_string().parse::<H256>().unwrap(), h);
    }
}
