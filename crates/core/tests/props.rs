//! Property tests on the protocol layer: message round-trips, signer
//! attribution, and the §V-D classification's soundness on randomly
//! corrupted responses.

use parp_chain::Header;
use parp_contracts::{ParpRequest, ParpResponse, RpcCall};
use parp_core::{classify_response, Classification};
use parp_crypto::SecretKey;
use parp_primitives::{Address, H256, U256};
use proptest::prelude::*;

fn arb_call() -> impl Strategy<Value = RpcCall> {
    prop_oneof![
        any::<u64>().prop_map(|n| RpcCall::GetBalance {
            address: Address::from_low_u64_be(n)
        }),
        proptest::collection::vec(any::<u8>(), 1..200)
            .prop_map(|raw| RpcCall::SendRawTransaction { raw }),
        any::<u64>().prop_map(|n| RpcCall::GetTransactionByHash {
            hash: H256::from_low_u64_be(n)
        }),
        Just(RpcCall::BlockNumber),
        any::<u64>().prop_map(|number| RpcCall::GetHeader { number }),
        any::<u64>().prop_map(|channel_id| RpcCall::GetChannelStatus { channel_id }),
    ]
}

fn arb_request() -> impl Strategy<Value = (ParpRequest, u64)> {
    (
        any::<u64>(), // channel id
        any::<u64>(), // block hash seed
        any::<u64>(), // amount
        arb_call(),
        any::<u8>(), // key seed
    )
        .prop_map(|(channel, hb, amount, call, key_seed)| {
            let key = SecretKey::from_seed(&[key_seed, 0x17]);
            let request = ParpRequest::build(
                &key,
                channel,
                H256::from_low_u64_be(hb),
                U256::from(amount),
                call,
            );
            (request, key_seed as u64)
        })
}

fn header_at(number: u64) -> Header {
    Header {
        parent_hash: H256::from_low_u64_be(number.wrapping_sub(1)),
        ommers_hash: parp_crypto::keccak256(&[0xc0]),
        beneficiary: Address::ZERO,
        state_root: parp_trie::empty_root(),
        transactions_root: parp_trie::empty_root(),
        receipts_root: parp_trie::empty_root(),
        difficulty: U256::ZERO,
        number,
        gas_limit: 30_000_000,
        gas_used: 0,
        timestamp: number * 12,
        extra_data: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn request_roundtrip_preserves_signer((request, key_seed) in arb_request()) {
        let decoded = ParpRequest::decode(&request.encode()).unwrap();
        prop_assert_eq!(&decoded, &request);
        let key = SecretKey::from_seed(&[key_seed as u8, 0x17]);
        prop_assert_eq!(decoded.signer(), Some(key.address()));
        prop_assert_eq!(decoded.payment_signer(), Some(key.address()));
    }

    #[test]
    fn response_roundtrip(
        (request, _) in arb_request(),
        block_number in any::<u64>(),
        result in proptest::collection::vec(any::<u8>(), 0..100),
        proof in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 0..5),
        node_seed in any::<u8>(),
    ) {
        let node = SecretKey::from_seed(&[node_seed, 0x33]);
        let response = ParpResponse::build(&node, &request, block_number, result, proof);
        let decoded = ParpResponse::decode(&response.encode()).unwrap();
        prop_assert_eq!(&decoded, &response);
        prop_assert_eq!(decoded.signer(), Some(node.address()));
    }

    #[test]
    fn honest_unproven_response_is_valid(
        channel in any::<u64>(),
        amount in any::<u64>(),
        request_height in 0u64..1000,
        lag in 0u64..10,
    ) {
        // BlockNumber carries no proof: only amount/height/signature
        // checks apply. An honest echo at m_B >= request height is Valid.
        let lc = SecretKey::from_seed(b"prop-lc");
        let node = SecretKey::from_seed(b"prop-node");
        let request = ParpRequest::build(
            &lc,
            channel,
            header_at(request_height).hash(),
            U256::from(amount),
            RpcCall::BlockNumber,
        );
        let m_b = request_height + lag;
        let response = ParpResponse::build(
            &node, &request, m_b, parp_rlp::encode_u64(m_b), Vec::new(),
        );
        let classification = classify_response(
            &request, &response, node.address(), request_height,
            |n| Some(header_at(n)),
        );
        prop_assert_eq!(classification, Classification::Valid);
    }

    #[test]
    fn corrupted_amount_is_never_valid(
        amount in any::<u64>(),
        corrupt in any::<u64>(),
    ) {
        prop_assume!(amount != corrupt);
        let lc = SecretKey::from_seed(b"prop-lc2");
        let node = SecretKey::from_seed(b"prop-node2");
        let request = ParpRequest::build(
            &lc, 1, header_at(5).hash(), U256::from(amount), RpcCall::BlockNumber,
        );
        let mut response = ParpResponse::build(
            &node, &request, 6, parp_rlp::encode_u64(6), Vec::new(),
        );
        response.amount = U256::from(corrupt);
        let digest = response.expected_hash();
        response.response_sig = parp_crypto::sign(&node, &digest);
        let classification = classify_response(
            &request, &response, node.address(), 5, |n| Some(header_at(n)),
        );
        // Signed by the node itself, so it is *provable* fraud (and in
        // particular never Valid).
        prop_assert!(matches!(classification, Classification::Fraudulent(_)));
    }

    #[test]
    fn stale_response_is_never_valid(
        request_height in 1u64..1000,
        staleness in 1u64..100,
    ) {
        let lc = SecretKey::from_seed(b"prop-lc3");
        let node = SecretKey::from_seed(b"prop-node3");
        let request = ParpRequest::build(
            &lc, 1, header_at(request_height).hash(), U256::from(10u64),
            RpcCall::BlockNumber,
        );
        let m_b = request_height.saturating_sub(staleness);
        let response = ParpResponse::build(
            &node, &request, m_b, parp_rlp::encode_u64(m_b), Vec::new(),
        );
        let classification = classify_response(
            &request, &response, node.address(), request_height,
            |n| Some(header_at(n)),
        );
        prop_assert!(matches!(classification, Classification::Fraudulent(_)));
    }

    #[test]
    fn foreign_signer_is_never_valid(
        (request, _) in arb_request(),
        imposter_seed in any::<u8>(),
    ) {
        let node = SecretKey::from_seed(b"prop-honest-node");
        let imposter = SecretKey::from_seed(&[imposter_seed, 0x99]);
        prop_assume!(imposter.address() != node.address());
        let response = ParpResponse::build(
            &imposter, &request, 10, Vec::new(), Vec::new(),
        );
        let classification = classify_response(
            &request, &response, node.address(), 0, |n| Some(header_at(n)),
        );
        // Signed by someone else: untrusted but NOT slashable fraud
        // against the honest node.
        prop_assert!(matches!(classification, Classification::Invalid(_)));
    }
}
