//! PARP: the Permissionless Accountable RPC Protocol (Wang & Van Cutsem,
//! ICDCS 2025) — off-chain protocol layer.
//!
//! This crate implements both sides of a PARP connection on top of the
//! on-chain modules from [`parp_contracts`]:
//!
//! * [`LightClient`] — header store, handshake and channel state machine
//!   (paper Fig. 4 / Algorithm 1), signed request construction with
//!   cumulative micropayments, the §V-D response classification
//!   (valid / invalid / fraudulent), fraud-evidence collection, and the
//!   §V-C channel liveness probe.
//! * [`FullNode`] — handshake confirmation, request verification,
//!   response generation with Merkle proofs, payment tracking and
//!   redemption, plus configurable [`Misbehavior`] injection for the
//!   fraud experiments.
//! * [`classify_response`] — the standalone check sequence, shared with
//!   the on-chain Fraud Detection Module.
//! * The **batched pipeline**: [`LightClient::request_batch`] signs N
//!   calls with one signature and one cumulative payment,
//!   [`FullNode::handle_batch`] serves them from a single state
//!   snapshot with a deduplicated multiproof, and
//!   [`classify_batch_response`] judges every item separately — one
//!   fraudulent item still yields [`BatchFraudEvidence`].
//! * [`collect_serving_proof`] / [`verify_serving_proof`] — the §VIII
//!   "Proof of Serving" extension.
//!
//! # Examples
//!
//! A complete connection against an in-process chain:
//!
//! ```
//! use parp_core::{FullNode, LightClient, ProcessOutcome};
//! use parp_chain::Blockchain;
//! use parp_contracts::{build_module_call, min_deposit, ModuleCall, ParpExecutor, RpcCall};
//! use parp_crypto::SecretKey;
//! use parp_primitives::U256;
//!
//! # fn main() {
//! // Network: a chain with a staked, serving full node.
//! let node_key = SecretKey::from_seed(b"node");
//! let client_key = SecretKey::from_seed(b"client");
//! let funds = U256::from(4u64) * min_deposit();
//! let mut chain = Blockchain::new(vec![
//!     (node_key.address(), funds),
//!     (client_key.address(), funds),
//! ]);
//! let mut executor = ParpExecutor::new();
//! chain.produce_block(vec![
//!     build_module_call(&node_key, 0, ModuleCall::Deposit, min_deposit()),
//! ], &mut executor).unwrap();
//! chain.produce_block(vec![
//!     build_module_call(&node_key, 1, ModuleCall::SetServing { serving: true }, U256::ZERO),
//! ], &mut executor).unwrap();
//!
//! let mut node = FullNode::new(node_key, U256::from(10u64));
//! let mut client = LightClient::new(client_key, U256::from(10u64));
//!
//! // Bootstrap: sync headers, handshake, open the channel on-chain.
//! client.sync_headers((0..=chain.height()).map(|n| chain.block(n).unwrap().header.clone()));
//! client.start_handshake(node.address()).unwrap();
//! let confirm = node.confirm_handshake(client.address(), chain.head().header.timestamp);
//! let open_tx = client.accept_confirmation(&confirm, U256::from(10_000u64), 0).unwrap();
//! chain.produce_block(vec![open_tx], &mut executor).unwrap();
//! let channel_id = executor.cmm().channel_count() as u64 - 1;
//! client.channel_opened(channel_id).unwrap();
//! client.sync_header(chain.head().header.clone());
//!
//! // Request/response with verification.
//! let request = client.request(RpcCall::GetBalance { address: client.address() }).unwrap();
//! let response = node.handle_request(&request, &mut chain, &mut executor).unwrap();
//! client.sync_header(chain.head().header.clone());
//! match client.process_response(&response).unwrap() {
//!     ProcessOutcome::Valid { proven, .. } => assert!(proven),
//!     other => panic!("expected valid, got {other:?}"),
//! }
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod client;
mod misbehavior;
mod server;
mod serving_proof;
mod verify;

pub use client::{
    BatchFraudEvidence, ClientChannel, ClientError, ClientState, FraudEvidence, LightClient,
    ProcessBatchOutcome, ProcessOutcome,
};
pub use misbehavior::Misbehavior;
pub use server::{
    FullNode, HandshakeConfirm, ProofEngine, SequentialEngine, ServeError, ServedChannel,
    HANDSHAKE_TTL_SECS,
};
pub use serving_proof::{
    collect_serving_proof, verify_serving_proof, ServingProof, ServingProofError, ServingReceipt,
};
pub use verify::{
    classify_batch_response, classify_response, BatchClassification, Classification, InvalidReason,
};
