//! "Proof of Serving" (paper §VIII, future work): aggregating signed
//! payment receipts so a full node can claim serving rewards.
//!
//! A payment signature `σ_a` over `(α, a)` is a receipt: it proves the
//! channel's light client authorized a cumulative payment of `a` on
//! channel α. Summing the *maximum* receipt per channel measures the work
//! a node performed. The Sybil caveat from the paper applies and is
//! exercised in tests: a node colluding with fake light clients can mint
//! receipts, so a real deployment must weight receipts by channel
//! deposits (which cost the attacker real funds).

use crate::server::FullNode;
use parp_contracts::{payment_digest, ChannelsModule};
use parp_crypto::{recover_address, Signature};
use parp_primitives::{Address, U256};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// One payment receipt: the redeemable `(α, a, σ_a)` triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingReceipt {
    /// Channel identifier α.
    pub channel_id: u64,
    /// Cumulative amount `a`.
    pub amount: U256,
    /// The light client's payment signature.
    pub payment_sig: Signature,
}

/// An aggregate claim of service performed by a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingProof {
    /// The claiming full node.
    pub node: Address,
    /// One receipt per channel served.
    pub receipts: Vec<ServingReceipt>,
}

impl ServingProof {
    /// Total claimed across receipts (unverified).
    pub fn claimed_total(&self) -> U256 {
        self.receipts
            .iter()
            .fold(U256::ZERO, |acc, r| acc.saturating_add(r.amount))
    }
}

/// Why a serving proof was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServingProofError {
    /// A receipt references a channel that does not exist on-chain.
    UnknownChannel(u64),
    /// A receipt's channel belongs to a different full node.
    WrongNode(u64),
    /// A receipt's signature does not recover to the channel's client.
    BadReceipt(u64),
    /// A receipt claims more than the channel's budget.
    OverBudget(u64),
    /// The same channel appears twice.
    DuplicateChannel(u64),
}

impl fmt::Display for ServingProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingProofError::UnknownChannel(id) => write!(f, "unknown channel {id}"),
            ServingProofError::WrongNode(id) => {
                write!(f, "channel {id} belongs to a different node")
            }
            ServingProofError::BadReceipt(id) => write!(f, "invalid receipt for channel {id}"),
            ServingProofError::OverBudget(id) => {
                write!(f, "receipt exceeds budget of channel {id}")
            }
            ServingProofError::DuplicateChannel(id) => {
                write!(f, "channel {id} appears more than once")
            }
        }
    }
}

impl Error for ServingProofError {}

/// Collects the node's receipts into a serving proof.
pub fn collect_serving_proof(node: &FullNode) -> ServingProof {
    let receipts = node
        .served_channels()
        .map(|(id, served)| ServingReceipt {
            channel_id: *id,
            amount: served.latest_amount,
            payment_sig: served.latest_payment_sig,
        })
        .collect();
    ServingProof {
        node: node.address(),
        receipts,
    }
}

/// Verifies a serving proof against on-chain channel records, returning
/// the total of validated receipts.
///
/// # Errors
///
/// Returns the first [`ServingProofError`] encountered.
pub fn verify_serving_proof(
    proof: &ServingProof,
    cmm: &ChannelsModule,
) -> Result<U256, ServingProofError> {
    let mut seen: BTreeMap<u64, ()> = BTreeMap::new();
    let mut total = U256::ZERO;
    for receipt in &proof.receipts {
        let id = receipt.channel_id;
        if seen.insert(id, ()).is_some() {
            return Err(ServingProofError::DuplicateChannel(id));
        }
        let channel = cmm
            .channel(id)
            .ok_or(ServingProofError::UnknownChannel(id))?;
        if channel.full_node != proof.node {
            return Err(ServingProofError::WrongNode(id));
        }
        if receipt.amount > channel.budget {
            return Err(ServingProofError::OverBudget(id));
        }
        let digest = payment_digest(id, &receipt.amount);
        match recover_address(&digest, &receipt.payment_sig) {
            Ok(signer) if signer == channel.light_client => {}
            _ => return Err(ServingProofError::BadReceipt(id)),
        }
        total = total.saturating_add(receipt.amount);
    }
    Ok(total)
}
