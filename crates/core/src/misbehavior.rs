//! Failure injection: the ways a malicious or buggy full node can deviate
//! from the protocol. Drives the fraud tests and the fraud benches.

use parp_contracts::{
    ParpBatchRequest, ParpBatchResponse, ParpRequest, ParpResponse, ProofKind, RpcCall,
};
use parp_crypto::{sign, SecretKey};
use parp_primitives::U256;

/// A forged result of the right *shape* for `call`, so the lie is
/// well-formed and therefore provable fraud (a shapeless forgery would
/// classify as merely *invalid*): receipt lookups keep their
/// `[index, receipt]` envelope with doctored contents, transaction
/// lookups claim a wrong inclusion index, everything else an inflated
/// account record.
fn forged_payload(call: &RpcCall, honest: &[u8]) -> Vec<u8> {
    match call.proof_kind() {
        ProofKind::Receipt => {
            let index = parp_rlp::decode_list_of(honest, 2)
                .ok()
                .and_then(|fields| fields[0].as_u64().ok())
                .unwrap_or(0);
            let forged_receipt = parp_chain::Receipt {
                status: 0, // claim the tx failed
                cumulative_gas_used: 1,
                logs: Vec::new(),
            };
            parp_rlp::encode_list(&[
                parp_rlp::encode_u64(index),
                parp_rlp::encode_bytes(&forged_receipt.encode()),
            ])
        }
        ProofKind::Transaction => {
            // rlp(index) with a doctored index: the honest proof then
            // binds a different (or no) value than the claim.
            let index = parp_rlp::decode(honest)
                .and_then(|i| i.as_u64())
                .unwrap_or(0);
            parp_rlp::encode_u64(index.wrapping_add(1))
        }
        ProofKind::State | ProofKind::None => {
            parp_chain::Account::with_balance(U256::from(123_456_789_000u64)).encode()
        }
    }
}

/// A deviation a full node can be configured to perform.
///
/// Variants map onto the paper's §V-D checks: the first group produces
/// *fraudulent* (slashable) responses, the second *invalid* (untrusted
/// but unprovable) ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Misbehavior {
    /// Honest behaviour.
    #[default]
    None,
    /// Echo a lower payment amount — slashable (amount check).
    WrongAmount,
    /// Answer as of an older block than the client's view — slashable
    /// (timestamp check).
    StaleHeight,
    /// Return a forged result with an honest proof — slashable (Merkle
    /// proof check).
    ForgedResult,
    /// Corrupt a byte of the Merkle proof — slashable.
    CorruptProof,
    /// Omit the Merkle proof entirely — slashable.
    OmitProof,
    /// Answer on a different channel id — invalid (client walks away).
    WrongChannelId,
    /// Sign the response with a key other than the node's — invalid.
    WrongResponseKey,
    /// Echo a wrong request hash, breaking fraud-proof linkage — invalid.
    WrongRequestHash,
}

impl Misbehavior {
    /// Whether this deviation should be provable on-chain (drives test
    /// assertions: every `slashable` misbehavior must end in a slash, no
    /// `!slashable` one may).
    pub fn slashable(&self) -> bool {
        matches!(
            self,
            Misbehavior::WrongAmount
                | Misbehavior::StaleHeight
                | Misbehavior::ForgedResult
                | Misbehavior::CorruptProof
                | Misbehavior::OmitProof
        )
    }

    /// All deviations (excluding honest), for exhaustive test sweeps.
    pub fn all() -> [Misbehavior; 8] {
        [
            Misbehavior::WrongAmount,
            Misbehavior::StaleHeight,
            Misbehavior::ForgedResult,
            Misbehavior::CorruptProof,
            Misbehavior::OmitProof,
            Misbehavior::WrongChannelId,
            Misbehavior::WrongResponseKey,
            Misbehavior::WrongRequestHash,
        ]
    }

    /// Applies the deviation to an honest response, re-signing where the
    /// attack requires the node's authentic signature.
    ///
    /// `request_height` is the height of `req.h_B` (used to fake
    /// staleness).
    pub(crate) fn corrupt(
        &self,
        request: &ParpRequest,
        mut response: ParpResponse,
        node_key: &SecretKey,
        request_height: u64,
    ) -> ParpResponse {
        match self {
            Misbehavior::None => return response,
            Misbehavior::WrongAmount => {
                response.amount = request.amount.saturating_sub(U256::ONE);
            }
            Misbehavior::StaleHeight => {
                response.block_number = request_height.saturating_sub(1);
            }
            Misbehavior::ForgedResult => {
                response.result = forged_payload(&request.call, &response.result);
            }
            Misbehavior::CorruptProof => {
                if let Some(first) = response.proof.first_mut() {
                    if let Some(byte) = first.last_mut() {
                        *byte ^= 0x01;
                    }
                } else {
                    // Nothing to corrupt: fall back to a forged result so
                    // the deviation is still observable.
                    response.result = vec![0xde, 0xad];
                }
            }
            Misbehavior::OmitProof => {
                response.proof.clear();
            }
            Misbehavior::WrongChannelId => {
                response.channel_id = response.channel_id.wrapping_add(1);
            }
            Misbehavior::WrongResponseKey => {
                let rogue = SecretKey::from_seed(b"rogue-node-key");
                let digest = response.expected_hash();
                response.response_sig = sign(&rogue, &digest);
                return response; // deliberately signed by the wrong key
            }
            Misbehavior::WrongRequestHash => {
                response.request_hash = parp_crypto::keccak256(b"unrelated");
            }
        }
        // Authentic signature over the corrupted contents: the node
        // commits to its own lie, which is what makes fraud provable.
        let digest = response.expected_hash();
        response.response_sig = sign(node_key, &digest);
        response
    }

    /// Applies the deviation to an honest *batch* response. Item-level
    /// attacks (forged result, corrupted/omitted proof) touch only the
    /// **last** item, leaving the rest of the batch honest — exactly the
    /// "one bad item inside a valid batch" case the per-item
    /// classification must catch.
    pub(crate) fn corrupt_batch(
        &self,
        request: &ParpBatchRequest,
        mut response: ParpBatchResponse,
        node_key: &SecretKey,
        request_height: u64,
    ) -> ParpBatchResponse {
        match self {
            Misbehavior::None => return response,
            Misbehavior::WrongAmount => {
                response.amount = request.amount.saturating_sub(U256::ONE);
            }
            Misbehavior::StaleHeight => {
                response.block_number = request_height.saturating_sub(1);
            }
            Misbehavior::ForgedResult => {
                // Forge the last item with a payload of the right shape
                // for its call, exactly as the single-call path does.
                if let (Some(last), Some(call)) =
                    (response.results.last_mut(), request.calls.last())
                {
                    *last = forged_payload(call, last);
                }
            }
            Misbehavior::CorruptProof => {
                if let Some(node) = response.multiproof.last_mut() {
                    if let Some(byte) = node.last_mut() {
                        *byte ^= 0x01;
                    }
                } else if let Some(last) = response.results.last_mut() {
                    *last = vec![0xde, 0xad];
                }
            }
            Misbehavior::OmitProof => {
                response.multiproof.clear();
            }
            Misbehavior::WrongChannelId => {
                response.channel_id = response.channel_id.wrapping_add(1);
            }
            Misbehavior::WrongResponseKey => {
                let rogue = SecretKey::from_seed(b"rogue-node-key");
                let digest = response.expected_hash();
                response.response_sig = sign(&rogue, &digest);
                return response; // deliberately signed by the wrong key
            }
            Misbehavior::WrongRequestHash => {
                response.request_hash = parp_crypto::keccak256(b"unrelated");
            }
        }
        let digest = response.expected_hash();
        response.response_sig = sign(node_key, &digest);
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slashable_partition() {
        let slashable: Vec<_> = Misbehavior::all()
            .into_iter()
            .filter(Misbehavior::slashable)
            .collect();
        assert_eq!(slashable.len(), 5);
        assert!(!Misbehavior::None.slashable());
        assert!(!Misbehavior::WrongChannelId.slashable());
    }
}
