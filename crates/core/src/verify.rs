//! Client-side response classification (paper §V-D).
//!
//! Every PARP response is classified as **valid** (all checks pass),
//! **invalid** (cannot be trusted, but also cannot support a fraud proof —
//! the client should walk away), or **fraudulent** (provably wrong: the
//! client can slash the full node on-chain).

use parp_chain::Header;
use parp_contracts::{
    batch_fraud_conditions, fraud_conditions, BatchFraud, FraudVerdict, ParpBatchRequest,
    ParpBatchResponse, ParpRequest, ParpResponse,
};
use parp_primitives::Address;
use std::fmt;

/// Why a response is invalid (untrusted but not slashable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidReason {
    /// The echoed request hash does not match the request's.
    RequestHashMismatch,
    /// The echoed request signature differs (breaks fraud-proof linkage).
    RequestSigMismatch,
    /// `σ_res` does not recover to the serving full node.
    ResponseSignatureInvalid,
    /// The response's channel id differs from the request's.
    ChannelIdMismatch,
    /// The client has no header for `res.m_B`, so proofs cannot be
    /// checked yet (fetch the header and retry).
    MissingHeader(u64),
    /// The result payload is too malformed to judge.
    MalformedResult(String),
}

impl fmt::Display for InvalidReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidReason::RequestHashMismatch => write!(f, "request hash mismatch"),
            InvalidReason::RequestSigMismatch => write!(f, "request signature echo mismatch"),
            InvalidReason::ResponseSignatureInvalid => write!(f, "response signature invalid"),
            InvalidReason::ChannelIdMismatch => write!(f, "channel identifier mismatch"),
            InvalidReason::MissingHeader(n) => write!(f, "missing header for block {n}"),
            InvalidReason::MalformedResult(e) => write!(f, "malformed result: {e}"),
        }
    }
}

/// The §V-D trichotomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Classification {
    /// All checks pass; the client trusts the response.
    Valid,
    /// The client cannot trust the response, but cannot prove fraud
    /// either; terminating the connection is the sensible reaction.
    Invalid(InvalidReason),
    /// Provably wrong; grounds for an on-chain fraud proof.
    Fraudulent(FraudVerdict),
}

/// Runs the full §V-D check sequence on a response.
///
/// * `full_node` — the address the serving node authenticated with when
///   the channel was opened.
/// * `request_height` — the height of the block `req.h_B` names (the
///   client knows it: it picked `h_B` from its own header store).
/// * `header_for` — the client's header store lookup for `res.m_B`.
pub fn classify_response(
    req: &ParpRequest,
    res: &ParpResponse,
    full_node: Address,
    request_height: u64,
    header_for: impl Fn(u64) -> Option<Header>,
) -> Classification {
    // 1. Verify request hash: without the correct linkage no fraud proof
    //    can be built, so a mismatch is invalid, not fraud.
    if res.request_hash != req.request_hash || req.expected_hash() != req.request_hash {
        return Classification::Invalid(InvalidReason::RequestHashMismatch);
    }
    if res.request_sig != req.request_sig {
        return Classification::Invalid(InvalidReason::RequestSigMismatch);
    }
    // 2. Verify response signature.
    match res.signer() {
        Some(signer) if signer == full_node => {}
        _ => return Classification::Invalid(InvalidReason::ResponseSignatureInvalid),
    }
    // 3. Channel identifier check.
    if res.channel_id != req.channel_id {
        return Classification::Invalid(InvalidReason::ChannelIdMismatch);
    }
    // 4-6. Payment amount, timestamp and Merkle proof — the same
    // conditions the on-chain module enforces (Algorithm 2).
    let Some(header) = header_for(res.block_number) else {
        return Classification::Invalid(InvalidReason::MissingHeader(res.block_number));
    };
    match fraud_conditions(req, res, &header, request_height) {
        Err(e) => Classification::Invalid(InvalidReason::MalformedResult(e)),
        Ok(Some(verdict)) => Classification::Fraudulent(verdict),
        Ok(None) => Classification::Valid,
    }
}

/// The §V-D trichotomy applied to a batched exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchClassification {
    /// The envelope cannot be trusted (hash echo, signature, channel id
    /// or missing header): nothing item-specific can be judged, and no
    /// fraud proof is possible. The client should walk away.
    Invalid(InvalidReason),
    /// A batch-level fraud condition — payment echo mismatch, stale
    /// snapshot, or a multiproof that does not verify — condemns the
    /// whole signed response, and with it every item.
    BatchFraud {
        /// The condition that condemned the response.
        verdict: FraudVerdict,
    },
    /// The envelope and batch-level conditions hold; each item carries
    /// its own verdict.
    Items(Vec<Classification>),
}

impl BatchClassification {
    /// Whether every item in the batch verified.
    pub fn all_valid(&self) -> bool {
        match self {
            BatchClassification::Items(items) => {
                items.iter().all(|c| matches!(c, Classification::Valid))
            }
            _ => false,
        }
    }

    /// The first fraudulent item, as `(index, verdict)`.
    pub fn first_fraud(&self) -> Option<(usize, FraudVerdict)> {
        match self {
            BatchClassification::Items(items) => {
                items.iter().enumerate().find_map(|(i, c)| match c {
                    Classification::Fraudulent(verdict) => Some((i, *verdict)),
                    _ => None,
                })
            }
            _ => None,
        }
    }
}

/// Runs the §V-D check sequence on a batched response: the same envelope
/// checks as [`classify_response`] (one signature recovery covers all N
/// items), then the batch fraud conditions with per-item attribution —
/// each item judged against the trusted header of **its own** block.
///
/// Parameters mirror [`classify_response`]; `header_for` is consulted
/// once per distinct block the response binds proofs to (the snapshot
/// plus every inclusion item's containing block).
pub fn classify_batch_response(
    req: &ParpBatchRequest,
    res: &ParpBatchResponse,
    full_node: Address,
    request_height: u64,
    header_for: impl Fn(u64) -> Option<Header>,
) -> BatchClassification {
    // 1. Request hash linkage (no fraud proof without it).
    if res.request_hash != req.request_hash || req.expected_hash() != req.request_hash {
        return BatchClassification::Invalid(InvalidReason::RequestHashMismatch);
    }
    if res.request_sig != req.request_sig {
        return BatchClassification::Invalid(InvalidReason::RequestSigMismatch);
    }
    // 2. One response-signature recovery for the whole batch.
    match res.signer() {
        Some(signer) if signer == full_node => {}
        _ => return BatchClassification::Invalid(InvalidReason::ResponseSignatureInvalid),
    }
    // 3. Channel identifier.
    if res.channel_id != req.channel_id {
        return BatchClassification::Invalid(InvalidReason::ChannelIdMismatch);
    }
    // 4-6. Payment, snapshot freshness, multiproof and per-item proofs,
    // judged against the client's own trusted headers for every block
    // the response references (the carried header set must match them —
    // a mismatch is unjudgeable, not fraud, because the node's proofs
    // are checked against the canonical roots either way).
    let mut trusted = std::collections::BTreeMap::new();
    for number in res.referenced_blocks() {
        let Some(header) = header_for(number) else {
            return BatchClassification::Invalid(InvalidReason::MissingHeader(number));
        };
        trusted.insert(number, header);
    }
    match batch_fraud_conditions(req, res, &trusted, request_height) {
        Err(e) => BatchClassification::Invalid(InvalidReason::MalformedResult(e)),
        Ok(None) => BatchClassification::Items(vec![Classification::Valid; req.calls.len()]),
        Ok(Some(BatchFraud::Batch(verdict))) => BatchClassification::BatchFraud { verdict },
        Ok(Some(BatchFraud::Items(verdicts))) => BatchClassification::Items(
            verdicts
                .into_iter()
                .map(|v| match v {
                    Some(verdict) => Classification::Fraudulent(verdict),
                    None => Classification::Valid,
                })
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_contracts::RpcCall;
    use parp_crypto::{sign, SecretKey};
    use parp_primitives::{H256, U256};

    fn lc() -> SecretKey {
        SecretKey::from_seed(b"verify-lc")
    }

    fn node() -> SecretKey {
        SecretKey::from_seed(b"verify-fn")
    }

    fn header_at(number: u64) -> Header {
        Header {
            parent_hash: H256::from_low_u64_be(number.wrapping_sub(1)),
            ommers_hash: parp_crypto::keccak256(&[0xc0]),
            beneficiary: Address::ZERO,
            state_root: parp_trie::empty_root(),
            transactions_root: parp_trie::empty_root(),
            receipts_root: parp_trie::empty_root(),
            difficulty: U256::ZERO,
            number,
            gas_limit: 30_000_000,
            gas_used: 0,
            timestamp: number * 12,
            extra_data: Vec::new(),
        }
    }

    fn honest_pair() -> (ParpRequest, ParpResponse) {
        let req = ParpRequest::build(
            &lc(),
            1,
            header_at(10).hash(),
            U256::from(100u64),
            RpcCall::BlockNumber,
        );
        let res = ParpResponse::build(&node(), &req, 12, parp_rlp::encode_u64(12), Vec::new());
        (req, res)
    }

    fn classify(req: &ParpRequest, res: &ParpResponse) -> Classification {
        classify_response(req, res, node().address(), 10, |n| Some(header_at(n)))
    }

    #[test]
    fn honest_response_is_valid() {
        let (req, res) = honest_pair();
        assert_eq!(classify(&req, &res), Classification::Valid);
    }

    #[test]
    fn wrong_request_hash_is_invalid() {
        let (req, mut res) = honest_pair();
        res.request_hash = H256::from_low_u64_be(0xbad);
        assert_eq!(
            classify(&req, &res),
            Classification::Invalid(InvalidReason::RequestHashMismatch)
        );
    }

    #[test]
    fn wrong_signer_is_invalid() {
        let (req, _) = honest_pair();
        let imposter = SecretKey::from_seed(b"imposter");
        let res = ParpResponse::build(&imposter, &req, 12, parp_rlp::encode_u64(12), Vec::new());
        assert_eq!(
            classify(&req, &res),
            Classification::Invalid(InvalidReason::ResponseSignatureInvalid)
        );
    }

    #[test]
    fn wrong_channel_id_is_invalid() {
        let (req, mut res) = honest_pair();
        res.channel_id = 99;
        let digest = res.expected_hash();
        res.response_sig = sign(&node(), &digest);
        assert_eq!(
            classify(&req, &res),
            Classification::Invalid(InvalidReason::ChannelIdMismatch)
        );
    }

    #[test]
    fn amount_mismatch_is_fraud() {
        let (req, mut res) = honest_pair();
        res.amount = U256::from(50u64);
        let digest = res.expected_hash();
        res.response_sig = sign(&node(), &digest);
        assert_eq!(
            classify(&req, &res),
            Classification::Fraudulent(FraudVerdict::AmountMismatch)
        );
    }

    #[test]
    fn stale_height_is_fraud() {
        let (req, _) = honest_pair();
        let res = ParpResponse::build(&node(), &req, 9, parp_rlp::encode_u64(9), Vec::new());
        assert_eq!(
            classify(&req, &res),
            Classification::Fraudulent(FraudVerdict::StaleBlockHeight)
        );
    }

    #[test]
    fn missing_header_is_invalid_not_fraud() {
        let (req, res) = honest_pair();
        let classification = classify_response(&req, &res, node().address(), 10, |_| None);
        assert_eq!(
            classification,
            Classification::Invalid(InvalidReason::MissingHeader(12))
        );
    }

    #[test]
    fn bad_balance_proof_is_fraud() {
        let req = ParpRequest::build(
            &lc(),
            1,
            header_at(10).hash(),
            U256::from(100u64),
            RpcCall::GetBalance {
                address: Address::from_low_u64_be(5),
            },
        );
        // Claims a balance but supplies no proof: with the empty-trie root
        // in our test header the claim contradicts the (empty) state.
        let account = parp_chain::Account::with_balance(U256::from(777u64));
        let res = ParpResponse::build(&node(), &req, 12, account.encode(), Vec::new());
        assert_eq!(
            classify(&req, &res),
            Classification::Fraudulent(FraudVerdict::InvalidProof)
        );
    }
}
