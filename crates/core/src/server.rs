//! The PARP-compatible full node: handshake confirmation, request
//! verification, response generation, and payment tracking (paper §IV-E,
//! §V, and the server half of Fig. 5's processing pipeline).

use crate::misbehavior::Misbehavior;
use parp_chain::{Blockchain, State};
use parp_contracts::{
    confirmation_digest, ChannelStatus, ModuleCall, ParpBatchRequest, ParpBatchResponse,
    ParpExecutor, ParpRequest, ParpResponse, RpcCall,
};
use parp_crypto::{sign, KeyPair, SecretKey, Signature};
use parp_primitives::{Address, H256, U256};
use parp_telemetry::{StageRecorder, TimeSource, TimeStamp};
use parp_trie::ProofBuf;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Strategy that supplies state-trie proofs to the serving paths.
///
/// [`FullNode::handle_request`] and [`FullNode::handle_batch`] are
/// parameterized over this trait so a serving runtime can slot in
/// snapshot caching and sharded proof generation *without* the protocol
/// layer depending on it — the engine only decides **how** proof nodes
/// are produced, never **which** nodes, so responses stay byte-identical
/// across engines (the fraud checks require it).
pub trait ProofEngine {
    /// Deduplicated multiproof for `addresses` under `state`'s root,
    /// equivalent to [`State::account_multiproof`].
    fn account_multiproof(&mut self, state: &State, addresses: &[Address]) -> Vec<Vec<u8>>;

    /// [`ProofEngine::account_multiproof`] serialized into a reusable
    /// [`ProofBuf`]: the same node set, written zero-copy into one
    /// contiguous allocation the serving loop carries across batches.
    /// The default copies through the allocating path; engines backed
    /// by an arena-frozen trie override it to skip the per-node `Vec`s
    /// entirely.
    fn account_multiproof_into(
        &mut self,
        state: &State,
        addresses: &[Address],
        out: &mut ProofBuf,
    ) {
        out.clear();
        for node in self.account_multiproof(state, addresses) {
            out.push(&node);
        }
    }

    /// Single-account proof under `state`'s root, equivalent to
    /// [`State::account_proof`].
    fn account_proof(&mut self, state: &State, address: &Address) -> Vec<Vec<u8>>;

    /// Inclusion proof for transaction `index` of block `block`,
    /// equivalent to [`Blockchain::transaction_proof`]. A runtime
    /// overrides this to reuse a cached per-block transaction trie
    /// instead of rebuilding it per lookup.
    ///
    /// # Panics
    ///
    /// Panics when the location does not exist (callers resolve it via
    /// [`Blockchain::transaction_location`] first).
    fn transaction_proof(&mut self, chain: &Blockchain, block: u64, index: usize) -> Vec<Vec<u8>> {
        chain
            .transaction_proof(block, index)
            .expect("proof for located transaction")
    }

    /// Inclusion proof for receipt `index` of block `block`, equivalent
    /// to [`Blockchain::receipt_proof`]. A runtime overrides this to
    /// reuse a cached per-block receipt trie.
    ///
    /// # Panics
    ///
    /// Panics when the location does not exist.
    fn receipt_proof(&mut self, chain: &Blockchain, block: u64, index: usize) -> Vec<Vec<u8>> {
        chain
            .receipt_proof(block, index)
            .expect("proof for located receipt")
    }
}

/// The built-in engine: proofs straight off the state's memoized trie,
/// generated sequentially. [`FullNode::handle_request`] and
/// [`FullNode::handle_batch`] use it when no runtime is attached.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialEngine;

impl ProofEngine for SequentialEngine {
    fn account_multiproof(&mut self, state: &State, addresses: &[Address]) -> Vec<Vec<u8>> {
        state.account_multiproof(addresses)
    }

    fn account_multiproof_into(
        &mut self,
        state: &State,
        addresses: &[Address],
        out: &mut ProofBuf,
    ) {
        state.account_multiproof_into(addresses, out);
    }

    fn account_proof(&mut self, state: &State, address: &Address) -> Vec<Vec<u8>> {
        state.account_proof(address)
    }
}

/// `(m_B, R(γ), π_γ)`: the served height, result payload and proof nodes.
type CallOutput = (u64, Vec<u8>, Vec<Vec<u8>>);

/// How long a handshake confirmation stays valid, in seconds.
pub const HANDSHAKE_TTL_SECS: u64 = 600;

/// The signed consent a full node returns during the handshake
/// (Algorithm 1's `HSCONFIRM` message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeConfirm {
    /// The confirming full node.
    pub full_node: Address,
    /// Expiry timestamp of this confirmation.
    pub expiry: u64,
    /// `Sign(keccak256(LC || expiry), sk_FN)`.
    pub signature: Signature,
}

/// Why a full node refuses to serve a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No such channel on-chain.
    UnknownChannel(u64),
    /// The channel is not in the `Open` state.
    ChannelNotOpen(u64),
    /// The channel names a different full node.
    NotOurChannel,
    /// `σ_req` or `σ_a` does not recover to the channel's light client.
    WrongSigner,
    /// The cumulative amount regressed or pays less than the price.
    InsufficientPayment {
        /// Amount offered by this request.
        offered: U256,
        /// Minimum acceptable cumulative amount.
        required: U256,
    },
    /// The cumulative amount exceeds the channel budget.
    BudgetExceeded,
    /// The wrapped call could not be executed.
    Execution(String),
    /// A batch request carried no calls (it would still demand payment).
    EmptyBatch,
    /// A batch request carried a call that cannot ride in a batch
    /// (writes mutate state mid-batch and must travel as single
    /// requests).
    UnbatchableCall,
    /// The request pinned `h_B` to a block hash this node does not know
    /// (a stale fork, a typo, or a forged hash). Serving it would judge
    /// the timestamp check against a fabricated height, so the node
    /// refuses instead of silently mapping it to genesis.
    UnknownBlockHash(H256),
    /// A `GetHeader` call named a block number this node does not have
    /// (beyond the head, or pruned). The old behaviour served an empty
    /// unproven payload indistinguishable from a real answer; the node
    /// now refuses outright, mirroring [`ServeError::UnknownBlockHash`].
    UnknownBlock(u64),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownChannel(id) => write!(f, "unknown channel {id}"),
            ServeError::ChannelNotOpen(id) => write!(f, "channel {id} is not open"),
            ServeError::NotOurChannel => write!(f, "channel names a different full node"),
            ServeError::WrongSigner => write!(f, "request not signed by the channel owner"),
            ServeError::InsufficientPayment { offered, required } => {
                write!(f, "payment {offered} below required {required}")
            }
            ServeError::BudgetExceeded => write!(f, "cumulative amount exceeds channel budget"),
            ServeError::Execution(e) => write!(f, "execution failed: {e}"),
            ServeError::EmptyBatch => write!(f, "batch request carries no calls"),
            ServeError::UnbatchableCall => {
                write!(f, "batch request carries a call that cannot be batched")
            }
            ServeError::UnknownBlockHash(hash) => {
                write!(f, "request pinned to unknown block hash {hash}")
            }
            ServeError::UnknownBlock(number) => {
                write!(f, "no block at height {number} to serve")
            }
        }
    }
}

impl Error for ServeError {}

/// Per-channel serving state tracked by the node (the `(a, σ_a)` pairs it
/// will redeem on-chain).
#[derive(Debug, Clone)]
pub struct ServedChannel {
    /// Highest cumulative amount received.
    pub latest_amount: U256,
    /// The matching payment signature.
    pub latest_payment_sig: Signature,
    /// Requests served on this channel.
    pub calls_served: u64,
}

/// A PARP-compatible full node service.
///
/// The node borrows the chain (it *is* a full node, so it holds the whole
/// chain locally) and its view of the on-chain modules.
#[derive(Debug, Clone)]
pub struct FullNode {
    key: KeyPair,
    price_per_call: U256,
    channels: HashMap<u64, ServedChannel>,
    misbehavior: Misbehavior,
    requests_served: u64,
    /// Reused multiproof scratch: a warm batch loop serializes every
    /// multiproof into the same two allocations.
    proof_scratch: ProofBuf,
    /// Optional per-stage timing scratch (crypto verify / proof build /
    /// response sign), drained by the simulator to emit trace
    /// sub-spans. `None` keeps the uninstrumented path at one branch.
    stages: Option<StageRecorder>,
    /// The injected clock stage durations are measured with (the
    /// simulator shares its deterministic handle; standalone nodes
    /// default to the host clock).
    clock: TimeSource,
}

impl FullNode {
    /// Creates a full node serving at `price_per_call` wei per request.
    pub fn new(secret: SecretKey, price_per_call: U256) -> Self {
        FullNode {
            key: KeyPair::from_secret(secret),
            price_per_call,
            channels: HashMap::new(),
            misbehavior: Misbehavior::None,
            requests_served: 0,
            proof_scratch: ProofBuf::new(),
            stages: None,
            clock: TimeSource::default(),
        }
    }

    /// Replaces the clock stage durations are measured with (see
    /// [`FullNode::set_stage_recorder`]); the deterministic simulator
    /// injects its own handle so stage traces reproduce across hosts.
    pub fn set_time_source(&mut self, clock: TimeSource) {
        self.clock = clock;
    }

    /// Attaches (or with `None`, detaches) a [`StageRecorder`] the node
    /// stamps with wall-clock microseconds per serve stage — signature
    /// verification, proof construction, response signing. The recorder
    /// is shared atomics, so the simulator drains it after each
    /// exchange without any protocol API change.
    pub fn set_stage_recorder(&mut self, stages: Option<StageRecorder>) {
        self.stages = stages;
    }

    #[inline]
    fn stage_start(&self) -> Option<TimeStamp> {
        self.stages.is_some().then(|| self.clock.start())
    }

    #[inline]
    fn stage_verify(&self, start: Option<TimeStamp>) {
        if let (Some(stages), Some(start)) = (&self.stages, start) {
            stages.add_verify_us(self.clock.elapsed_us(start));
        }
    }

    #[inline]
    fn stage_proof(&self, start: Option<TimeStamp>) {
        if let (Some(stages), Some(start)) = (&self.stages, start) {
            stages.add_proof_us(self.clock.elapsed_us(start));
        }
    }

    #[inline]
    fn stage_sign(&self, start: Option<TimeStamp>) {
        if let (Some(stages), Some(start)) = (&self.stages, start) {
            stages.add_sign_us(self.clock.elapsed_us(start));
        }
    }

    /// The node's address.
    pub fn address(&self) -> Address {
        self.key.address()
    }

    /// The node's secret key (needed to build its module transactions).
    pub fn secret(&self) -> &SecretKey {
        self.key.secret()
    }

    /// The agreed price per RPC call.
    pub fn price_per_call(&self) -> U256 {
        self.price_per_call
    }

    /// Total requests served across all channels.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Configures failure injection (tests, fraud benches).
    pub fn set_misbehavior(&mut self, misbehavior: Misbehavior) {
        self.misbehavior = misbehavior;
    }

    /// Confirms a handshake: signs consent for `light_client` with an
    /// expiry of `now + HANDSHAKE_TTL_SECS` (Algorithm 1).
    pub fn confirm_handshake(&self, light_client: Address, now: u64) -> HandshakeConfirm {
        let expiry = now + HANDSHAKE_TTL_SECS;
        let signature = sign(
            self.key.secret(),
            &confirmation_digest(&light_client, expiry),
        );
        HandshakeConfirm {
            full_node: self.address(),
            expiry,
            signature,
        }
    }

    /// Serves one PARP request: verifies it (step B of Fig. 5), executes
    /// the wrapped call against the chain, and signs the response (step
    /// C). Write calls mine a block, mirroring the node's relay role.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the channel, signatures or payment are
    /// not acceptable; the request is then not served (and not charged).
    pub fn handle_request(
        &mut self,
        request: &ParpRequest,
        chain: &mut Blockchain,
        executor: &mut ParpExecutor,
    ) -> Result<ParpResponse, ServeError> {
        self.handle_request_with(request, chain, executor, &mut SequentialEngine)
    }

    /// [`FullNode::handle_request`] with an explicit [`ProofEngine`]
    /// (how a serving runtime routes single calls through its snapshot
    /// cache). The response is byte-identical for every engine.
    ///
    /// # Errors
    ///
    /// As [`FullNode::handle_request`].
    pub fn handle_request_with(
        &mut self,
        request: &ParpRequest,
        chain: &mut Blockchain,
        executor: &mut ParpExecutor,
        engine: &mut dyn ProofEngine,
    ) -> Result<ParpResponse, ServeError> {
        if let RpcCall::SendRawTransaction { .. } = request.call {
            // The only mutating call: verify, mine, prove inclusion.
            let verify_start = self.stage_start();
            self.verify_request(request, executor)?;
            self.stage_verify(verify_start);
            let request_height = chain
                .block_number_by_hash(&request.block_hash)
                .ok_or(ServeError::UnknownBlockHash(request.block_hash))?;
            let (block_number, result, proof) =
                self.execute_write(&request.call, chain, executor, engine)?;
            return Ok(self.finish_response(request, request_height, block_number, result, proof));
        }
        self.handle_read_request(request, chain, executor, engine)
    }

    /// Serves a **read-only** request against a shared chain reference —
    /// the entry point that lets a fan-out (e.g. a gateway quorum) serve
    /// several nodes' exchanges concurrently over one `&Blockchain`:
    /// nothing here mutates chain state, so legs only need disjoint
    /// `&mut FullNode`s. Byte-identical to [`FullNode::handle_request`]
    /// for every non-write call.
    ///
    /// # Errors
    ///
    /// As [`FullNode::handle_request`], plus
    /// [`ServeError::UnbatchableCall`] when handed the write call this
    /// path cannot serve.
    pub fn handle_read_request(
        &mut self,
        request: &ParpRequest,
        chain: &Blockchain,
        executor: &ParpExecutor,
        engine: &mut dyn ProofEngine,
    ) -> Result<ParpResponse, ServeError> {
        if let RpcCall::SendRawTransaction { .. } = request.call {
            return Err(ServeError::UnbatchableCall);
        }
        let verify_start = self.stage_start();
        self.verify_request(request, executor)?;
        self.stage_verify(verify_start);
        let request_height = chain
            .block_number_by_hash(&request.block_hash)
            .ok_or(ServeError::UnknownBlockHash(request.block_hash))?;
        let proof_start = self.stage_start();
        let (block_number, result, proof) =
            self.execute_read(&request.call, chain, executor, engine)?;
        self.stage_proof(proof_start);
        Ok(self.finish_response(request, request_height, block_number, result, proof))
    }

    /// Payment bookkeeping + response signing, shared by the write and
    /// read serving paths.
    fn finish_response(
        &mut self,
        request: &ParpRequest,
        request_height: u64,
        block_number: u64,
        result: Vec<u8>,
        proof: Vec<Vec<u8>>,
    ) -> ParpResponse {
        // Record the payment before responding: the signed cumulative
        // amount is the node's receivable.
        self.channels.insert(
            request.channel_id,
            ServedChannel {
                latest_amount: request.amount,
                latest_payment_sig: request.payment_sig,
                calls_served: self
                    .channels
                    .get(&request.channel_id)
                    .map(|c| c.calls_served + 1)
                    .unwrap_or(1),
            },
        );
        self.requests_served += 1;
        let sign_start = self.stage_start();
        let honest = ParpResponse::build(self.key.secret(), request, block_number, result, proof);
        self.stage_sign(sign_start);
        self.misbehavior
            .corrupt(request, honest, self.key.secret(), request_height)
    }

    /// Serves one batched PARP request: verifies the envelope **once**
    /// (one channel lookup, two signature recoveries — the same cost as a
    /// single call, amortized over N items), executes state reads
    /// against a single snapshot (collapsing their proofs into one
    /// deduplicated multiproof), serves historical inclusion lookups
    /// with per-item proofs bound to their containing blocks, and
    /// carries the deduplicated header set for every referenced block —
    /// the multi-header batch envelope.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the batch is empty, carries a write
    /// (the only unbatchable call), names an unknown block, or fails the
    /// channel/signature/payment checks; the batch is then not served
    /// (and not charged).
    pub fn handle_batch(
        &mut self,
        request: &ParpBatchRequest,
        chain: &mut Blockchain,
        executor: &mut ParpExecutor,
    ) -> Result<ParpBatchResponse, ServeError> {
        self.handle_batch_with(request, chain, executor, &mut SequentialEngine)
    }

    /// [`FullNode::handle_batch`] with an explicit [`ProofEngine`] — the
    /// hook a serving runtime uses to reuse a cached snapshot trie and
    /// generate the multiproof across shards. Engines only change *how*
    /// the proof nodes are produced; the response bytes are identical to
    /// the sequential path for any engine and any shard count.
    ///
    /// # Errors
    ///
    /// As [`FullNode::handle_batch`].
    pub fn handle_batch_with(
        &mut self,
        request: &ParpBatchRequest,
        chain: &mut Blockchain,
        executor: &mut ParpExecutor,
        engine: &mut dyn ProofEngine,
    ) -> Result<ParpBatchResponse, ServeError> {
        let verify_start = self.stage_start();
        self.verify_batch_request(request, executor)?;
        self.stage_verify(verify_start);
        let request_height = chain
            .block_number_by_hash(&request.block_hash)
            .ok_or(ServeError::UnknownBlockHash(request.block_hash))?;
        // One snapshot serves every state-proven and unproven item;
        // inclusion lookups bind to their own containing blocks.
        let head = chain.height();
        let state = chain.state_at(head).expect("head state exists");
        let n = request.calls.len();
        let mut results = Vec::with_capacity(n);
        let mut item_blocks = Vec::with_capacity(n);
        let mut item_proofs = Vec::with_capacity(n);
        let mut state_addresses: Vec<Address> = Vec::new();
        for call in &request.calls {
            // verify_batch_request already rejected unbatchable calls.
            match Self::inclusion_lookup(call, chain, engine) {
                Some(Some((block, result, proof))) => {
                    results.push(result);
                    item_blocks.push(block);
                    item_proofs.push(proof);
                }
                // Not found: an unproven empty answer bound to the
                // snapshot, as on the single-call path.
                Some(None) => {
                    results.push(Vec::new());
                    item_blocks.push(head);
                    item_proofs.push(Vec::new());
                }
                // A snapshot-provable read.
                None => {
                    results.push(Self::read_result(call, head, state, chain, executor)?);
                    item_blocks.push(head);
                    item_proofs.push(Vec::new());
                    if let Some(address) = call.state_address() {
                        state_addresses.push(*address);
                    }
                }
            }
        }
        // One trie build, one deduplicated proof for all state items —
        // serialized zero-copy into the node's reused scratch buffer
        // and materialized as the wire shape exactly once.
        let mut scratch = std::mem::take(&mut self.proof_scratch);
        let proof_start = self.stage_start();
        engine.account_multiproof_into(state, &state_addresses, &mut scratch);
        let multiproof = scratch.to_vecs();
        self.stage_proof(proof_start);
        self.proof_scratch = scratch;
        // The deduplicated header set: one per distinct referenced
        // block (the snapshot plus every inclusion item's block),
        // ordered by the same function the judge zips headers against.
        let referenced = parp_contracts::referenced_blocks(head, &item_blocks);
        let mut headers: Vec<Vec<u8>> = Vec::with_capacity(referenced.len());
        for number in &referenced {
            // Warm blocks come off the resident window, pruned blocks
            // off the history segments — byte-identical either way.
            headers.push(
                chain
                    .header_encoded(*number)
                    .ok_or(ServeError::UnknownBlock(*number))?,
            );
        }
        let served = request.calls.len() as u64;
        let channel = self
            .channels
            .entry(request.channel_id)
            .or_insert(ServedChannel {
                latest_amount: U256::ZERO,
                latest_payment_sig: request.payment_sig,
                calls_served: 0,
            });
        channel.latest_amount = request.amount;
        channel.latest_payment_sig = request.payment_sig;
        channel.calls_served += served;
        self.requests_served += served;
        let output = parp_contracts::BatchOutput {
            block_number: head,
            results,
            multiproof,
            item_blocks,
            item_proofs,
            headers,
        };
        let sign_start = self.stage_start();
        let honest = ParpBatchResponse::build(self.key.secret(), request, output);
        self.stage_sign(sign_start);
        Ok(self
            .misbehavior
            .corrupt_batch(request, honest, self.key.secret(), request_height))
    }

    /// Step (B) for a batch: the same envelope checks as
    /// [`FullNode::verify_request`], run once for all N items, plus the
    /// batch-specific structural checks. Payment must cover
    /// `price_per_call × N` on top of the channel's running total.
    pub fn verify_batch_request(
        &self,
        request: &ParpBatchRequest,
        executor: &ParpExecutor,
    ) -> Result<(), ServeError> {
        if request.is_empty() {
            return Err(ServeError::EmptyBatch);
        }
        if !request.calls.iter().all(RpcCall::batchable) {
            return Err(ServeError::UnbatchableCall);
        }
        // A batch made purely of liveness probes keeps the §V-C
        // Closing-channel allowance of the single-call path.
        let is_liveness_probe = request
            .calls
            .iter()
            .all(|call| matches!(call, RpcCall::GetChannelStatus { .. }));
        // The two envelope recoveries (request signature, payment
        // signature) are independent ECDSA operations — recover them
        // concurrently when a second core is available.
        let (signer, payment_signer) =
            parp_crypto::par_join(|| request.signer(), || request.payment_signer());
        self.verify_envelope(
            executor,
            request.channel_id,
            signer,
            payment_signer,
            request.amount,
            is_liveness_probe,
            request.calls.len() as u64,
        )
    }

    /// Step (B): request verification — channel lookup plus two signature
    /// recoveries (the request signature and the payment signature).
    pub fn verify_request(
        &self,
        request: &ParpRequest,
        executor: &ParpExecutor,
    ) -> Result<(), ServeError> {
        let is_liveness_probe = matches!(request.call, RpcCall::GetChannelStatus { .. });
        // As in batch verification: the two recoveries are independent.
        let (signer, payment_signer) =
            parp_crypto::par_join(|| request.signer(), || request.payment_signer());
        self.verify_envelope(
            executor,
            request.channel_id,
            signer,
            payment_signer,
            request.amount,
            is_liveness_probe,
            1,
        )
    }

    /// The envelope checks shared by single and batched requests: channel
    /// lookup and status, signer attribution, budget, and cumulative
    /// payment covering `price_per_call × calls`.
    #[allow(clippy::too_many_arguments)]
    fn verify_envelope(
        &self,
        executor: &ParpExecutor,
        channel_id: u64,
        signer: Option<Address>,
        payment_signer: Option<Address>,
        amount: U256,
        is_liveness_probe: bool,
        calls: u64,
    ) -> Result<(), ServeError> {
        let channel = executor
            .cmm()
            .channel(channel_id)
            .ok_or(ServeError::UnknownChannel(channel_id))?;
        // Liveness probes (§V-C) exist to detect a channel being closed
        // behind the client's back, so they are served while the channel
        // is Closing; everything else requires Open.
        match channel.status {
            ChannelStatus::Open => {}
            ChannelStatus::Closing { .. } if is_liveness_probe => {}
            _ => return Err(ServeError::ChannelNotOpen(channel_id)),
        }
        if channel.full_node != self.address() {
            return Err(ServeError::NotOurChannel);
        }
        if signer != Some(channel.light_client) || payment_signer != Some(channel.light_client) {
            return Err(ServeError::WrongSigner);
        }
        if amount > channel.budget {
            return Err(ServeError::BudgetExceeded);
        }
        let prev = self
            .channels
            .get(&channel_id)
            .map(|c| c.latest_amount)
            .unwrap_or(U256::ZERO);
        let required = prev.saturating_add(self.price_per_call * U256::from(calls));
        if amount < required {
            return Err(ServeError::InsufficientPayment {
                offered: amount,
                required,
            });
        }
        Ok(())
    }

    /// The result payload of a snapshot-provable read, shared between
    /// [`FullNode::execute_call`] and [`FullNode::handle_batch`] so the
    /// single-call and batched encodings cannot drift (the fraud checks
    /// require them to stay byte-identical).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownBlock`] for a `GetHeader` naming a
    /// block this node does not have — an empty payload would be
    /// indistinguishable from a real (unproven) answer.
    ///
    /// # Panics
    ///
    /// Panics on calls that are not snapshot-provable (the callers route
    /// those elsewhere or reject them up front).
    fn read_result(
        call: &RpcCall,
        head: u64,
        state: &parp_chain::State,
        chain: &Blockchain,
        executor: &ParpExecutor,
    ) -> Result<Vec<u8>, ServeError> {
        match call {
            // Balance and nonce reads both answer with the full RLP
            // account record the state proof binds; the client reads the
            // field it asked for out of it.
            RpcCall::GetBalance { address } | RpcCall::GetTransactionCount { address } => Ok(state
                .account(address)
                .map(parp_chain::Account::encode)
                .unwrap_or_default()),
            RpcCall::BlockNumber => Ok(parp_rlp::encode_u64(head)),
            RpcCall::GetHeader { number } => chain
                .header_encoded(*number)
                .ok_or(ServeError::UnknownBlock(*number)),
            RpcCall::GetChannelStatus { channel_id } => Ok(vec![executor
                .cmm()
                .channel(*channel_id)
                .map(|c| c.status.as_byte())
                .unwrap_or(0xff)]),
            RpcCall::SendRawTransaction { .. }
            | RpcCall::GetTransactionByHash { .. }
            | RpcCall::GetTransactionReceipt { .. } => {
                unreachable!("not a snapshot-provable read: {call:?}")
            }
        }
    }

    /// Serves a historical inclusion lookup, shared between the single
    /// and batched paths so their result/proof encodings cannot drift.
    ///
    /// Returns `None` for calls that are not inclusion lookups,
    /// `Some(None)` when the queried transaction is unknown (absence by
    /// hash is not provable in an index-keyed trie — the caller serves
    /// an unproven empty answer), and `Some(Some((block, result,
    /// proof)))` for a located item bound to its containing block.
    fn inclusion_lookup(
        call: &RpcCall,
        chain: &Blockchain,
        engine: &mut dyn ProofEngine,
    ) -> Option<Option<CallOutput>> {
        match call {
            RpcCall::GetTransactionByHash { hash } => {
                Some(chain.transaction_location(hash).map(|(block, index)| {
                    let proof = engine.transaction_proof(chain, block, index);
                    (block, parp_rlp::encode_u64(index as u64), proof)
                }))
            }
            RpcCall::GetTransactionReceipt { hash } => {
                Some(chain.transaction_location(hash).and_then(|(block, index)| {
                    // Located receipts normally exist; a pruned block
                    // whose archived record cannot be read degrades to
                    // the unproven not-found answer instead of a panic.
                    let receipt = chain.receipt_encoded(block, index)?;
                    let proof = engine.receipt_proof(chain, block, index);
                    let result = parp_rlp::encode_list(&[
                        parp_rlp::encode_u64(index as u64),
                        parp_rlp::encode_bytes(&receipt),
                    ]);
                    Some((block, result, proof))
                }))
            }
            _ => None,
        }
    }

    /// Serves [`RpcCall::SendRawTransaction`]: mine the transaction,
    /// prove its inclusion.
    fn execute_write(
        &self,
        call: &RpcCall,
        chain: &mut Blockchain,
        executor: &mut ParpExecutor,
        engine: &mut dyn ProofEngine,
    ) -> Result<CallOutput, ServeError> {
        let RpcCall::SendRawTransaction { raw } = call else {
            unreachable!("execute_write only handles SendRawTransaction");
        };
        let tx = parp_chain::SignedTransaction::decode(raw)
            .map_err(|e| ServeError::Execution(format!("bad transaction: {e}")))?;
        let hash = tx.hash();
        chain
            .produce_block(vec![tx], executor)
            .map_err(|e| ServeError::Execution(format!("inclusion failed: {e}")))?;
        let (block, index) = chain.transaction_location(&hash).expect("just included");
        let proof = engine.transaction_proof(chain, block, index);
        Ok((block, parp_rlp::encode_u64(index as u64), proof))
    }

    /// Serves every non-mutating call against a shared chain reference.
    fn execute_read(
        &self,
        call: &RpcCall,
        chain: &Blockchain,
        executor: &ParpExecutor,
        engine: &mut dyn ProofEngine,
    ) -> Result<CallOutput, ServeError> {
        match call {
            RpcCall::GetBalance { address } | RpcCall::GetTransactionCount { address } => {
                let head = chain.height();
                let state = chain.state_at(head).expect("head state exists");
                let result = Self::read_result(call, head, state, chain, executor)?;
                let proof = engine.account_proof(state, address);
                Ok((head, result, proof))
            }
            RpcCall::SendRawTransaction { .. } => {
                unreachable!("writes route through execute_write")
            }
            RpcCall::GetTransactionByHash { .. } | RpcCall::GetTransactionReceipt { .. } => {
                match Self::inclusion_lookup(call, chain, engine).expect("inclusion call") {
                    Some(output) => Ok(output),
                    // Absence of a transaction by hash is not provable in
                    // the transaction trie; serve an empty result at the
                    // head (the client treats it as unverified data).
                    None => Ok((chain.height(), Vec::new(), Vec::new())),
                }
            }
            RpcCall::BlockNumber | RpcCall::GetHeader { .. } | RpcCall::GetChannelStatus { .. } => {
                let head = chain.height();
                let state = chain.state_at(head).expect("head state exists");
                let result = Self::read_result(call, head, state, chain, executor)?;
                Ok((head, result, Vec::new()))
            }
        }
    }

    /// The serving state for a channel, if any requests arrived.
    pub fn served_channel(&self, channel_id: u64) -> Option<&ServedChannel> {
        self.channels.get(&channel_id)
    }

    /// All channels the node has served, with their receivables.
    pub fn served_channels(&self) -> impl Iterator<Item = (&u64, &ServedChannel)> {
        self.channels.iter()
    }

    /// Builds the `closeChannel` module call redeeming the node's latest
    /// signed payment state for a channel.
    pub fn close_channel_call(&self, channel_id: u64) -> Option<ModuleCall> {
        let served = self.channels.get(&channel_id)?;
        Some(ModuleCall::CloseChannel {
            channel_id,
            amount: served.latest_amount,
            payment_sig: served.latest_payment_sig,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_contracts::{build_module_call, min_deposit};
    use parp_crypto::recover_address;

    fn setup() -> (Blockchain, ParpExecutor, FullNode, SecretKey, u64) {
        let node_key = SecretKey::from_seed(b"server-node");
        let client_key = SecretKey::from_seed(b"server-client");
        let funds = U256::from(10u64) * min_deposit();
        let mut chain = Blockchain::new(vec![
            (node_key.address(), funds),
            (client_key.address(), funds),
        ]);
        let mut executor = ParpExecutor::new();
        chain
            .produce_block(
                vec![build_module_call(
                    &node_key,
                    0,
                    ModuleCall::Deposit,
                    min_deposit(),
                )],
                &mut executor,
            )
            .unwrap();
        chain
            .produce_block(
                vec![build_module_call(
                    &node_key,
                    1,
                    ModuleCall::SetServing { serving: true },
                    U256::ZERO,
                )],
                &mut executor,
            )
            .unwrap();
        let node = FullNode::new(node_key, U256::from(10u64));
        // Open a channel for the client.
        let expiry = chain.head().header.timestamp + 600;
        let confirm = node.confirm_handshake(client_key.address(), chain.head().header.timestamp);
        assert_eq!(confirm.expiry, expiry);
        let open = build_module_call(
            &client_key,
            0,
            ModuleCall::OpenChannel {
                full_node: node.address(),
                expiry: confirm.expiry,
                confirmation_sig: confirm.signature,
            },
            U256::from(1_000_000u64),
        );
        chain.produce_block(vec![open], &mut executor).unwrap();
        assert_eq!(chain.receipts(chain.height()).unwrap()[0].status, 1);
        (chain, executor, node, client_key, 0)
    }

    fn request(
        client: &SecretKey,
        chain: &Blockchain,
        channel: u64,
        amount: u64,
        call: RpcCall,
    ) -> ParpRequest {
        ParpRequest::build(
            client,
            channel,
            chain.head().hash(),
            U256::from(amount),
            call,
        )
    }

    #[test]
    fn handshake_confirmation_verifies() {
        let node = FullNode::new(SecretKey::from_seed(b"hs"), U256::ONE);
        let lc = Address::from_low_u64_be(0x1c);
        let confirm = node.confirm_handshake(lc, 1000);
        assert_eq!(confirm.expiry, 1000 + HANDSHAKE_TTL_SECS);
        let digest = confirmation_digest(&lc, confirm.expiry);
        assert_eq!(
            recover_address(&digest, &confirm.signature).unwrap(),
            node.address()
        );
    }

    #[test]
    fn serves_balance_request_with_proof() {
        let (mut chain, mut executor, mut node, client, channel) = setup();
        let req = request(
            &client,
            &chain,
            channel,
            10,
            RpcCall::GetBalance {
                address: client.address(),
            },
        );
        let res = node
            .handle_request(&req, &mut chain, &mut executor)
            .unwrap();
        assert_eq!(res.channel_id, channel);
        assert!(!res.proof.is_empty());
        // The proof verifies against the served header's state root.
        let header = &chain.block(res.block_number).unwrap().header;
        let key = parp_crypto::keccak256(client.address().as_bytes());
        let proven = parp_trie::verify_proof(header.state_root, key.as_bytes(), &res.proof)
            .unwrap()
            .unwrap();
        assert_eq!(proven, res.result);
        assert_eq!(node.requests_served(), 1);
    }

    #[test]
    fn serves_write_request_by_mining() {
        let (mut chain, mut executor, mut node, client, channel) = setup();
        let transfer = parp_chain::Transaction {
            nonce: 1, // nonce 0 opened the channel
            gas_price: U256::ZERO,
            gas_limit: 21_000,
            to: Some(Address::from_low_u64_be(0xaa)),
            value: U256::from(5u64),
            data: Vec::new(),
        }
        .sign(&client);
        let height_before = chain.height();
        let req = request(
            &client,
            &chain,
            channel,
            10,
            RpcCall::SendRawTransaction {
                raw: transfer.encode(),
            },
        );
        let res = node
            .handle_request(&req, &mut chain, &mut executor)
            .unwrap();
        assert_eq!(chain.height(), height_before + 1);
        assert_eq!(res.block_number, height_before + 1);
        // Proof binds the raw tx into the transactions root.
        let header = &chain.block(res.block_number).unwrap().header;
        let index = parp_rlp::decode(&res.result).unwrap().as_u64().unwrap();
        let proven = parp_trie::verify_proof(
            header.transactions_root,
            &parp_rlp::encode_u64(index),
            &res.proof,
        )
        .unwrap()
        .unwrap();
        assert_eq!(proven, transfer.encode());
    }

    #[test]
    fn rejects_underpayment_and_regression() {
        let (mut chain, mut executor, mut node, client, channel) = setup();
        // Price is 10; offering 5 fails.
        let cheap = request(&client, &chain, channel, 5, RpcCall::BlockNumber);
        assert!(matches!(
            node.handle_request(&cheap, &mut chain, &mut executor),
            Err(ServeError::InsufficientPayment { .. })
        ));
        // Pay 10, then try to reuse 10 (cumulative must grow).
        let first = request(&client, &chain, channel, 10, RpcCall::BlockNumber);
        node.handle_request(&first, &mut chain, &mut executor)
            .unwrap();
        let replay = request(&client, &chain, channel, 10, RpcCall::BlockNumber);
        assert!(matches!(
            node.handle_request(&replay, &mut chain, &mut executor),
            Err(ServeError::InsufficientPayment { .. })
        ));
    }

    #[test]
    fn rejects_overbudget() {
        let (mut chain, mut executor, mut node, client, channel) = setup();
        let req = request(&client, &chain, channel, 2_000_000, RpcCall::BlockNumber);
        assert_eq!(
            node.handle_request(&req, &mut chain, &mut executor),
            Err(ServeError::BudgetExceeded)
        );
    }

    #[test]
    fn rejects_unknown_channel_and_wrong_signer() {
        let (mut chain, mut executor, mut node, client, _) = setup();
        let ghost = request(&client, &chain, 42, 10, RpcCall::BlockNumber);
        assert_eq!(
            node.handle_request(&ghost, &mut chain, &mut executor),
            Err(ServeError::UnknownChannel(42))
        );
        let stranger = SecretKey::from_seed(b"stranger");
        let forged = ParpRequest::build(
            &stranger,
            0,
            chain.head().hash(),
            U256::from(10u64),
            RpcCall::BlockNumber,
        );
        assert_eq!(
            node.handle_request(&forged, &mut chain, &mut executor),
            Err(ServeError::WrongSigner)
        );
    }

    #[test]
    fn tracks_latest_payment_for_redemption() {
        let (mut chain, mut executor, mut node, client, channel) = setup();
        for amount in [10u64, 20, 30] {
            let req = request(&client, &chain, channel, amount, RpcCall::BlockNumber);
            node.handle_request(&req, &mut chain, &mut executor)
                .unwrap();
        }
        let served = node.served_channel(channel).unwrap();
        assert_eq!(served.latest_amount, U256::from(30u64));
        assert_eq!(served.calls_served, 3);
        let close = node.close_channel_call(channel).unwrap();
        assert!(matches!(
            close,
            ModuleCall::CloseChannel { channel_id: 0, amount, .. } if amount == U256::from(30u64)
        ));
    }

    #[test]
    fn channel_status_probe() {
        let (mut chain, mut executor, mut node, client, channel) = setup();
        let req = request(
            &client,
            &chain,
            channel,
            10,
            RpcCall::GetChannelStatus {
                channel_id: channel,
            },
        );
        let res = node
            .handle_request(&req, &mut chain, &mut executor)
            .unwrap();
        assert_eq!(res.result, vec![ChannelStatus::Open.as_byte()]);
    }
}
