//! The PARP light client: header store, handshake and channel state
//! machine (Fig. 4, Algorithm 1), request construction, response
//! verification, and fraud-evidence collection.

use crate::server::HandshakeConfirm;
use crate::verify::{
    classify_batch_response, classify_response, BatchClassification, Classification, InvalidReason,
};
use parp_chain::{Header, SignedTransaction, Transaction};
use parp_contracts::{
    ChannelStatus, FraudVerdict, ModuleCall, ParpBatchRequest, ParpBatchResponse, ParpRequest,
    ParpResponse, RpcCall, MODULE_CALL_GAS_LIMIT,
};
use parp_crypto::{recover_address, sign, KeyPair, SecretKey};
use parp_primitives::{Address, H256, U256};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

/// The light client's protocol state (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClientState {
    /// No connection.
    #[default]
    Idle,
    /// `HANDSHAKE` sent, waiting for `HSCONFIRM`.
    Handshaking,
    /// `OpenChannel` sent, waiting for the receipt.
    Unbonded,
    /// Channel open; requests flowing.
    Bonded,
    /// `CloseChannel` sent, waiting for settlement.
    Unbonding,
}

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The operation requires a different protocol state.
    WrongState {
        /// State the operation requires.
        expected: ClientState,
        /// State the client is in.
        actual: ClientState,
    },
    /// No synced headers yet — cannot pick `h_B`.
    NoHeaders,
    /// The handshake confirmation failed validation.
    BadConfirmation(String),
    /// The channel budget cannot cover another call.
    BudgetExhausted,
    /// No pending request matches this response.
    UnknownResponse,
    /// A batch must carry at least one call.
    EmptyBatch,
    /// A call cannot ride in a batch (see [`RpcCall::batchable`]).
    UnbatchableCall,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::WrongState { expected, actual } => {
                write!(
                    f,
                    "operation requires {expected:?} state, client is {actual:?}"
                )
            }
            ClientError::NoHeaders => write!(f, "no synced block headers"),
            ClientError::BadConfirmation(e) => write!(f, "handshake confirmation rejected: {e}"),
            ClientError::BudgetExhausted => write!(f, "channel budget exhausted"),
            ClientError::UnknownResponse => write!(f, "response matches no pending request"),
            ClientError::EmptyBatch => write!(f, "batch must carry at least one call"),
            ClientError::UnbatchableCall => {
                write!(f, "call cannot be served from a single state snapshot")
            }
        }
    }
}

impl Error for ClientError {}

/// The client's view of its payment channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientChannel {
    /// Channel identifier α.
    pub id: u64,
    /// The serving full node.
    pub full_node: Address,
    /// Budget locked on-chain.
    pub budget: U256,
    /// Cumulative amount committed so far (the local `a`).
    pub spent: U256,
}

/// Everything needed to prove fraud on-chain: the request, the signed
/// response, and the header the proof is judged against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FraudEvidence {
    /// The offending request.
    pub request: ParpRequest,
    /// The fraudulent response.
    pub response: ParpResponse,
    /// Header of block `res.m_B`.
    pub header: Header,
    /// What the client's checks concluded.
    pub verdict: FraudVerdict,
}

impl FraudEvidence {
    /// Builds the `submitFraudProof` module call, to be relayed through a
    /// witness full node (§IV-F).
    pub fn to_module_call(&self, witness: Address) -> ModuleCall {
        ModuleCall::SubmitFraudProof {
            request: self.request.encode(),
            response: self.response.encode(),
            witness,
            header: self.header.encode(),
        }
    }
}

/// Everything the client holds when a batched response is provably
/// wrong: the signed exchange, the header it was judged against, and
/// which item (if any single one) carried the fraud.
///
/// The node's one batch signature commits it to every item, so evidence
/// against a single item condemns the whole signed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchFraudEvidence {
    /// The offending batch request.
    pub request: ParpBatchRequest,
    /// The fraudulent batch response.
    pub response: ParpBatchResponse,
    /// The trusted headers of every block the response binds proofs to
    /// (the snapshot block `res.m_B` plus each inclusion item's
    /// containing block), ascending by height — the header set the
    /// on-chain module re-validates against the `BLOCKHASH` window.
    pub headers: Vec<Header>,
    /// What the client's checks concluded.
    pub verdict: FraudVerdict,
    /// Index of the first fraudulent item, or `None` when a batch-level
    /// condition (payment echo, stale snapshot, unverifiable multiproof)
    /// condemns the response as a whole.
    pub item: Option<usize>,
}

impl BatchFraudEvidence {
    /// Builds the `submitBatchFraudProof` module call, to be relayed
    /// through a witness full node (§IV-F), exactly as
    /// [`FraudEvidence::to_module_call`] does for single exchanges.
    pub fn to_module_call(&self, witness: Address) -> ModuleCall {
        ModuleCall::SubmitBatchFraudProof {
            request: self.request.encode(),
            response: self.response.encode(),
            witness,
            headers: self.headers.iter().map(Header::encode).collect(),
        }
    }
}

/// Outcome of processing a batched response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessBatchOutcome {
    /// Every item verified; payloads returned in call order with a
    /// per-item "was Merkle-proven" flag.
    Valid {
        /// The verified `R(γᵢ)` payloads.
        results: Vec<Vec<u8>>,
        /// Whether item `i` was backed by the state multiproof.
        proven: Vec<bool>,
    },
    /// The envelope cannot be trusted (no per-item judgement possible);
    /// the client should terminate the connection.
    Invalid(InvalidReason),
    /// At least one item is provably wrong: per-item classifications plus
    /// evidence for the on-chain fraud proof.
    Fraud {
        /// The §V-D verdict for every item, in call order.
        items: Vec<Classification>,
        /// Evidence supporting a fraud proof.
        evidence: Box<BatchFraudEvidence>,
    },
}

/// Outcome of processing a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessOutcome {
    /// Response accepted; payload returned.
    Valid {
        /// The verified `R(γ)` payload.
        result: Vec<u8>,
        /// The verified Merkle proof, if the call had one.
        proven: bool,
    },
    /// Response rejected without slashing grounds; the client should
    /// terminate the connection.
    Invalid(InvalidReason),
    /// Provable fraud; the evidence supports an on-chain proof.
    Fraud(Box<FraudEvidence>),
}

#[derive(Debug, Clone)]
struct PendingRequest {
    request: ParpRequest,
    request_height: u64,
}

#[derive(Debug, Clone)]
struct PendingBatch {
    request: ParpBatchRequest,
    request_height: u64,
}

/// A PARP light client.
///
/// Holds only block headers (never full blocks), a single payment channel,
/// and the key pair that pseudonymously identifies it.
#[derive(Debug, Clone)]
pub struct LightClient {
    key: KeyPair,
    price_per_call: U256,
    headers: BTreeMap<u64, Header>,
    hash_index: HashMap<H256, u64>,
    state: ClientState,
    channel: Option<ClientChannel>,
    pending: HashMap<H256, PendingRequest>,
    pending_batches: HashMap<H256, PendingBatch>,
    valid_responses: u64,
}

impl LightClient {
    /// Creates a client paying `price_per_call` wei per request.
    pub fn new(secret: SecretKey, price_per_call: U256) -> Self {
        LightClient {
            key: KeyPair::from_secret(secret),
            price_per_call,
            headers: BTreeMap::new(),
            hash_index: HashMap::new(),
            state: ClientState::Idle,
            channel: None,
            pending: HashMap::new(),
            pending_batches: HashMap::new(),
            valid_responses: 0,
        }
    }

    /// The client's (pseudonymous) address.
    pub fn address(&self) -> Address {
        self.key.address()
    }

    /// The client's secret key (for signing its on-chain transactions).
    pub fn secret(&self) -> &SecretKey {
        self.key.secret()
    }

    /// Current protocol state.
    pub fn state(&self) -> ClientState {
        self.state
    }

    /// The client's channel view, if connected.
    pub fn channel(&self) -> Option<&ClientChannel> {
        self.channel.as_ref()
    }

    /// Number of responses accepted as valid.
    pub fn valid_responses(&self) -> u64 {
        self.valid_responses
    }

    /// Ingests a block header from any source (headers are
    /// self-authenticating through their hashes; PARP assumes header
    /// availability, §IV-D).
    ///
    /// Returns `false` when the header conflicts with an already-stored
    /// header at the same height (which the client refuses to overwrite).
    pub fn sync_header(&mut self, header: Header) -> bool {
        if let Some(existing) = self.headers.get(&header.number) {
            return existing.hash() == header.hash();
        }
        self.hash_index.insert(header.hash(), header.number);
        self.headers.insert(header.number, header);
        true
    }

    /// Ingests many headers.
    pub fn sync_headers<I: IntoIterator<Item = Header>>(&mut self, headers: I) {
        for header in headers {
            self.sync_header(header);
        }
    }

    /// The latest synced header (the client's chain tip).
    pub fn tip(&self) -> Option<&Header> {
        self.headers.values().next_back()
    }

    /// Header lookup by height.
    pub fn header(&self, number: u64) -> Option<&Header> {
        self.headers.get(&number)
    }

    /// Number of headers held — the client's whole storage footprint.
    pub fn headers_len(&self) -> usize {
        self.headers.len()
    }

    /// Starts a handshake with a full node (Algorithm 1, `HANDSHAKE`).
    ///
    /// # Errors
    ///
    /// Fails when not [`ClientState::Idle`] or no headers are synced.
    pub fn start_handshake(&mut self, _full_node: Address) -> Result<Address, ClientError> {
        self.require_state(ClientState::Idle)?;
        if self.headers.is_empty() {
            return Err(ClientError::NoHeaders);
        }
        self.state = ClientState::Handshaking;
        Ok(self.address())
    }

    /// Validates an `HSCONFIRM` and produces the signed `OpenChannel`
    /// transaction (Algorithm 1 lines 10-16).
    ///
    /// # Errors
    ///
    /// Fails on state mismatch, an expired or mis-signed confirmation.
    pub fn accept_confirmation(
        &mut self,
        confirm: &HandshakeConfirm,
        budget: U256,
        nonce: u64,
    ) -> Result<SignedTransaction, ClientError> {
        self.require_state(ClientState::Handshaking)?;
        let now = self.tip().map(|h| h.timestamp).unwrap_or(0);
        if confirm.expiry < now {
            self.state = ClientState::Idle;
            return Err(ClientError::BadConfirmation("confirmation expired".into()));
        }
        let digest = parp_contracts::confirmation_digest(&self.address(), confirm.expiry);
        match recover_address(&digest, &confirm.signature) {
            Ok(addr) if addr == confirm.full_node => {}
            _ => {
                self.state = ClientState::Idle;
                return Err(ClientError::BadConfirmation(
                    "signature does not recover to the full node".into(),
                ));
            }
        }
        let call = ModuleCall::OpenChannel {
            full_node: confirm.full_node,
            expiry: confirm.expiry,
            confirmation_sig: confirm.signature,
        };
        let tx = Transaction {
            nonce,
            gas_price: U256::ZERO,
            gas_limit: MODULE_CALL_GAS_LIMIT,
            to: Some(call.target()),
            value: budget,
            data: call.encode(),
        }
        .sign(self.key.secret());
        self.channel = Some(ClientChannel {
            id: u64::MAX, // assigned on receipt
            full_node: confirm.full_node,
            budget,
            spent: U256::ZERO,
        });
        self.state = ClientState::Unbonded;
        Ok(tx)
    }

    /// Records the `OpenChannel` receipt: the channel id is known and the
    /// client becomes *Bonded* (Algorithm 1 lines 17-21).
    ///
    /// # Errors
    ///
    /// Fails when not [`ClientState::Unbonded`].
    pub fn channel_opened(&mut self, channel_id: u64) -> Result<(), ClientError> {
        self.require_state(ClientState::Unbonded)?;
        if let Some(channel) = &mut self.channel {
            channel.id = channel_id;
        }
        self.state = ClientState::Bonded;
        Ok(())
    }

    /// Builds the next signed request for `call`, bumping the cumulative
    /// payment by the agreed price (§IV-E step 3).
    ///
    /// # Errors
    ///
    /// Fails when not bonded, headers are missing, or the budget cannot
    /// cover the next payment.
    pub fn request(&mut self, call: RpcCall) -> Result<ParpRequest, ClientError> {
        self.require_state(ClientState::Bonded)?;
        let tip = self.tip().ok_or(ClientError::NoHeaders)?;
        let (tip_hash, tip_number) = (tip.hash(), tip.number);
        let channel = self.channel.as_ref().expect("bonded implies channel");
        let amount = channel.spent.saturating_add(self.price_per_call);
        if amount > channel.budget {
            return Err(ClientError::BudgetExhausted);
        }
        let request = ParpRequest::build(self.key.secret(), channel.id, tip_hash, amount, call);
        self.pending.insert(
            request.request_hash,
            PendingRequest {
                request: request.clone(),
                request_height: tip_number,
            },
        );
        Ok(request)
    }

    /// Builds the next signed **batch** request: one signature and one
    /// cumulative payment covering all of `calls`, bumping the committed
    /// amount by `price_per_call × N`.
    ///
    /// # Errors
    ///
    /// Fails when not bonded, headers are missing, the batch is empty or
    /// carries an unbatchable call (see [`RpcCall::batchable`]), or the
    /// budget cannot cover the batch.
    pub fn request_batch(&mut self, calls: Vec<RpcCall>) -> Result<ParpBatchRequest, ClientError> {
        self.require_state(ClientState::Bonded)?;
        if calls.is_empty() {
            return Err(ClientError::EmptyBatch);
        }
        if !calls.iter().all(RpcCall::batchable) {
            return Err(ClientError::UnbatchableCall);
        }
        let tip = self.tip().ok_or(ClientError::NoHeaders)?;
        let (tip_hash, tip_number) = (tip.hash(), tip.number);
        let channel = self.channel.as_ref().expect("bonded implies channel");
        let batch_price = self.price_per_call * U256::from(calls.len() as u64);
        let amount = channel.spent.saturating_add(batch_price);
        if amount > channel.budget {
            return Err(ClientError::BudgetExhausted);
        }
        let request =
            ParpBatchRequest::build(self.key.secret(), channel.id, tip_hash, amount, calls);
        self.pending_batches.insert(
            request.request_hash,
            PendingBatch {
                request: request.clone(),
                request_height: tip_number,
            },
        );
        Ok(request)
    }

    /// Verifies a batched response against its pending request and
    /// updates the channel ledger: the batch analogue of
    /// [`LightClient::process_response`], with per-item classification.
    ///
    /// One fraudulent item is enough to return
    /// [`ProcessBatchOutcome::Fraud`] — the node signed the whole
    /// response, so the evidence condemns it regardless of how many other
    /// items were served honestly.
    ///
    /// # Errors
    ///
    /// Fails when no pending batch matches the response.
    pub fn process_batch_response(
        &mut self,
        response: &ParpBatchResponse,
    ) -> Result<ProcessBatchOutcome, ClientError> {
        let pending = match self.pending_batches.remove(&response.request_hash) {
            Some(pending) => pending,
            // Transport-level pairing when the echo is corrupted but
            // exactly one batch is in flight (as with single requests).
            None if self.pending_batches.len() == 1 => {
                let key = *self.pending_batches.keys().next().expect("len checked");
                self.pending_batches.remove(&key).expect("key just read")
            }
            None => return Err(ClientError::UnknownResponse),
        };
        let channel = self.channel.as_ref().expect("pending implies channel");
        let classification = classify_batch_response(
            &pending.request,
            response,
            channel.full_node,
            pending.request_height,
            |n| self.headers.get(&n).cloned(),
        );
        // The node holds σ_a either way: count the payment committed
        // (defensively on invalid/fraudulent outcomes, as with singles).
        if let Some(channel) = &mut self.channel {
            channel.spent = channel.spent.max(pending.request.amount);
        }
        let first_fraud = classification.first_fraud();
        let all_valid = classification.all_valid();
        match classification {
            BatchClassification::Invalid(reason) => Ok(ProcessBatchOutcome::Invalid(reason)),
            BatchClassification::BatchFraud { verdict } => {
                let headers = self.evidence_headers(response);
                let items = vec![Classification::Fraudulent(verdict); pending.request.calls.len()];
                Ok(ProcessBatchOutcome::Fraud {
                    evidence: Box::new(BatchFraudEvidence {
                        request: pending.request,
                        response: response.clone(),
                        headers,
                        verdict,
                        item: None,
                    }),
                    items,
                })
            }
            BatchClassification::Items(items) => {
                if let Some((index, verdict)) = first_fraud {
                    let headers = self.evidence_headers(response);
                    Ok(ProcessBatchOutcome::Fraud {
                        evidence: Box::new(BatchFraudEvidence {
                            request: pending.request,
                            response: response.clone(),
                            headers,
                            verdict,
                            item: Some(index),
                        }),
                        items,
                    })
                } else {
                    // Items carry only Valid/Fraudulent verdicts; with no
                    // fraud found, the batch is fully valid.
                    debug_assert!(all_valid, "non-fraud items must all be valid");
                    self.valid_responses += items.len() as u64;
                    let proven = pending
                        .request
                        .calls
                        .iter()
                        .zip(response.item_proofs.iter())
                        .map(|(call, item_proof)| match call.proof_kind() {
                            parp_contracts::ProofKind::State => true,
                            // Inclusion items are proven unless the node
                            // answered "not found" (empty, unproven).
                            parp_contracts::ProofKind::Transaction
                            | parp_contracts::ProofKind::Receipt => !item_proof.is_empty(),
                            parp_contracts::ProofKind::None => false,
                        })
                        .collect();
                    Ok(ProcessBatchOutcome::Valid {
                        results: response.results.clone(),
                        proven,
                    })
                }
            }
        }
    }

    /// The trusted headers of every block `response` binds proofs to,
    /// ascending — the set a batch fraud proof submits on-chain.
    ///
    /// # Panics
    ///
    /// Panics when a referenced header is missing from the store; the
    /// classification that produced the fraud verdict already read every
    /// one of them.
    fn evidence_headers(&self, response: &ParpBatchResponse) -> Vec<Header> {
        response
            .referenced_blocks()
            .into_iter()
            .map(|number| {
                self.headers
                    .get(&number)
                    .cloned()
                    .expect("classification used this header")
            })
            .collect()
    }

    /// A liveness probe for the client's own channel (§V-C).
    ///
    /// # Errors
    ///
    /// Same conditions as [`LightClient::request`].
    pub fn liveness_probe(&mut self) -> Result<ParpRequest, ClientError> {
        let channel_id = self
            .channel
            .as_ref()
            .map(|c| c.id)
            .ok_or(ClientError::WrongState {
                expected: ClientState::Bonded,
                actual: self.state,
            })?;
        self.request(RpcCall::GetChannelStatus { channel_id })
    }

    /// Verifies a response against its pending request ((D) in Fig. 5) and
    /// updates the channel ledger.
    ///
    /// On a *valid* response the committed amount advances. On an
    /// *invalid* one the pending payment is rolled back (it was never
    /// acknowledged) and the caller should fail over to another node. On
    /// *fraud* the returned evidence supports an on-chain proof.
    ///
    /// # Errors
    ///
    /// Fails when no pending request matches the response.
    pub fn process_response(
        &mut self,
        response: &ParpResponse,
    ) -> Result<ProcessOutcome, ClientError> {
        // Pair by the echoed hash; when the echo is corrupted but exactly
        // one request is in flight, transport-level pairing still
        // identifies it (and the §V-D hash check will flag the response).
        let pending = match self.pending.remove(&response.request_hash) {
            Some(pending) => pending,
            None if self.pending.len() == 1 => {
                let key = *self.pending.keys().next().expect("len checked");
                self.pending.remove(&key).expect("key just read")
            }
            None => return Err(ClientError::UnknownResponse),
        };
        let channel = self.channel.as_ref().expect("pending implies channel");
        let classification = classify_response(
            &pending.request,
            response,
            channel.full_node,
            pending.request_height,
            |n| self.headers.get(&n).cloned(),
        );
        match classification {
            Classification::Valid => {
                let proven = !response.proof.is_empty();
                self.valid_responses += 1;
                if let Some(channel) = &mut self.channel {
                    channel.spent = channel.spent.max(pending.request.amount);
                }
                Ok(ProcessOutcome::Valid {
                    result: response.result.clone(),
                    proven,
                })
            }
            Classification::Invalid(reason) => {
                // Keep the pending payment un-committed; the node cannot
                // redeem it without returning a verifiable response, but
                // the client still counts it spent defensively (the node
                // holds σ_a). Terminate per §V-D.
                if let Some(channel) = &mut self.channel {
                    channel.spent = channel.spent.max(pending.request.amount);
                }
                Ok(ProcessOutcome::Invalid(reason))
            }
            Classification::Fraudulent(verdict) => {
                if let Some(channel) = &mut self.channel {
                    channel.spent = channel.spent.max(pending.request.amount);
                }
                let header = self
                    .headers
                    .get(&response.block_number)
                    .cloned()
                    .expect("classification used this header");
                Ok(ProcessOutcome::Fraud(Box::new(FraudEvidence {
                    request: pending.request,
                    response: response.clone(),
                    header,
                    verdict,
                })))
            }
        }
    }

    /// Interprets a liveness-probe result: `true` when the channel is
    /// still open according to the node.
    pub fn channel_reported_open(result: &[u8]) -> bool {
        result == [ChannelStatus::Open.as_byte()]
    }

    /// Builds the `closeChannel` call with the client's final state and
    /// transitions to *Unbonding* (§IV-E step 4).
    ///
    /// # Errors
    ///
    /// Fails when not bonded.
    pub fn close_channel_call(&mut self) -> Result<ModuleCall, ClientError> {
        self.require_state(ClientState::Bonded)?;
        let channel = self.channel.as_ref().expect("bonded implies channel");
        let amount = channel.spent;
        let payment_sig = sign(
            self.key.secret(),
            &parp_contracts::payment_digest(channel.id, &amount),
        );
        self.state = ClientState::Unbonding;
        Ok(ModuleCall::CloseChannel {
            channel_id: channel.id,
            amount,
            payment_sig,
        })
    }

    /// Builds the `confirmClosure` call for the client's channel.
    ///
    /// # Errors
    ///
    /// Fails when the client has no channel.
    pub fn confirm_closure_call(&self) -> Result<ModuleCall, ClientError> {
        let channel = self.channel.as_ref().ok_or(ClientError::WrongState {
            expected: ClientState::Unbonding,
            actual: self.state,
        })?;
        Ok(ModuleCall::ConfirmClosure {
            channel_id: channel.id,
        })
    }

    /// Records final settlement: back to *Idle* with no channel.
    pub fn channel_closed(&mut self) {
        self.state = ClientState::Idle;
        self.channel = None;
        self.pending.clear();
        self.pending_batches.clear();
    }

    /// Abandons the current connection (fail-over after an invalid
    /// response or detected fraud): the client returns to *Idle* and can
    /// immediately handshake with another node, since PARP needs no
    /// sign-up (§IV-A "enhanced availability").
    pub fn abandon_connection(&mut self) {
        self.state = ClientState::Idle;
        self.channel = None;
        self.pending.clear();
        self.pending_batches.clear();
    }

    fn require_state(&self, expected: ClientState) -> Result<(), ClientError> {
        if self.state == expected {
            Ok(())
        } else {
            Err(ClientError::WrongState {
                expected,
                actual: self.state,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::FullNode;
    use parp_primitives::H256;

    fn header_at(number: u64) -> Header {
        Header {
            parent_hash: H256::from_low_u64_be(number.wrapping_sub(1)),
            ommers_hash: parp_crypto::keccak256(&[0xc0]),
            beneficiary: Address::ZERO,
            state_root: parp_trie::empty_root(),
            transactions_root: parp_trie::empty_root(),
            receipts_root: parp_trie::empty_root(),
            difficulty: U256::ZERO,
            number,
            gas_limit: 30_000_000,
            gas_used: 0,
            timestamp: 1_700_000_000 + number * 12,
            extra_data: Vec::new(),
        }
    }

    fn bonded_client() -> (LightClient, FullNode) {
        let node = FullNode::new(SecretKey::from_seed(b"lc-test-node"), U256::from(10u64));
        let mut client = LightClient::new(SecretKey::from_seed(b"lc-test"), U256::from(10u64));
        client.sync_headers((0..5).map(header_at));
        client.start_handshake(node.address()).unwrap();
        let confirm = node.confirm_handshake(client.address(), 1_700_000_000);
        client
            .accept_confirmation(&confirm, U256::from(1_000u64), 0)
            .unwrap();
        client.channel_opened(7).unwrap();
        (client, node)
    }

    #[test]
    fn state_machine_follows_fig4() {
        let node = FullNode::new(SecretKey::from_seed(b"sm-node"), U256::ONE);
        let mut client = LightClient::new(SecretKey::from_seed(b"sm"), U256::ONE);
        assert_eq!(client.state(), ClientState::Idle);
        // No headers: cannot handshake.
        assert_eq!(
            client.start_handshake(node.address()),
            Err(ClientError::NoHeaders)
        );
        client.sync_header(header_at(0));
        client.start_handshake(node.address()).unwrap();
        assert_eq!(client.state(), ClientState::Handshaking);
        let confirm = node.confirm_handshake(client.address(), 1_700_000_000);
        client
            .accept_confirmation(&confirm, U256::from(100u64), 0)
            .unwrap();
        assert_eq!(client.state(), ClientState::Unbonded);
        client.channel_opened(0).unwrap();
        assert_eq!(client.state(), ClientState::Bonded);
        client.close_channel_call().unwrap();
        assert_eq!(client.state(), ClientState::Unbonding);
        client.channel_closed();
        assert_eq!(client.state(), ClientState::Idle);
        assert!(client.channel().is_none());
    }

    #[test]
    fn rejects_forged_confirmation() {
        let mut client = LightClient::new(SecretKey::from_seed(b"forge"), U256::ONE);
        client.sync_header(header_at(0));
        let node = FullNode::new(SecretKey::from_seed(b"honest"), U256::ONE);
        client.start_handshake(node.address()).unwrap();
        let mut confirm = node.confirm_handshake(client.address(), 1_700_000_000);
        confirm.full_node = Address::from_low_u64_be(0xbad); // not the signer
        assert!(matches!(
            client.accept_confirmation(&confirm, U256::from(100u64), 0),
            Err(ClientError::BadConfirmation(_))
        ));
        // Failed confirmation resets to Idle for a retry.
        assert_eq!(client.state(), ClientState::Idle);
    }

    #[test]
    fn rejects_expired_confirmation() {
        let mut client = LightClient::new(SecretKey::from_seed(b"expired"), U256::ONE);
        client.sync_header(header_at(1000)); // tip timestamp far in the future
        let node = FullNode::new(SecretKey::from_seed(b"slow"), U256::ONE);
        client.start_handshake(node.address()).unwrap();
        let confirm = node.confirm_handshake(client.address(), 0); // expiry = TTL only
        assert!(matches!(
            client.accept_confirmation(&confirm, U256::from(100u64), 0),
            Err(ClientError::BadConfirmation(_))
        ));
    }

    #[test]
    fn requests_accumulate_payments() {
        let (mut client, _) = bonded_client();
        let r1 = client.request(RpcCall::BlockNumber).unwrap();
        assert_eq!(r1.amount, U256::from(10u64));
        // Until a response is accepted, `spent` stays; a second request
        // re-offers the same cumulative amount (r1 was never acknowledged).
        let r2 = client.request(RpcCall::BlockNumber).unwrap();
        assert_eq!(r2.amount, U256::from(10u64));
        assert_eq!(r1.channel_id, 7);
    }

    #[test]
    fn budget_exhaustion() {
        let node = FullNode::new(SecretKey::from_seed(b"be-node"), U256::from(60u64));
        let mut client = LightClient::new(SecretKey::from_seed(b"be"), U256::from(60u64));
        client.sync_header(header_at(0));
        client.start_handshake(node.address()).unwrap();
        let confirm = node.confirm_handshake(client.address(), 1_700_000_000);
        client
            .accept_confirmation(&confirm, U256::from(100u64), 0)
            .unwrap();
        client.channel_opened(0).unwrap();
        let r = client.request(RpcCall::BlockNumber).unwrap();
        // Simulate acceptance to advance spent.
        client.channel.as_mut().unwrap().spent = r.amount;
        assert_eq!(
            client.request(RpcCall::BlockNumber),
            Err(ClientError::BudgetExhausted)
        );
    }

    #[test]
    fn header_conflicts_rejected() {
        let mut client = LightClient::new(SecretKey::from_seed(b"hdr"), U256::ONE);
        assert!(client.sync_header(header_at(3)));
        assert!(client.sync_header(header_at(3))); // same header is fine
        let mut conflicting = header_at(3);
        conflicting.gas_used = 999;
        assert!(!client.sync_header(conflicting));
        assert_eq!(client.headers_len(), 1);
        assert_eq!(client.tip().unwrap().number, 3);
    }

    #[test]
    fn unknown_response_rejected() {
        let (mut client, node) = bonded_client();
        let foreign_req = ParpRequest::build(
            &SecretKey::from_seed(b"other"),
            7,
            header_at(4).hash(),
            U256::from(10u64),
            RpcCall::BlockNumber,
        );
        let response = ParpResponse::build(
            node.secret(),
            &foreign_req,
            4,
            parp_rlp::encode_u64(4),
            Vec::new(),
        );
        assert_eq!(
            client.process_response(&response),
            Err(ClientError::UnknownResponse)
        );
    }

    #[test]
    fn valid_response_advances_ledger() {
        let (mut client, node) = bonded_client();
        let request = client.request(RpcCall::BlockNumber).unwrap();
        let response = ParpResponse::build(
            node.secret(),
            &request,
            4,
            parp_rlp::encode_u64(4),
            Vec::new(),
        );
        let outcome = client.process_response(&response).unwrap();
        assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
        assert_eq!(client.channel().unwrap().spent, U256::from(10u64));
        assert_eq!(client.valid_responses(), 1);
        // The next request pays more.
        let next = client.request(RpcCall::BlockNumber).unwrap();
        assert_eq!(next.amount, U256::from(20u64));
    }

    #[test]
    fn fraudulent_response_yields_evidence() {
        let (mut client, node) = bonded_client();
        let request = client.request(RpcCall::BlockNumber).unwrap();
        let mut response = ParpResponse::build(
            node.secret(),
            &request,
            4,
            parp_rlp::encode_u64(4),
            Vec::new(),
        );
        response.amount = U256::ZERO; // amount mismatch
        let digest = response.expected_hash();
        response.response_sig = parp_crypto::sign(node.secret(), &digest);
        let outcome = client.process_response(&response).unwrap();
        let ProcessOutcome::Fraud(evidence) = outcome else {
            panic!("expected fraud, got {outcome:?}");
        };
        assert_eq!(evidence.verdict, FraudVerdict::AmountMismatch);
        assert_eq!(evidence.header.number, 4);
        // Evidence converts into a module call for the witness.
        let call = evidence.to_module_call(Address::from_low_u64_be(0x33));
        assert!(matches!(call, ModuleCall::SubmitFraudProof { .. }));
    }

    #[test]
    fn liveness_probe_and_interpretation() {
        let (mut client, node) = bonded_client();
        let probe = client.liveness_probe().unwrap();
        assert!(matches!(
            probe.call,
            RpcCall::GetChannelStatus { channel_id: 7 }
        ));
        let response = ParpResponse::build(
            node.secret(),
            &probe,
            4,
            vec![ChannelStatus::Open.as_byte()],
            Vec::new(),
        );
        let outcome = client.process_response(&response).unwrap();
        let ProcessOutcome::Valid { result, .. } = outcome else {
            panic!("probe should be valid");
        };
        assert!(LightClient::channel_reported_open(&result));
        assert!(!LightClient::channel_reported_open(&[
            ChannelStatus::Closed.as_byte()
        ]));
    }

    #[test]
    fn abandon_allows_new_handshake() {
        let (mut client, _) = bonded_client();
        client.abandon_connection();
        assert_eq!(client.state(), ClientState::Idle);
        let other = FullNode::new(SecretKey::from_seed(b"failover"), U256::from(10u64));
        client.start_handshake(other.address()).unwrap();
        assert_eq!(client.state(), ClientState::Handshaking);
    }
}
