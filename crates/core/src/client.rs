//! The PARP light client: header store, handshake and channel state
//! machine (Fig. 4, Algorithm 1), request construction, response
//! verification, and fraud-evidence collection.

use crate::server::HandshakeConfirm;
use crate::verify::{
    classify_batch_response, classify_response, BatchClassification, Classification, InvalidReason,
};
use parp_chain::{Header, SignedTransaction, Transaction};
use parp_contracts::{
    ChannelStatus, FraudVerdict, ModuleCall, ParpBatchRequest, ParpBatchResponse, ParpRequest,
    ParpResponse, RpcCall, MODULE_CALL_GAS_LIMIT,
};
use parp_crypto::{recover_address, sign, KeyPair, SecretKey};
use parp_primitives::{Address, H256, U256};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

/// The light client's protocol state (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClientState {
    /// No connection.
    #[default]
    Idle,
    /// `HANDSHAKE` sent, waiting for `HSCONFIRM`.
    Handshaking,
    /// `OpenChannel` sent, waiting for the receipt.
    Unbonded,
    /// Channel open; requests flowing.
    Bonded,
    /// `CloseChannel` sent, waiting for settlement.
    Unbonding,
}

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The operation requires a different protocol state.
    WrongState {
        /// State the operation requires.
        expected: ClientState,
        /// State the client is in.
        actual: ClientState,
    },
    /// No synced headers yet — cannot pick `h_B`.
    NoHeaders,
    /// The handshake confirmation failed validation.
    BadConfirmation(String),
    /// The channel budget cannot cover another call.
    BudgetExhausted,
    /// No pending request matches this response.
    UnknownResponse,
    /// A batch must carry at least one call.
    EmptyBatch,
    /// A call cannot ride in a batch (see [`RpcCall::batchable`]).
    UnbatchableCall,
    /// The client has no session with this provider.
    UnknownProvider(Address),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::WrongState { expected, actual } => {
                write!(
                    f,
                    "operation requires {expected:?} state, client is {actual:?}"
                )
            }
            ClientError::NoHeaders => write!(f, "no synced block headers"),
            ClientError::BadConfirmation(e) => write!(f, "handshake confirmation rejected: {e}"),
            ClientError::BudgetExhausted => write!(f, "channel budget exhausted"),
            ClientError::UnknownResponse => write!(f, "response matches no pending request"),
            ClientError::EmptyBatch => write!(f, "batch must carry at least one call"),
            ClientError::UnbatchableCall => {
                write!(f, "call cannot be served from a single state snapshot")
            }
            ClientError::UnknownProvider(p) => {
                write!(f, "no session with provider {p}")
            }
        }
    }
}

impl Error for ClientError {}

/// The client's view of its payment channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientChannel {
    /// Channel identifier α.
    pub id: u64,
    /// The serving full node.
    pub full_node: Address,
    /// Budget locked on-chain.
    pub budget: U256,
    /// Cumulative amount committed so far (the local `a`).
    pub spent: U256,
}

/// Everything needed to prove fraud on-chain: the request, the signed
/// response, and the header the proof is judged against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FraudEvidence {
    /// The offending request.
    pub request: ParpRequest,
    /// The fraudulent response.
    pub response: ParpResponse,
    /// Header of block `res.m_B`.
    pub header: Header,
    /// What the client's checks concluded.
    pub verdict: FraudVerdict,
}

impl FraudEvidence {
    /// Builds the `submitFraudProof` module call, to be relayed through a
    /// witness full node (§IV-F).
    pub fn to_module_call(&self, witness: Address) -> ModuleCall {
        ModuleCall::SubmitFraudProof {
            request: self.request.encode(),
            response: self.response.encode(),
            witness,
            header: self.header.encode(),
        }
    }
}

/// Everything the client holds when a batched response is provably
/// wrong: the signed exchange, the header it was judged against, and
/// which item (if any single one) carried the fraud.
///
/// The node's one batch signature commits it to every item, so evidence
/// against a single item condemns the whole signed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchFraudEvidence {
    /// The offending batch request.
    pub request: ParpBatchRequest,
    /// The fraudulent batch response.
    pub response: ParpBatchResponse,
    /// The trusted headers of every block the response binds proofs to
    /// (the snapshot block `res.m_B` plus each inclusion item's
    /// containing block), ascending by height — the header set the
    /// on-chain module re-validates against the `BLOCKHASH` window.
    pub headers: Vec<Header>,
    /// What the client's checks concluded.
    pub verdict: FraudVerdict,
    /// Index of the first fraudulent item, or `None` when a batch-level
    /// condition (payment echo, stale snapshot, unverifiable multiproof)
    /// condemns the response as a whole.
    pub item: Option<usize>,
}

impl BatchFraudEvidence {
    /// Builds the `submitBatchFraudProof` module call, to be relayed
    /// through a witness full node (§IV-F), exactly as
    /// [`FraudEvidence::to_module_call`] does for single exchanges.
    pub fn to_module_call(&self, witness: Address) -> ModuleCall {
        ModuleCall::SubmitBatchFraudProof {
            request: self.request.encode(),
            response: self.response.encode(),
            witness,
            headers: self.headers.iter().map(Header::encode).collect(),
        }
    }
}

/// Outcome of processing a batched response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessBatchOutcome {
    /// Every item verified; payloads returned in call order with a
    /// per-item "was Merkle-proven" flag.
    Valid {
        /// The verified `R(γᵢ)` payloads.
        results: Vec<Vec<u8>>,
        /// Whether item `i` was backed by the state multiproof.
        proven: Vec<bool>,
    },
    /// The envelope cannot be trusted (no per-item judgement possible);
    /// the client should terminate the connection.
    Invalid(InvalidReason),
    /// At least one item is provably wrong: per-item classifications plus
    /// evidence for the on-chain fraud proof.
    Fraud {
        /// The §V-D verdict for every item, in call order.
        items: Vec<Classification>,
        /// Evidence supporting a fraud proof.
        evidence: Box<BatchFraudEvidence>,
    },
}

/// Outcome of processing a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessOutcome {
    /// Response accepted; payload returned.
    Valid {
        /// The verified `R(γ)` payload.
        result: Vec<u8>,
        /// The verified Merkle proof, if the call had one.
        proven: bool,
    },
    /// Response rejected without slashing grounds; the client should
    /// terminate the connection.
    Invalid(InvalidReason),
    /// Provable fraud; the evidence supports an on-chain proof.
    Fraud(Box<FraudEvidence>),
}

#[derive(Debug, Clone)]
struct PendingRequest {
    request: ParpRequest,
    request_height: u64,
}

#[derive(Debug, Clone)]
struct PendingBatch {
    request: ParpBatchRequest,
    request_height: u64,
}

/// One provider's connection state: the Fig. 4 state machine, the
/// payment channel, and the in-flight requests bound to that channel.
///
/// A multi-provider client (the gateway's orchestration layer) runs one
/// of these per full node it talks to; the single-channel API of the
/// paper operates on the *active* session.
#[derive(Debug, Clone, Default)]
struct ProviderSession {
    state: ClientState,
    channel: Option<ClientChannel>,
    pending: HashMap<H256, PendingRequest>,
    pending_batches: HashMap<H256, PendingBatch>,
}

/// A PARP light client.
///
/// Holds only block headers (never full blocks), one payment channel
/// **per provider** it is connected to, and the key pair that
/// pseudonymously identifies it. The original single-channel API
/// (`request`, `channel`, `state`, …) operates on the *active*
/// provider — the one most recently handshaken — so single-provider
/// code keeps working unchanged, while a gateway can hold several
/// bonded channels at once and route per provider with
/// [`LightClient::request_from`] / [`LightClient::request_batch_from`].
#[derive(Debug, Clone)]
pub struct LightClient {
    key: KeyPair,
    price_per_call: U256,
    headers: BTreeMap<u64, Header>,
    hash_index: HashMap<H256, u64>,
    sessions: HashMap<Address, ProviderSession>,
    /// The provider the single-channel API routes to.
    active: Option<Address>,
    /// Per-provider agreed prices (a marketplace advertises different
    /// rates); providers absent here pay the default `price_per_call`.
    prices: HashMap<Address, U256>,
    valid_responses: u64,
}

impl LightClient {
    /// Creates a client paying `price_per_call` wei per request.
    pub fn new(secret: SecretKey, price_per_call: U256) -> Self {
        LightClient {
            key: KeyPair::from_secret(secret),
            price_per_call,
            headers: BTreeMap::new(),
            hash_index: HashMap::new(),
            sessions: HashMap::new(),
            active: None,
            prices: HashMap::new(),
            valid_responses: 0,
        }
    }

    /// Records the price agreed with one provider (e.g. its advertised
    /// registry rate). Subsequent requests on that provider's channel
    /// pay this instead of the client's default `price_per_call`.
    pub fn set_price_for(&mut self, provider: Address, price: U256) {
        self.prices.insert(provider, price);
    }

    /// The per-call price paid on `provider`'s channel.
    pub fn price_for(&self, provider: &Address) -> U256 {
        self.prices
            .get(provider)
            .copied()
            .unwrap_or(self.price_per_call)
    }

    /// The client's (pseudonymous) address.
    pub fn address(&self) -> Address {
        self.key.address()
    }

    /// The client's secret key (for signing its on-chain transactions).
    pub fn secret(&self) -> &SecretKey {
        self.key.secret()
    }

    /// Current protocol state **with the active provider** (Idle when no
    /// provider is active).
    pub fn state(&self) -> ClientState {
        self.active_session()
            .map(|s| s.state)
            .unwrap_or(ClientState::Idle)
    }

    /// The active provider's channel view, if connected.
    pub fn channel(&self) -> Option<&ClientChannel> {
        self.active_session().and_then(|s| s.channel.as_ref())
    }

    /// The provider the single-channel API currently routes to.
    pub fn active_provider(&self) -> Option<Address> {
        self.active
    }

    /// Routes the single-channel API to `provider`.
    ///
    /// # Errors
    ///
    /// Fails when the client has no session with `provider`.
    pub fn set_active_provider(&mut self, provider: Address) -> Result<(), ClientError> {
        if !self.sessions.contains_key(&provider) {
            return Err(ClientError::UnknownProvider(provider));
        }
        self.active = Some(provider);
        Ok(())
    }

    /// Protocol state of the session with `provider` (Idle when none).
    pub fn state_with(&self, provider: &Address) -> ClientState {
        self.sessions
            .get(provider)
            .map(|s| s.state)
            .unwrap_or(ClientState::Idle)
    }

    /// The channel with `provider`, if one is open.
    pub fn channel_with(&self, provider: &Address) -> Option<&ClientChannel> {
        self.sessions.get(provider).and_then(|s| s.channel.as_ref())
    }

    /// Every provider the client is currently **bonded** to, in
    /// unspecified order.
    pub fn bonded_providers(&self) -> Vec<Address> {
        self.sessions
            .iter()
            .filter(|(_, s)| s.state == ClientState::Bonded)
            .map(|(a, _)| *a)
            .collect()
    }

    fn active_session(&self) -> Option<&ProviderSession> {
        self.active.and_then(|a| self.sessions.get(&a))
    }

    /// Number of responses accepted as valid.
    pub fn valid_responses(&self) -> u64 {
        self.valid_responses
    }

    /// Ingests a block header from any source (headers are
    /// self-authenticating through their hashes; PARP assumes header
    /// availability, §IV-D).
    ///
    /// Returns `false` when the header conflicts with an already-stored
    /// header at the same height (which the client refuses to overwrite).
    pub fn sync_header(&mut self, header: Header) -> bool {
        if let Some(existing) = self.headers.get(&header.number) {
            return existing.hash() == header.hash();
        }
        self.hash_index.insert(header.hash(), header.number);
        self.headers.insert(header.number, header);
        true
    }

    /// Ingests many headers.
    pub fn sync_headers<I: IntoIterator<Item = Header>>(&mut self, headers: I) {
        for header in headers {
            self.sync_header(header);
        }
    }

    /// The latest synced header (the client's chain tip).
    pub fn tip(&self) -> Option<&Header> {
        self.headers.values().next_back()
    }

    /// Header lookup by height.
    pub fn header(&self, number: u64) -> Option<&Header> {
        self.headers.get(&number)
    }

    /// Number of headers held — the client's whole storage footprint.
    pub fn headers_len(&self) -> usize {
        self.headers.len()
    }

    /// Starts a handshake with a full node (Algorithm 1, `HANDSHAKE`)
    /// and makes it the active provider.
    ///
    /// The session **with that provider** must be Idle; channels with
    /// other providers are untouched, so a multi-provider client can
    /// hold several bonded channels at once.
    ///
    /// # Errors
    ///
    /// Fails when the session with `full_node` is not
    /// [`ClientState::Idle`] or no headers are synced.
    pub fn start_handshake(&mut self, full_node: Address) -> Result<Address, ClientError> {
        let state = self.state_with(&full_node);
        if state != ClientState::Idle {
            return Err(ClientError::WrongState {
                expected: ClientState::Idle,
                actual: state,
            });
        }
        if self.headers.is_empty() {
            return Err(ClientError::NoHeaders);
        }
        let session = self.sessions.entry(full_node).or_default();
        session.state = ClientState::Handshaking;
        self.active = Some(full_node);
        Ok(self.address())
    }

    /// Validates an `HSCONFIRM` and produces the signed `OpenChannel`
    /// transaction (Algorithm 1 lines 10-16).
    ///
    /// # Errors
    ///
    /// Fails on state mismatch, an expired or mis-signed confirmation.
    pub fn accept_confirmation(
        &mut self,
        confirm: &HandshakeConfirm,
        budget: U256,
        nonce: u64,
    ) -> Result<SignedTransaction, ClientError> {
        let active = self.require_active(ClientState::Handshaking)?;
        let now = self.tip().map(|h| h.timestamp).unwrap_or(0);
        if confirm.expiry < now {
            self.reset_session(active);
            return Err(ClientError::BadConfirmation("confirmation expired".into()));
        }
        let digest = parp_contracts::confirmation_digest(&self.address(), confirm.expiry);
        match recover_address(&digest, &confirm.signature) {
            Ok(addr) if addr == confirm.full_node => {}
            _ => {
                self.reset_session(active);
                return Err(ClientError::BadConfirmation(
                    "signature does not recover to the full node".into(),
                ));
            }
        }
        let call = ModuleCall::OpenChannel {
            full_node: confirm.full_node,
            expiry: confirm.expiry,
            confirmation_sig: confirm.signature,
        };
        let tx = Transaction {
            nonce,
            gas_price: U256::ZERO,
            gas_limit: MODULE_CALL_GAS_LIMIT,
            to: Some(call.target()),
            value: budget,
            data: call.encode(),
        }
        .sign(self.key.secret());
        // The channel binds to the *confirming* node; re-key the session
        // if the handshake was started under a different address — but
        // never on top of a live session with the confirming node (that
        // would zero its committed spend and orphan its pending set).
        if active != confirm.full_node {
            if self.state_with(&confirm.full_node) != ClientState::Idle {
                self.reset_session(active);
                return Err(ClientError::BadConfirmation(
                    "confirming node already has an open session".into(),
                ));
            }
            self.sessions.remove(&active);
        }
        let session = self.sessions.entry(confirm.full_node).or_default();
        session.channel = Some(ClientChannel {
            id: u64::MAX, // assigned on receipt
            full_node: confirm.full_node,
            budget,
            spent: U256::ZERO,
        });
        session.state = ClientState::Unbonded;
        self.active = Some(confirm.full_node);
        Ok(tx)
    }

    /// Drops a failed session so the provider can be re-handshaken.
    fn reset_session(&mut self, provider: Address) {
        self.sessions.remove(&provider);
        if self.active == Some(provider) {
            self.active = None;
        }
    }

    /// Records the `OpenChannel` receipt: the channel id is known and the
    /// client becomes *Bonded* (Algorithm 1 lines 17-21).
    ///
    /// # Errors
    ///
    /// Fails when not [`ClientState::Unbonded`].
    pub fn channel_opened(&mut self, channel_id: u64) -> Result<(), ClientError> {
        let active = self.require_active(ClientState::Unbonded)?;
        let session = self.sessions.get_mut(&active).expect("active exists");
        if let Some(channel) = &mut session.channel {
            channel.id = channel_id;
        }
        session.state = ClientState::Bonded;
        Ok(())
    }

    /// Builds the next signed request for `call`, bumping the cumulative
    /// payment by the agreed price (§IV-E step 3).
    ///
    /// # Errors
    ///
    /// Fails when not bonded, headers are missing, or the budget cannot
    /// cover the next payment.
    pub fn request(&mut self, call: RpcCall) -> Result<ParpRequest, ClientError> {
        let active = self.require_active(ClientState::Bonded)?;
        self.request_from(active, call)
    }

    /// Builds the next signed request **on the channel with `provider`**
    /// — the per-provider entry point a multi-channel gateway routes
    /// through. Identical to [`LightClient::request`] when `provider`
    /// is the active one.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LightClient::request`], judged against the
    /// session with `provider`.
    pub fn request_from(
        &mut self,
        provider: Address,
        call: RpcCall,
    ) -> Result<ParpRequest, ClientError> {
        let state = self.state_with(&provider);
        if state != ClientState::Bonded {
            return Err(ClientError::WrongState {
                expected: ClientState::Bonded,
                actual: state,
            });
        }
        let tip = self.tip().ok_or(ClientError::NoHeaders)?;
        let (tip_hash, tip_number) = (tip.hash(), tip.number);
        let price = self.price_for(&provider);
        let secret = *self.key.secret();
        let session = self.sessions.get_mut(&provider).expect("bonded session");
        let channel = session.channel.as_ref().expect("bonded implies channel");
        let amount = channel.spent.saturating_add(price);
        if amount > channel.budget {
            return Err(ClientError::BudgetExhausted);
        }
        let request = ParpRequest::build(&secret, channel.id, tip_hash, amount, call);
        session.pending.insert(
            request.request_hash,
            PendingRequest {
                request: request.clone(),
                request_height: tip_number,
            },
        );
        Ok(request)
    }

    /// Builds the next signed **batch** request: one signature and one
    /// cumulative payment covering all of `calls`, bumping the committed
    /// amount by `price_per_call × N`.
    ///
    /// # Errors
    ///
    /// Fails when not bonded, headers are missing, the batch is empty or
    /// carries an unbatchable call (see [`RpcCall::batchable`]), or the
    /// budget cannot cover the batch.
    pub fn request_batch(&mut self, calls: Vec<RpcCall>) -> Result<ParpBatchRequest, ClientError> {
        let active = self.require_active(ClientState::Bonded)?;
        self.request_batch_from(active, calls)
    }

    /// Builds the next signed batch request **on the channel with
    /// `provider`** — the per-provider analogue of
    /// [`LightClient::request_batch`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`LightClient::request_batch`], judged against
    /// the session with `provider`.
    pub fn request_batch_from(
        &mut self,
        provider: Address,
        calls: Vec<RpcCall>,
    ) -> Result<ParpBatchRequest, ClientError> {
        let state = self.state_with(&provider);
        if state != ClientState::Bonded {
            return Err(ClientError::WrongState {
                expected: ClientState::Bonded,
                actual: state,
            });
        }
        if calls.is_empty() {
            return Err(ClientError::EmptyBatch);
        }
        if !calls.iter().all(RpcCall::batchable) {
            return Err(ClientError::UnbatchableCall);
        }
        let tip = self.tip().ok_or(ClientError::NoHeaders)?;
        let (tip_hash, tip_number) = (tip.hash(), tip.number);
        let price = self.price_for(&provider);
        let secret = *self.key.secret();
        let session = self.sessions.get_mut(&provider).expect("bonded session");
        let channel = session.channel.as_ref().expect("bonded implies channel");
        let batch_price = price * U256::from(calls.len() as u64);
        let amount = channel.spent.saturating_add(batch_price);
        if amount > channel.budget {
            return Err(ClientError::BudgetExhausted);
        }
        let request = ParpBatchRequest::build(&secret, channel.id, tip_hash, amount, calls);
        session.pending_batches.insert(
            request.request_hash,
            PendingBatch {
                request: request.clone(),
                request_height: tip_number,
            },
        );
        Ok(request)
    }

    /// Verifies a batched response against its pending request and
    /// updates the channel ledger: the batch analogue of
    /// [`LightClient::process_response`], with per-item classification.
    ///
    /// One fraudulent item is enough to return
    /// [`ProcessBatchOutcome::Fraud`] — the node signed the whole
    /// response, so the evidence condemns it regardless of how many other
    /// items were served honestly.
    ///
    /// # Errors
    ///
    /// Fails when no pending batch matches the response.
    pub fn process_batch_response(
        &mut self,
        response: &ParpBatchResponse,
    ) -> Result<ProcessBatchOutcome, ClientError> {
        self.process_batch_response_scoped(response, None)
    }

    /// [`LightClient::process_batch_response`] for a response that
    /// arrived over `provider`'s connection: the corrupted-echo pairing
    /// fallback is confined to that provider's in-flight batches, so a
    /// response can never be (mis)attributed to another provider's
    /// channel.
    ///
    /// # Errors
    ///
    /// Fails when no pending batch matches the response.
    pub fn process_batch_response_from(
        &mut self,
        provider: Address,
        response: &ParpBatchResponse,
    ) -> Result<ProcessBatchOutcome, ClientError> {
        self.process_batch_response_scoped(response, Some(provider))
    }

    fn process_batch_response_scoped(
        &mut self,
        response: &ParpBatchResponse,
        scope: Option<Address>,
    ) -> Result<ProcessBatchOutcome, ClientError> {
        let (provider, pending) = self
            .take_pending_batch(&response.request_hash, scope)
            .ok_or(ClientError::UnknownResponse)?;
        let session = self.sessions.get(&provider).expect("pending session");
        let channel = session.channel.as_ref().expect("pending implies channel");
        let full_node = channel.full_node;
        let classification = classify_batch_response(
            &pending.request,
            response,
            full_node,
            pending.request_height,
            |n| self.headers.get(&n).cloned(),
        );
        // The node holds σ_a either way: count the payment committed
        // (defensively on invalid/fraudulent outcomes, as with singles).
        self.commit_payment(provider, pending.request.amount);
        let first_fraud = classification.first_fraud();
        let all_valid = classification.all_valid();
        match classification {
            BatchClassification::Invalid(reason) => Ok(ProcessBatchOutcome::Invalid(reason)),
            BatchClassification::BatchFraud { verdict } => {
                let headers = self.evidence_headers(response);
                let items = vec![Classification::Fraudulent(verdict); pending.request.calls.len()];
                Ok(ProcessBatchOutcome::Fraud {
                    evidence: Box::new(BatchFraudEvidence {
                        request: pending.request,
                        response: response.clone(),
                        headers,
                        verdict,
                        item: None,
                    }),
                    items,
                })
            }
            BatchClassification::Items(items) => {
                if let Some((index, verdict)) = first_fraud {
                    let headers = self.evidence_headers(response);
                    Ok(ProcessBatchOutcome::Fraud {
                        evidence: Box::new(BatchFraudEvidence {
                            request: pending.request,
                            response: response.clone(),
                            headers,
                            verdict,
                            item: Some(index),
                        }),
                        items,
                    })
                } else {
                    // Items carry only Valid/Fraudulent verdicts; with no
                    // fraud found, the batch is fully valid.
                    debug_assert!(all_valid, "non-fraud items must all be valid");
                    self.valid_responses += items.len() as u64;
                    let proven = pending
                        .request
                        .calls
                        .iter()
                        .zip(response.item_proofs.iter())
                        .map(|(call, item_proof)| match call.proof_kind() {
                            parp_contracts::ProofKind::State => true,
                            // Inclusion items are proven unless the node
                            // answered "not found" (empty, unproven).
                            parp_contracts::ProofKind::Transaction
                            | parp_contracts::ProofKind::Receipt => !item_proof.is_empty(),
                            parp_contracts::ProofKind::None => false,
                        })
                        .collect();
                    Ok(ProcessBatchOutcome::Valid {
                        results: response.results.clone(),
                        proven,
                    })
                }
            }
        }
    }

    /// Removes the pending single request matching `hash` from whichever
    /// session holds it (the hash pairing is provider-agnostic: hashes
    /// are unforgeable). When the echoed hash matches nothing —
    /// a corrupted echo — falls back to transport-level pairing, but
    /// **only within one session**: the `scope` provider's when given
    /// (the connection the response arrived over), else the sole
    /// session when the client has exactly one (the original
    /// single-channel behaviour). The fallback never crosses sessions —
    /// a garbage response from one provider must not consume, and
    /// condemn, another provider's in-flight request.
    /// Drops a pending single-call entry for `provider` without
    /// processing any response — the simulator's hook for a request or
    /// response lost in transit (drop, crash, timeout). The channel's
    /// `spent` is untouched: it only advances when a response is
    /// processed, so a retried call re-presents the same cumulative
    /// amount and the provider is never paid for the lost exchange.
    pub fn forget_pending(&mut self, provider: Address, hash: &H256) {
        if let Some(session) = self.sessions.get_mut(&provider) {
            session.pending.remove(hash);
        }
    }

    /// Batch analogue of [`Self::forget_pending`].
    pub fn forget_pending_batch(&mut self, provider: Address, hash: &H256) {
        if let Some(session) = self.sessions.get_mut(&provider) {
            session.pending_batches.remove(hash);
        }
    }

    fn take_pending(
        &mut self,
        hash: &H256,
        scope: Option<Address>,
    ) -> Option<(Address, PendingRequest)> {
        for (provider, session) in self.sessions.iter_mut() {
            if let Some(pending) = session.pending.remove(hash) {
                return Some((*provider, pending));
            }
        }
        let (provider, session) = self.fallback_session(scope)?;
        if session.pending.len() == 1 {
            let key = *session.pending.keys().next().expect("len checked");
            let pending = session.pending.remove(&key).expect("key just read");
            return Some((provider, pending));
        }
        None
    }

    /// Batch analogue of [`LightClient::take_pending`].
    fn take_pending_batch(
        &mut self,
        hash: &H256,
        scope: Option<Address>,
    ) -> Option<(Address, PendingBatch)> {
        for (provider, session) in self.sessions.iter_mut() {
            if let Some(pending) = session.pending_batches.remove(hash) {
                return Some((*provider, pending));
            }
        }
        let (provider, session) = self.fallback_session(scope)?;
        if session.pending_batches.len() == 1 {
            let key = *session.pending_batches.keys().next().expect("len checked");
            let pending = session.pending_batches.remove(&key).expect("key just read");
            return Some((provider, pending));
        }
        None
    }

    /// The one session corrupted-echo pairing may fall back to: the
    /// scoped provider's, or the client's sole session when unscoped.
    fn fallback_session(
        &mut self,
        scope: Option<Address>,
    ) -> Option<(Address, &mut ProviderSession)> {
        match scope {
            Some(provider) => self
                .sessions
                .get_mut(&provider)
                .map(|session| (provider, session)),
            None if self.sessions.len() == 1 => self
                .sessions
                .iter_mut()
                .next()
                .map(|(provider, session)| (*provider, session)),
            None => None,
        }
    }

    /// Advances a session's committed spend to `amount` (never
    /// backwards: the channel ledger is monotone).
    fn commit_payment(&mut self, provider: Address, amount: U256) {
        if let Some(channel) = self
            .sessions
            .get_mut(&provider)
            .and_then(|s| s.channel.as_mut())
        {
            channel.spent = channel.spent.max(amount);
        }
    }

    /// The trusted headers of every block `response` binds proofs to,
    /// ascending — the set a batch fraud proof submits on-chain.
    ///
    /// # Panics
    ///
    /// Panics when a referenced header is missing from the store; the
    /// classification that produced the fraud verdict already read every
    /// one of them.
    fn evidence_headers(&self, response: &ParpBatchResponse) -> Vec<Header> {
        response
            .referenced_blocks()
            .into_iter()
            .map(|number| {
                self.headers
                    .get(&number)
                    .cloned()
                    .expect("classification used this header")
            })
            .collect()
    }

    /// A liveness probe for the client's own channel (§V-C).
    ///
    /// # Errors
    ///
    /// Same conditions as [`LightClient::request`].
    pub fn liveness_probe(&mut self) -> Result<ParpRequest, ClientError> {
        let channel_id = self
            .channel()
            .map(|c| c.id)
            .ok_or(ClientError::WrongState {
                expected: ClientState::Bonded,
                actual: self.state(),
            })?;
        self.request(RpcCall::GetChannelStatus { channel_id })
    }

    /// Verifies a response against its pending request ((D) in Fig. 5) and
    /// updates the channel ledger.
    ///
    /// On a *valid* response the committed amount advances. On an
    /// *invalid* one the pending payment is rolled back (it was never
    /// acknowledged) and the caller should fail over to another node. On
    /// *fraud* the returned evidence supports an on-chain proof.
    ///
    /// # Errors
    ///
    /// Fails when no pending request matches the response.
    pub fn process_response(
        &mut self,
        response: &ParpResponse,
    ) -> Result<ProcessOutcome, ClientError> {
        self.process_response_scoped(response, None)
    }

    /// [`LightClient::process_response`] for a response that arrived
    /// over `provider`'s connection: the corrupted-echo pairing
    /// fallback is confined to that provider's in-flight requests, so a
    /// response can never be (mis)attributed to another provider's
    /// channel.
    ///
    /// # Errors
    ///
    /// Fails when no pending request matches the response.
    pub fn process_response_from(
        &mut self,
        provider: Address,
        response: &ParpResponse,
    ) -> Result<ProcessOutcome, ClientError> {
        self.process_response_scoped(response, Some(provider))
    }

    /// Verifies many responses that arrived concurrently, one per
    /// provider — the gateway's quorum fan-in. Pairing and ledger
    /// updates stay sequential (they mutate the session map), but the
    /// §V-D classifications — a signature recovery plus a Merkle proof
    /// check each — are **independent pure functions** of the paired
    /// exchanges and the header store, so they fan out across scoped
    /// worker threads (the `parp-runtime` shard idiom, via
    /// [`parp_crypto::par_map`]). Outcomes come back in leg order.
    pub fn process_responses_from(
        &mut self,
        legs: &[(Address, ParpResponse)],
    ) -> Vec<Result<ProcessOutcome, ClientError>> {
        // Phase 1 (sequential, &mut self): pair each response with its
        // pending request, scoped to the connection it arrived over.
        let paired: Vec<Result<(Address, PendingRequest), ClientError>> = legs
            .iter()
            .map(|(provider, response)| {
                let (provider, pending) = self
                    .take_pending(&response.request_hash, Some(*provider))
                    .ok_or(ClientError::UnknownResponse)?;
                Ok((provider, pending))
            })
            .collect();
        // Phase 2 (parallel, &self): classify every paired exchange.
        let work: Vec<(Address, &PendingRequest, &ParpResponse)> = paired
            .iter()
            .zip(legs.iter())
            .filter_map(|(paired, (_, response))| {
                paired.as_ref().ok().map(|(provider, pending)| {
                    let full_node = self
                        .sessions
                        .get(provider)
                        .and_then(|s| s.channel.as_ref())
                        .expect("pending implies channel")
                        .full_node;
                    (full_node, pending, response)
                })
            })
            .collect();
        let mut classifications = parp_crypto::par_map(&work, |(full_node, pending, response)| {
            classify_response(
                &pending.request,
                response,
                *full_node,
                pending.request_height,
                |n| self.headers.get(&n).cloned(),
            )
        })
        .into_iter();
        // Phase 3 (sequential, &mut self): apply ledger updates and
        // build outcomes in leg order.
        paired
            .into_iter()
            .zip(legs.iter())
            .map(|(paired, (_, response))| {
                let (provider, pending) = paired?;
                let classification = classifications.next().expect("one per paired leg");
                Ok(self.apply_classification(provider, pending, response, classification))
            })
            .collect()
    }

    /// Applies a §V-D classification to the channel ledger and shapes
    /// the outcome — shared by the single-response path and the parallel
    /// quorum fan-in.
    fn apply_classification(
        &mut self,
        provider: Address,
        pending: PendingRequest,
        response: &ParpResponse,
        classification: Classification,
    ) -> ProcessOutcome {
        match classification {
            Classification::Valid => {
                let proven = !response.proof.is_empty();
                self.valid_responses += 1;
                self.commit_payment(provider, pending.request.amount);
                ProcessOutcome::Valid {
                    result: response.result.clone(),
                    proven,
                }
            }
            Classification::Invalid(reason) => {
                // Keep the pending payment un-committed; the node cannot
                // redeem it without returning a verifiable response, but
                // the client still counts it spent defensively (the node
                // holds σ_a). Terminate per §V-D.
                self.commit_payment(provider, pending.request.amount);
                ProcessOutcome::Invalid(reason)
            }
            Classification::Fraudulent(verdict) => {
                self.commit_payment(provider, pending.request.amount);
                let header = self
                    .headers
                    .get(&response.block_number)
                    .cloned()
                    .expect("classification used this header");
                ProcessOutcome::Fraud(Box::new(FraudEvidence {
                    request: pending.request,
                    response: response.clone(),
                    header,
                    verdict,
                }))
            }
        }
    }

    fn process_response_scoped(
        &mut self,
        response: &ParpResponse,
        scope: Option<Address>,
    ) -> Result<ProcessOutcome, ClientError> {
        // Pair by the echoed hash; when the echo is corrupted but exactly
        // one request is in flight on the response's connection,
        // transport-level pairing still identifies it (and the §V-D hash
        // check will flag the response).
        let (provider, pending) = self
            .take_pending(&response.request_hash, scope)
            .ok_or(ClientError::UnknownResponse)?;
        let full_node = self
            .sessions
            .get(&provider)
            .and_then(|s| s.channel.as_ref())
            .expect("pending implies channel")
            .full_node;
        let classification = classify_response(
            &pending.request,
            response,
            full_node,
            pending.request_height,
            |n| self.headers.get(&n).cloned(),
        );
        Ok(self.apply_classification(provider, pending, response, classification))
    }

    /// Interprets a liveness-probe result: `true` when the channel is
    /// still open according to the node.
    pub fn channel_reported_open(result: &[u8]) -> bool {
        result == [ChannelStatus::Open.as_byte()]
    }

    /// Builds the `closeChannel` call with the client's final state and
    /// transitions to *Unbonding* (§IV-E step 4).
    ///
    /// # Errors
    ///
    /// Fails when not bonded.
    pub fn close_channel_call(&mut self) -> Result<ModuleCall, ClientError> {
        let active = self.require_active(ClientState::Bonded)?;
        let session = self.sessions.get_mut(&active).expect("active exists");
        let channel = session.channel.as_ref().expect("bonded implies channel");
        let (channel_id, amount) = (channel.id, channel.spent);
        let payment_sig = sign(
            self.key.secret(),
            &parp_contracts::payment_digest(channel_id, &amount),
        );
        session.state = ClientState::Unbonding;
        Ok(ModuleCall::CloseChannel {
            channel_id,
            amount,
            payment_sig,
        })
    }

    /// Builds the `confirmClosure` call for the active channel.
    ///
    /// # Errors
    ///
    /// Fails when the client has no channel.
    pub fn confirm_closure_call(&self) -> Result<ModuleCall, ClientError> {
        let channel = self.channel().ok_or(ClientError::WrongState {
            expected: ClientState::Unbonding,
            actual: self.state(),
        })?;
        Ok(ModuleCall::ConfirmClosure {
            channel_id: channel.id,
        })
    }

    /// Records final settlement of the active channel: that session is
    /// dropped and the provider can be re-handshaken.
    pub fn channel_closed(&mut self) {
        if let Some(active) = self.active {
            self.reset_session(active);
        }
    }

    /// Abandons the active connection (fail-over after an invalid
    /// response or detected fraud): that session returns to *Idle* and
    /// the client can immediately handshake with another node, since
    /// PARP needs no sign-up (§IV-A "enhanced availability"). Channels
    /// with other providers are untouched.
    pub fn abandon_connection(&mut self) {
        if let Some(active) = self.active {
            self.reset_session(active);
        }
    }

    /// Abandons the session with one specific provider (the gateway's
    /// per-provider fail-over), leaving every other channel open.
    pub fn abandon_provider(&mut self, provider: Address) {
        self.reset_session(provider);
    }

    /// The active provider, checked to be in `expected` state.
    fn require_active(&self, expected: ClientState) -> Result<Address, ClientError> {
        let actual = self.state();
        if actual != expected {
            return Err(ClientError::WrongState { expected, actual });
        }
        Ok(self.active.expect("non-Idle state implies active"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::FullNode;
    use parp_primitives::H256;

    fn header_at(number: u64) -> Header {
        Header {
            parent_hash: H256::from_low_u64_be(number.wrapping_sub(1)),
            ommers_hash: parp_crypto::keccak256(&[0xc0]),
            beneficiary: Address::ZERO,
            state_root: parp_trie::empty_root(),
            transactions_root: parp_trie::empty_root(),
            receipts_root: parp_trie::empty_root(),
            difficulty: U256::ZERO,
            number,
            gas_limit: 30_000_000,
            gas_used: 0,
            timestamp: 1_700_000_000 + number * 12,
            extra_data: Vec::new(),
        }
    }

    fn bonded_client() -> (LightClient, FullNode) {
        let node = FullNode::new(SecretKey::from_seed(b"lc-test-node"), U256::from(10u64));
        let mut client = LightClient::new(SecretKey::from_seed(b"lc-test"), U256::from(10u64));
        client.sync_headers((0..5).map(header_at));
        client.start_handshake(node.address()).unwrap();
        let confirm = node.confirm_handshake(client.address(), 1_700_000_000);
        client
            .accept_confirmation(&confirm, U256::from(1_000u64), 0)
            .unwrap();
        client.channel_opened(7).unwrap();
        (client, node)
    }

    #[test]
    fn state_machine_follows_fig4() {
        let node = FullNode::new(SecretKey::from_seed(b"sm-node"), U256::ONE);
        let mut client = LightClient::new(SecretKey::from_seed(b"sm"), U256::ONE);
        assert_eq!(client.state(), ClientState::Idle);
        // No headers: cannot handshake.
        assert_eq!(
            client.start_handshake(node.address()),
            Err(ClientError::NoHeaders)
        );
        client.sync_header(header_at(0));
        client.start_handshake(node.address()).unwrap();
        assert_eq!(client.state(), ClientState::Handshaking);
        let confirm = node.confirm_handshake(client.address(), 1_700_000_000);
        client
            .accept_confirmation(&confirm, U256::from(100u64), 0)
            .unwrap();
        assert_eq!(client.state(), ClientState::Unbonded);
        client.channel_opened(0).unwrap();
        assert_eq!(client.state(), ClientState::Bonded);
        client.close_channel_call().unwrap();
        assert_eq!(client.state(), ClientState::Unbonding);
        client.channel_closed();
        assert_eq!(client.state(), ClientState::Idle);
        assert!(client.channel().is_none());
    }

    #[test]
    fn rejects_forged_confirmation() {
        let mut client = LightClient::new(SecretKey::from_seed(b"forge"), U256::ONE);
        client.sync_header(header_at(0));
        let node = FullNode::new(SecretKey::from_seed(b"honest"), U256::ONE);
        client.start_handshake(node.address()).unwrap();
        let mut confirm = node.confirm_handshake(client.address(), 1_700_000_000);
        confirm.full_node = Address::from_low_u64_be(0xbad); // not the signer
        assert!(matches!(
            client.accept_confirmation(&confirm, U256::from(100u64), 0),
            Err(ClientError::BadConfirmation(_))
        ));
        // Failed confirmation resets to Idle for a retry.
        assert_eq!(client.state(), ClientState::Idle);
    }

    #[test]
    fn rejects_expired_confirmation() {
        let mut client = LightClient::new(SecretKey::from_seed(b"expired"), U256::ONE);
        client.sync_header(header_at(1000)); // tip timestamp far in the future
        let node = FullNode::new(SecretKey::from_seed(b"slow"), U256::ONE);
        client.start_handshake(node.address()).unwrap();
        let confirm = node.confirm_handshake(client.address(), 0); // expiry = TTL only
        assert!(matches!(
            client.accept_confirmation(&confirm, U256::from(100u64), 0),
            Err(ClientError::BadConfirmation(_))
        ));
    }

    #[test]
    fn requests_accumulate_payments() {
        let (mut client, _) = bonded_client();
        let r1 = client.request(RpcCall::BlockNumber).unwrap();
        assert_eq!(r1.amount, U256::from(10u64));
        // Until a response is accepted, `spent` stays; a second request
        // re-offers the same cumulative amount (r1 was never acknowledged).
        let r2 = client.request(RpcCall::BlockNumber).unwrap();
        assert_eq!(r2.amount, U256::from(10u64));
        assert_eq!(r1.channel_id, 7);
    }

    #[test]
    fn budget_exhaustion() {
        let node = FullNode::new(SecretKey::from_seed(b"be-node"), U256::from(60u64));
        let mut client = LightClient::new(SecretKey::from_seed(b"be"), U256::from(60u64));
        client.sync_header(header_at(0));
        client.start_handshake(node.address()).unwrap();
        let confirm = node.confirm_handshake(client.address(), 1_700_000_000);
        client
            .accept_confirmation(&confirm, U256::from(100u64), 0)
            .unwrap();
        client.channel_opened(0).unwrap();
        let r = client.request(RpcCall::BlockNumber).unwrap();
        // Simulate acceptance to advance spent.
        client.commit_payment(node.address(), r.amount);
        assert_eq!(
            client.request(RpcCall::BlockNumber),
            Err(ClientError::BudgetExhausted)
        );
    }

    #[test]
    fn header_conflicts_rejected() {
        let mut client = LightClient::new(SecretKey::from_seed(b"hdr"), U256::ONE);
        assert!(client.sync_header(header_at(3)));
        assert!(client.sync_header(header_at(3))); // same header is fine
        let mut conflicting = header_at(3);
        conflicting.gas_used = 999;
        assert!(!client.sync_header(conflicting));
        assert_eq!(client.headers_len(), 1);
        assert_eq!(client.tip().unwrap().number, 3);
    }

    #[test]
    fn unknown_response_rejected() {
        let (mut client, node) = bonded_client();
        let foreign_req = ParpRequest::build(
            &SecretKey::from_seed(b"other"),
            7,
            header_at(4).hash(),
            U256::from(10u64),
            RpcCall::BlockNumber,
        );
        let response = ParpResponse::build(
            node.secret(),
            &foreign_req,
            4,
            parp_rlp::encode_u64(4),
            Vec::new(),
        );
        assert_eq!(
            client.process_response(&response),
            Err(ClientError::UnknownResponse)
        );
    }

    #[test]
    fn valid_response_advances_ledger() {
        let (mut client, node) = bonded_client();
        let request = client.request(RpcCall::BlockNumber).unwrap();
        let response = ParpResponse::build(
            node.secret(),
            &request,
            4,
            parp_rlp::encode_u64(4),
            Vec::new(),
        );
        let outcome = client.process_response(&response).unwrap();
        assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
        assert_eq!(client.channel().unwrap().spent, U256::from(10u64));
        assert_eq!(client.valid_responses(), 1);
        // The next request pays more.
        let next = client.request(RpcCall::BlockNumber).unwrap();
        assert_eq!(next.amount, U256::from(20u64));
    }

    #[test]
    fn fraudulent_response_yields_evidence() {
        let (mut client, node) = bonded_client();
        let request = client.request(RpcCall::BlockNumber).unwrap();
        let mut response = ParpResponse::build(
            node.secret(),
            &request,
            4,
            parp_rlp::encode_u64(4),
            Vec::new(),
        );
        response.amount = U256::ZERO; // amount mismatch
        let digest = response.expected_hash();
        response.response_sig = parp_crypto::sign(node.secret(), &digest);
        let outcome = client.process_response(&response).unwrap();
        let ProcessOutcome::Fraud(evidence) = outcome else {
            panic!("expected fraud, got {outcome:?}");
        };
        assert_eq!(evidence.verdict, FraudVerdict::AmountMismatch);
        assert_eq!(evidence.header.number, 4);
        // Evidence converts into a module call for the witness.
        let call = evidence.to_module_call(Address::from_low_u64_be(0x33));
        assert!(matches!(call, ModuleCall::SubmitFraudProof { .. }));
    }

    #[test]
    fn liveness_probe_and_interpretation() {
        let (mut client, node) = bonded_client();
        let probe = client.liveness_probe().unwrap();
        assert!(matches!(
            probe.call,
            RpcCall::GetChannelStatus { channel_id: 7 }
        ));
        let response = ParpResponse::build(
            node.secret(),
            &probe,
            4,
            vec![ChannelStatus::Open.as_byte()],
            Vec::new(),
        );
        let outcome = client.process_response(&response).unwrap();
        let ProcessOutcome::Valid { result, .. } = outcome else {
            panic!("probe should be valid");
        };
        assert!(LightClient::channel_reported_open(&result));
        assert!(!LightClient::channel_reported_open(&[
            ChannelStatus::Closed.as_byte()
        ]));
    }

    #[test]
    fn concurrent_channels_to_two_providers() {
        let node_a = FullNode::new(SecretKey::from_seed(b"multi-a"), U256::from(10u64));
        let node_b = FullNode::new(SecretKey::from_seed(b"multi-b"), U256::from(10u64));
        let mut client = LightClient::new(SecretKey::from_seed(b"multi-client"), U256::from(10u64));
        client.sync_headers((0..5).map(header_at));
        for (node, id) in [(&node_a, 1u64), (&node_b, 2u64)] {
            client.start_handshake(node.address()).unwrap();
            let confirm = node.confirm_handshake(client.address(), 1_700_000_000);
            client
                .accept_confirmation(&confirm, U256::from(1_000u64), 0)
                .unwrap();
            client.channel_opened(id).unwrap();
        }
        // Both sessions bonded, each with its own channel.
        assert_eq!(client.state_with(&node_a.address()), ClientState::Bonded);
        assert_eq!(client.state_with(&node_b.address()), ClientState::Bonded);
        assert_eq!(client.channel_with(&node_a.address()).unwrap().id, 1);
        assert_eq!(client.channel_with(&node_b.address()).unwrap().id, 2);
        assert_eq!(client.bonded_providers().len(), 2);
        // Per-provider requests pay on their own channels and pair back
        // to them even when responses interleave.
        let req_a = client
            .request_from(node_a.address(), RpcCall::BlockNumber)
            .unwrap();
        let req_b = client
            .request_from(node_b.address(), RpcCall::BlockNumber)
            .unwrap();
        assert_eq!(req_a.channel_id, 1);
        assert_eq!(req_b.channel_id, 2);
        let res_b = ParpResponse::build(
            node_b.secret(),
            &req_b,
            4,
            parp_rlp::encode_u64(4),
            Vec::new(),
        );
        let res_a = ParpResponse::build(
            node_a.secret(),
            &req_a,
            4,
            parp_rlp::encode_u64(4),
            Vec::new(),
        );
        assert!(matches!(
            client.process_response(&res_b).unwrap(),
            ProcessOutcome::Valid { .. }
        ));
        assert!(matches!(
            client.process_response(&res_a).unwrap(),
            ProcessOutcome::Valid { .. }
        ));
        assert_eq!(
            client.channel_with(&node_a.address()).unwrap().spent,
            U256::from(10u64)
        );
        assert_eq!(
            client.channel_with(&node_b.address()).unwrap().spent,
            U256::from(10u64)
        );
        // Abandoning one provider leaves the other bonded.
        client.abandon_provider(node_a.address());
        assert_eq!(client.state_with(&node_a.address()), ClientState::Idle);
        assert_eq!(client.state_with(&node_b.address()), ClientState::Bonded);
    }

    #[test]
    fn corrupted_echo_pairing_never_crosses_sessions() {
        let node_a = FullNode::new(SecretKey::from_seed(b"scope-a"), U256::from(10u64));
        let node_b = FullNode::new(SecretKey::from_seed(b"scope-b"), U256::from(10u64));
        let mut client = LightClient::new(SecretKey::from_seed(b"scope-client"), U256::from(10u64));
        client.sync_headers((0..5).map(header_at));
        for (node, id) in [(&node_a, 1u64), (&node_b, 2u64)] {
            client.start_handshake(node.address()).unwrap();
            let confirm = node.confirm_handshake(client.address(), 1_700_000_000);
            client
                .accept_confirmation(&confirm, U256::from(1_000u64), 0)
                .unwrap();
            client.channel_opened(id).unwrap();
        }
        // Exactly one request in flight, on A's channel.
        let req_a = client
            .request_from(node_a.address(), RpcCall::BlockNumber)
            .unwrap();
        // A response with a corrupted (unmatchable) echo arrives.
        let mut garbage = ParpResponse::build(
            node_b.secret(),
            &req_a,
            4,
            parp_rlp::encode_u64(4),
            Vec::new(),
        );
        garbage.request_hash = parp_crypto::keccak256(b"corrupted echo");
        // Unscoped (two sessions): no fallback, the response is rejected
        // rather than misattributed to A's channel.
        assert_eq!(
            client.process_response(&garbage),
            Err(ClientError::UnknownResponse)
        );
        // Scoped to B's connection: B has nothing in flight — rejected.
        assert_eq!(
            client.process_response_from(node_b.address(), &garbage),
            Err(ClientError::UnknownResponse)
        );
        // A's pending request is still alive and pairs with the honest
        // response when it arrives.
        let honest = ParpResponse::build(
            node_a.secret(),
            &req_a,
            4,
            parp_rlp::encode_u64(4),
            Vec::new(),
        );
        assert!(matches!(
            client
                .process_response_from(node_a.address(), &honest)
                .unwrap(),
            ProcessOutcome::Valid { .. }
        ));
    }

    #[test]
    fn confirmation_cannot_clobber_a_bonded_session() {
        let node_a = FullNode::new(SecretKey::from_seed(b"clobber-a"), U256::from(10u64));
        let node_b = FullNode::new(SecretKey::from_seed(b"clobber-b"), U256::from(10u64));
        let mut client =
            LightClient::new(SecretKey::from_seed(b"clobber-client"), U256::from(10u64));
        client.sync_headers((0..5).map(header_at));
        // Bond to B and advance its committed spend.
        client.start_handshake(node_b.address()).unwrap();
        let confirm_b = node_b.confirm_handshake(client.address(), 1_700_000_000);
        client
            .accept_confirmation(&confirm_b, U256::from(1_000u64), 0)
            .unwrap();
        client.channel_opened(2).unwrap();
        let req = client
            .request_from(node_b.address(), RpcCall::BlockNumber)
            .unwrap();
        let res = ParpResponse::build(
            node_b.secret(),
            &req,
            4,
            parp_rlp::encode_u64(4),
            Vec::new(),
        );
        client.process_response(&res).unwrap();
        let spent_before = client.channel_with(&node_b.address()).unwrap().spent;
        assert!(spent_before > U256::ZERO);
        // Handshake with A, but a (colluding/replayed) confirmation from
        // B arrives: accepting it must not reset B's live channel.
        client.start_handshake(node_a.address()).unwrap();
        let replayed = node_b.confirm_handshake(client.address(), 1_700_000_000);
        assert!(matches!(
            client.accept_confirmation(&replayed, U256::from(1_000u64), 1),
            Err(ClientError::BadConfirmation(_))
        ));
        assert_eq!(client.state_with(&node_b.address()), ClientState::Bonded);
        assert_eq!(
            client.channel_with(&node_b.address()).unwrap().spent,
            spent_before,
            "B's committed spend survives"
        );
    }

    #[test]
    fn abandon_allows_new_handshake() {
        let (mut client, _) = bonded_client();
        client.abandon_connection();
        assert_eq!(client.state(), ClientState::Idle);
        let other = FullNode::new(SecretKey::from_seed(b"failover"), U256::from(10u64));
        client.start_handshake(other.address()).unwrap();
        assert_eq!(client.state(), ClientState::Handshaking);
    }
}
