//! Minimal JSON string emission shared by the exporters. The crate is
//! zero-dependency, so the few JSON documents it produces (metrics
//! snapshots, Chrome trace events) are written by hand through these
//! helpers.

/// Append `s` to `out` as a JSON string literal (with quotes),
/// escaping the characters RFC 8259 requires.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
