//! Request-lifecycle tracing on the simulated clock.
//!
//! The simulator advances a deterministic microsecond clock
//! (`Network::now_us`); the tracer stamps spans and instants with that
//! clock so a captured trace lays every exchange out on the same
//! timeline the latency figures are computed on. Export is Chrome
//! trace-event JSON (the `{"traceEvents":[...]}` object form): drop
//! the file on `ui.perfetto.dev` (or `chrome://tracing`) and each
//! provider renders as a named track with sign → flight → serve
//! (verify / multiproof / respond) → flight → classify per exchange,
//! and fraud → slash → re-select → replay instants where a failover
//! happened.
//!
//! The tracer starts *disabled*: recording against a disabled tracer
//! is one relaxed atomic load and nothing else, which is what keeps
//! the instrumented-but-idle serve path inside the overhead budget the
//! `telemetry_overhead` bench asserts. Event storage is bounded
//! ([`Tracer::MAX_EVENTS`]); past the cap events are counted as
//! dropped rather than accumulated, preserving the crate's
//! fixed-memory discipline.

use crate::json::push_json_string;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Chrome trace-event phase of one [`TraceEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePhase {
    /// A complete span (`"ph":"X"`): has `ts` and `dur`.
    Complete,
    /// An instant event (`"ph":"i"`, thread scope).
    Instant,
    /// Metadata (`"ph":"M"`), e.g. `thread_name`.
    Metadata,
}

/// One argument value attached to an event's `args` object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// String.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One recorded trace event (Chrome trace-event model).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Event name (span or instant label).
    pub name: String,
    /// Category, used by trace viewers for filtering (e.g. `net`,
    /// `serve`, `gateway`).
    pub cat: String,
    /// Phase: complete span, instant, or metadata.
    pub ph: TracePhase,
    /// Start timestamp in simulated microseconds.
    pub ts_us: u64,
    /// Duration in simulated microseconds (complete spans only).
    pub dur_us: u64,
    /// Track id — the simulator uses one per provider/actor.
    pub tid: u32,
    /// Key/value arguments shown in the viewer's detail pane.
    pub args: Vec<(String, ArgValue)>,
}

#[derive(Debug, Default)]
struct TracerInner {
    enabled: AtomicBool,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

/// Sim-clock span/event recorder. Cheap to clone (shared state).
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// Hard cap on retained events; recording past it increments the
    /// dropped counter instead of growing memory.
    pub const MAX_EVENTS: usize = 1 << 20;

    /// New tracer, disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether recording is live.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable recording. Disabled recording is a single
    /// atomic load per call site.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    fn push(&self, ev: TraceEvent) {
        let mut events = self.inner.events.lock().unwrap();
        if events.len() >= Self::MAX_EVENTS {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            events.push(ev);
        }
    }

    /// Record a complete span `[ts_us, ts_us + dur_us)` on track
    /// `tid`. No-op while disabled.
    pub fn span(
        &self,
        name: &str,
        cat: &str,
        ts_us: u64,
        dur_us: u64,
        tid: u32,
        args: Vec<(String, ArgValue)>,
    ) {
        if !self.enabled() {
            return;
        }
        self.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: TracePhase::Complete,
            ts_us,
            dur_us,
            tid,
            args,
        });
    }

    /// Record an instant event at `ts_us` on track `tid`. No-op while
    /// disabled.
    pub fn instant(
        &self,
        name: &str,
        cat: &str,
        ts_us: u64,
        tid: u32,
        args: Vec<(String, ArgValue)>,
    ) {
        if !self.enabled() {
            return;
        }
        self.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: TracePhase::Instant,
            ts_us,
            dur_us: 0,
            tid,
            args,
        });
    }

    /// Name track `tid` in the viewer (emits a `thread_name` metadata
    /// event). Recorded even while disabled — metadata is bounded by
    /// actor count, and a trace enabled mid-run still needs its track
    /// names.
    pub fn name_track(&self, tid: u32, name: &str) {
        self.push(TraceEvent {
            name: "thread_name".to_string(),
            cat: String::new(),
            ph: TracePhase::Metadata,
            ts_us: 0,
            dur_us: 0,
            tid,
            args: vec![("name".to_string(), ArgValue::Str(name.to_string()))],
        });
    }

    /// Copy of all retained events, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().unwrap().clone()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.events.lock().unwrap().len()
    }

    /// Whether no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events rejected by the [`Tracer::MAX_EVENTS`] cap.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Drop all retained events (the dropped counter is kept).
    pub fn clear(&self) {
        self.inner.events.lock().unwrap().clear();
    }

    /// Export every retained event as Chrome trace-event JSON
    /// (object form, `ts`/`dur` in microseconds as the format
    /// specifies). Loadable directly in Perfetto.
    pub fn export_chrome_json(&self) -> String {
        let events = self.inner.events.lock().unwrap();
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, &e.name);
            if !e.cat.is_empty() {
                out.push_str(",\"cat\":");
                push_json_string(&mut out, &e.cat);
            }
            let ph = match e.ph {
                TracePhase::Complete => "X",
                TracePhase::Instant => "i",
                TracePhase::Metadata => "M",
            };
            out.push_str(&format!(",\"ph\":\"{ph}\""));
            if e.ph == TracePhase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(&format!(",\"ts\":{},\"pid\":1,\"tid\":{}", e.ts_us, e.tid));
            if e.ph == TracePhase::Complete {
                out.push_str(&format!(",\"dur\":{}", e.dur_us));
            }
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in e.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    push_json_string(&mut out, k);
                    out.push(':');
                    match v {
                        ArgValue::U64(n) => out.push_str(&n.to_string()),
                        ArgValue::I64(n) => out.push_str(&n.to_string()),
                        ArgValue::Str(s) => push_json_string(&mut out, s),
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.span("x", "test", 0, 10, 1, vec![]);
        t.instant("y", "test", 5, 1, vec![]);
        assert!(t.is_empty());
    }

    #[test]
    fn chrome_export_shape() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.name_track(3, "provider 0xabc");
        t.span(
            "serve",
            "net",
            100,
            40,
            3,
            vec![("calls".to_string(), ArgValue::U64(64))],
        );
        t.instant(
            "classify",
            "net",
            140,
            3,
            vec![("verdict".to_string(), ArgValue::Str("valid".into()))],
        );
        let json = t.export_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\",\"ts\":100,\"pid\":1,\"tid\":3,\"dur\":40"));
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\",\"ts\":140"));
        assert!(json.contains("\"args\":{\"calls\":64}"));
        assert!(json.contains("\"verdict\":\"valid\""));
        assert!(json.ends_with("]}"));
        assert_eq!(t.events().len(), 3);
        t.clear();
        assert!(t.is_empty());
    }
}
