//! `parp-telemetry`: the observability substrate for the PARP
//! workspace.
//!
//! Six PRs in, the instrumentation had grown ad-hoc: `SnapshotCache`
//! kept private hit/miss counters, `AdmissionController` had its own
//! stats struct, and both `ProviderAggregate` and the gateway's
//! `Reputation` retained *every* latency sample in an unbounded
//! `Vec<u64>` that was fully re-sorted on each quantile query — a
//! memory and CPU wall for population-scale simulation. This crate
//! replaces all of that with one zero-dependency substrate:
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomic metrics behind
//!   cheap-clone `Arc` handles, so a hot loop increments without
//!   synchronisation beyond a relaxed atomic add.
//! * [`Histogram`] — a fixed-memory log-linear (HdrHistogram-style)
//!   latency histogram: ~2 significant digits, documented one-sided
//!   relative error ≤ 2⁻⁶ (1.5625%), O(buckets) quantiles, and a
//!   footprint that never grows with sample count.
//! * [`Registry`] — a labeled metric registry with a point-in-time
//!   [`MetricsSnapshot`] exportable
//!   as JSON or Prometheus text exposition.
//! * [`Tracer`] — request-lifecycle spans and instants stamped with
//!   the *simulated* clock, exportable as Chrome trace-event JSON that
//!   loads directly in Perfetto (`ui.perfetto.dev`).
//!
//! [`Telemetry`] bundles a registry and tracer into one cheap-clone
//! hub that `Network`, `Runtime` and `Gateway` all share, and
//! [`StageRecorder`] is the Arc-of-atomics scratch a `FullNode` uses
//! to report per-stage serve timings (crypto verify / multiproof /
//! response sign) without widening any protocol API.
//!
//! Metric naming convention: `parp_<subsystem>_<name>_<unit>`, e.g.
//! `parp_runtime_snapshot_cache_hits_total` or
//! `parp_net_exchange_latency_us`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod histogram;
mod json;
pub mod metrics;
pub mod registry;
pub mod time;
pub mod trace;

pub use histogram::{Histogram, BUCKETS, RELATIVE_ERROR};
pub use metrics::{Counter, Gauge};
pub use registry::{HistogramSnapshot, MetricValue, MetricsSnapshot, Registry};
pub use time::{TimeSource, TimeStamp};
pub use trace::{ArgValue, TraceEvent, TracePhase, Tracer};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One observability hub: a metric [`Registry`] plus a sim-clock
/// [`Tracer`]. Cheap to clone — all clones share the same underlying
/// state, so the network, runtime and gateway can each hold a handle.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    /// Labeled metric registry (counters, gauges, histograms).
    pub registry: Registry,
    /// Request-lifecycle tracer (disabled until
    /// [`Tracer::set_enabled`] is called — recording a span on a
    /// disabled tracer is a no-op, which is what the overhead bench
    /// measures against).
    pub tracer: Tracer,
}

impl Telemetry {
    /// New hub with tracing disabled (metrics are always live).
    pub fn new() -> Self {
        Self::default()
    }

    /// New hub with tracing already enabled.
    pub fn with_tracing() -> Self {
        let t = Self::default();
        t.tracer.set_enabled(true);
        t
    }
}

/// Per-stage serve timings, shared as an `Arc` of atomics.
///
/// A `FullNode` (in `parp-core`) carries an optional recorder and
/// stamps wall-clock microseconds for the three expensive serve
/// stages — signature verification, multiproof construction, and
/// response signing — as it handles a request. The simulator reads
/// them back with [`StageRecorder::take`] after each exchange to emit
/// trace sub-spans, without `parp-core` ever learning about spans.
#[derive(Clone, Debug, Default)]
pub struct StageRecorder {
    inner: Arc<StageCells>,
}

#[derive(Debug, Default)]
struct StageCells {
    verify_us: AtomicU64,
    proof_us: AtomicU64,
    sign_us: AtomicU64,
}

/// One drained set of stage timings (wall-clock microseconds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageSample {
    /// Time spent recovering/checking request signatures.
    pub verify_us: u64,
    /// Time spent building account multiproofs (and inclusion proofs).
    pub proof_us: u64,
    /// Time spent signing the response envelope.
    pub sign_us: u64,
}

impl StageRecorder {
    /// Fresh recorder with all stages at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to the verify stage (accumulates across calls in a batch).
    pub fn add_verify_us(&self, us: u64) {
        self.inner.verify_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Add to the proof-construction stage.
    pub fn add_proof_us(&self, us: u64) {
        self.inner.proof_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Add to the response-signing stage.
    pub fn add_sign_us(&self, us: u64) {
        self.inner.sign_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Drain the recorder: return the accumulated sample and reset all
    /// stages to zero, ready for the next exchange.
    pub fn take(&self) -> StageSample {
        StageSample {
            verify_us: self.inner.verify_us.swap(0, Ordering::Relaxed),
            proof_us: self.inner.proof_us.swap(0, Ordering::Relaxed),
            sign_us: self.inner.sign_us.swap(0, Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_recorder_accumulates_and_drains() {
        let r = StageRecorder::new();
        r.add_verify_us(10);
        r.add_verify_us(5);
        r.add_proof_us(7);
        r.add_sign_us(3);
        let s = r.take();
        assert_eq!(
            s,
            StageSample {
                verify_us: 15,
                proof_us: 7,
                sign_us: 3
            }
        );
        assert_eq!(r.take(), StageSample::default());
    }

    #[test]
    fn telemetry_clones_share_state() {
        let t = Telemetry::new();
        let c = t.registry.counter("parp_test_total", &[]);
        let t2 = t.clone();
        c.inc();
        assert_eq!(t2.registry.counter("parp_test_total", &[]).get(), 1);
        assert!(!t.tracer.enabled());
        t2.tracer.set_enabled(true);
        assert!(t.tracer.enabled());
    }
}
