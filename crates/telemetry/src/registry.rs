//! Labeled metric registry and its exporters.
//!
//! A [`Registry`] maps `(name, labels)` keys to live metric handles.
//! Registration takes a lock; the returned handles are lock-free, so
//! the hot path never touches the registry again. The `adopt_*` methods
//! lets a subsystem that created its own handle (e.g. a cache built
//! before telemetry was attached) expose it without transferring
//! counts.
//!
//! [`Registry::snapshot`] produces an owned point-in-time
//! [`MetricsSnapshot`] — a plain data structure that report structs
//! can embed — exportable as JSON ([`MetricsSnapshot::to_json`]) or
//! Prometheus text exposition ([`MetricsSnapshot::to_prometheus`],
//! histograms rendered summary-style with `quantile` labels).

use crate::histogram::Histogram;
use crate::json::push_json_string;
use crate::metrics::{Counter, Gauge};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Sorted `(key, value)` label pairs.
pub type Labels = Vec<(String, String)>;

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Labels,
}

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut labels: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    MetricKey {
        name: name.to_string(),
        labels,
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

/// A labeled metric registry. Cheap to clone (all clones share state).
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<MetricKey, Metric>>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter registered under `(name, labels)`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Get or create the gauge registered under `(name, labels)`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Get or create the histogram registered under `(name, labels)`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Expose an existing live counter handle under `(name, labels)`.
    /// The handle keeps its accumulated count; the registry snapshot
    /// will read the same cell the owner increments.
    pub fn adopt_counter(&self, name: &str, labels: &[(&str, &str)], handle: &Counter) {
        self.inner
            .lock()
            .unwrap()
            .insert(key(name, labels), Metric::Counter(handle.clone()));
    }

    /// Expose an existing live gauge handle under `(name, labels)`.
    pub fn adopt_gauge(&self, name: &str, labels: &[(&str, &str)], handle: &Gauge) {
        self.inner
            .lock()
            .unwrap()
            .insert(key(name, labels), Metric::Gauge(handle.clone()));
    }

    /// Expose an existing shared histogram under `(name, labels)`.
    pub fn adopt_histogram(&self, name: &str, labels: &[(&str, &str)], handle: &Arc<Histogram>) {
        self.inner
            .lock()
            .unwrap()
            .insert(key(name, labels), Metric::Histogram(Arc::clone(handle)));
    }

    /// Owned point-in-time snapshot of every registered metric,
    /// sorted by `(name, labels)`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().unwrap();
        let entries = map
            .iter()
            .map(|(k, m)| MetricEntry {
                name: k.name.clone(),
                labels: k.labels.clone(),
                value: match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(HistogramSnapshot::of(h)),
                },
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// Point-in-time value of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Saturating sum of recorded values.
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Median, within the histogram's documented relative error.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistogramSnapshot {
    /// Snapshot a live histogram.
    pub fn of(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
        }
    }
}

/// One `(name, labels, value)` entry of a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricEntry {
    /// Metric name (`parp_<subsystem>_<name>_<unit>` by convention).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// Snapshot value of one metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// An owned point-in-time snapshot of a [`Registry`] — plain data,
/// safe to embed in scenario reports and compare across runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All entries, sorted by `(name, labels)`.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricEntry> {
        let mut want: Labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.entries
            .iter()
            .find(|e| e.name == name && e.labels == want)
    }

    /// Counter reading under `(name, labels)`, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Gauge reading under `(name, labels)`, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.find(name, labels)?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Histogram summary under `(name, labels)`, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match &self.find(name, labels)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Every entry sharing `name` (all label sets), in label order.
    pub fn with_name<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a MetricEntry> {
        self.entries.iter().filter(move |e| e.name == name)
    }

    /// Export as a JSON object:
    /// `{"metrics":[{"name":...,"labels":{...},"type":...,...}]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, &e.name);
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in e.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, k);
                out.push(':');
                push_json_string(&mut out, v);
            }
            out.push('}');
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(",\"type\":\"counter\",\"value\":{v}}}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(",\"type\":\"gauge\",\"value\":{v}}}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\
                         \"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                        h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99, h.p999
                    ));
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Export in Prometheus text exposition format. Histograms are
    /// rendered summary-style: `name{quantile="0.5"}` lines plus
    /// `name_sum` / `name_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_typed: Option<(&str, &str)> = None;
        for e in &self.entries {
            let ty = match e.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "summary",
            };
            if last_typed != Some((e.name.as_str(), ty)) {
                out.push_str(&format!("# TYPE {} {}\n", e.name, ty));
                last_typed = Some((e.name.as_str(), ty));
            }
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(&prom_line(&e.name, &e.labels, &[], &v.to_string()));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&prom_line(&e.name, &e.labels, &[], &v.to_string()));
                }
                MetricValue::Histogram(h) => {
                    for (q, v) in [
                        ("0.5", h.p50),
                        ("0.9", h.p90),
                        ("0.99", h.p99),
                        ("0.999", h.p999),
                    ] {
                        out.push_str(&prom_line(
                            &e.name,
                            &e.labels,
                            &[("quantile", q)],
                            &v.to_string(),
                        ));
                    }
                    out.push_str(&prom_line(
                        &format!("{}_sum", e.name),
                        &e.labels,
                        &[],
                        &h.sum.to_string(),
                    ));
                    out.push_str(&prom_line(
                        &format!("{}_count", e.name),
                        &e.labels,
                        &[],
                        &h.count.to_string(),
                    ));
                }
            }
        }
        out
    }
}

fn prom_line(name: &str, labels: &Labels, extra: &[(&str, &str)], value: &str) -> String {
    let mut out = String::new();
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            // Prometheus label escaping: backslash, quote, newline.
            for ch in v.chars() {
                match ch {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_read_back_and_export() {
        let r = Registry::new();
        let c = r.counter("parp_test_calls_total", &[("provider", "0xabc")]);
        c.add(3);
        let g = r.gauge("parp_test_depth", &[]);
        g.set(-4);
        let h = r.histogram("parp_test_latency_us", &[]);
        h.record(100);
        h.record(200);

        let snap = r.snapshot();
        assert_eq!(
            snap.counter("parp_test_calls_total", &[("provider", "0xabc")]),
            Some(3)
        );
        assert_eq!(snap.gauge("parp_test_depth", &[]), Some(-4));
        let hs = snap.histogram("parp_test_latency_us", &[]).unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.min, 100);
        assert_eq!(hs.max, 200);

        let json = snap.to_json();
        assert!(json.contains("\"name\":\"parp_test_calls_total\""));
        assert!(json.contains("\"provider\":\"0xabc\""));
        assert!(json.contains("\"type\":\"histogram\""));

        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE parp_test_calls_total counter"));
        assert!(prom.contains("parp_test_calls_total{provider=\"0xabc\"} 3"));
        assert!(prom.contains("parp_test_latency_us{quantile=\"0.5\"}"));
        assert!(prom.contains("parp_test_latency_us_count 2"));
        assert!(prom.contains("parp_test_depth -4"));
    }

    #[test]
    fn adoption_preserves_live_counts() {
        let r = Registry::new();
        let live = Counter::new();
        live.add(7);
        r.adopt_counter("parp_test_adopted_total", &[], &live);
        live.inc();
        assert_eq!(
            r.snapshot().counter("parp_test_adopted_total", &[]),
            Some(8)
        );
    }

    #[test]
    fn same_key_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("parp_test_x_total", &[("a", "1"), ("b", "2")]);
        // Label order must not matter.
        let b = r.counter("parp_test_x_total", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(a.same_cell(&b));
    }
}
