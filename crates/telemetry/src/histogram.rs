//! Fixed-memory log-linear histogram (HdrHistogram-style).
//!
//! Values are `u64` (the workspace uses microseconds everywhere). The
//! bucket layout is *log-linear*: values below 64 get one bucket each
//! (exact), and every power-of-two octave above that is split into 64
//! linear sub-buckets. A recorded value therefore lands in a bucket
//! whose lower bound is at most `2⁻⁶` (1.5625%) below it — roughly two
//! significant decimal digits — and quantile queries return that lower
//! bound, so:
//!
//! > for any quantile `q`, `hist.quantile(q)` ∈
//! > `(exact · (1 − 2⁻⁶), exact]` where `exact` is the nearest-rank
//! > quantile of the recorded samples.
//!
//! The error is one-sided (never above the exact value) and *relative*,
//! so it is bounded at every magnitude from single microseconds to
//! full-range `u64` (`u64::MAX` saturates into the last bucket).
//!
//! Memory is fixed: 59 octaves × 64 sub-buckets + the 64-value linear
//! region = [`BUCKETS`] = 3776 `AtomicU64` cells ≈ 30 KiB, lazily
//! allocated on the first `record` so an empty histogram costs a few
//! machine words. Recording is one relaxed `fetch_add` plus min/max
//! maintenance; quantiles are an O(buckets) walk with no sorting and
//! no allocation — this is what replaces the unbounded
//! `Vec<u64>`-retaining, sort-per-query aggregates in `parp-net` and
//! `parp-gateway`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// log2 of the number of linear sub-buckets per octave.
const SUB_BITS: u32 = 6;
/// Linear sub-buckets per octave (and size of the exact region).
const SUB: usize = 1 << SUB_BITS;
/// Number of octaves above the linear region for `u64` values:
/// highest set bit 6..=63.
const OCTAVES: usize = 58;
/// Total bucket count: the exact linear region plus every octave.
pub const BUCKETS: usize = SUB + OCTAVES * SUB;
/// Documented one-sided relative error bound of bucket lower bounds
/// (and therefore of [`Histogram::quantile`]): `2⁻⁶`.
pub const RELATIVE_ERROR: f64 = 1.0 / SUB as f64;

/// Map a value to its bucket index. Total order preserving.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        // Highest set bit h >= 6; the 6 bits below it select the
        // linear sub-bucket inside octave h-6.
        let h = 63 - v.leading_zeros();
        let octave = (h - SUB_BITS) as usize;
        let sub = ((v >> (h - SUB_BITS)) as usize) & (SUB - 1);
        SUB + octave * SUB + sub
    }
}

/// Lower bound of the value range covered by bucket `i` — what
/// quantile queries report.
#[inline]
fn bucket_low(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let octave = (i / SUB - 1) as u32;
        let sub = (i % SUB) as u64;
        (SUB as u64 + sub) << octave
    }
}

/// A fixed-memory log-linear histogram of `u64` values.
///
/// Thread-safe: recording takes `&self` and is lock-free. See the
/// [module docs](self) for the bucket layout and the documented
/// relative-error bound.
pub struct Histogram {
    buckets: OnceLock<Box<[AtomicU64]>>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// New empty histogram. Buckets are not allocated until the first
    /// `record`, so this is a few machine words.
    pub fn new() -> Self {
        Self {
            buckets: OnceLock::new(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn cells(&self) -> &[AtomicU64] {
        self.buckets
            .get_or_init(|| (0..BUCKETS).map(|_| AtomicU64::new(0)).collect())
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of `v` at the cost of one.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.cells()[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of recorded values (exact until it saturates).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (exact), or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Largest recorded value (exact), or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Nearest-rank quantile over the bucketed distribution, reported
    /// as the holding bucket's lower bound — within the documented
    /// one-sided [`RELATIVE_ERROR`] of the exact nearest-rank
    /// quantile. `q` is clamped to `[0, 1]`; an empty histogram
    /// returns 0. O(buckets), no allocation.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let Some(cells) = self.buckets.get() else {
            return 0;
        };
        let q = q.clamp(0.0, 1.0);
        // Same nearest-rank convention as `parp_net::latency_quantile_us`.
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in cells.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_low(i);
            }
        }
        self.max()
    }

    /// Fold another histogram into this one.
    pub fn merge(&self, other: &Histogram) {
        let Some(theirs) = other.buckets.get() else {
            return;
        };
        let cells = self.cells();
        for (mine, theirs) in cells.iter().zip(theirs.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        if other.count() != 0 {
            self.min
                .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
            self.max.fetch_max(other.max(), Ordering::Relaxed);
        }
    }

    /// Heap + inline footprint in bytes. Constant once the bucket
    /// array is allocated — it never grows with sample count, which is
    /// the memory-regression property the simulator tests assert.
    pub fn mem_bytes(&self) -> usize {
        let heap = if self.buckets.get().is_some() {
            BUCKETS * std::mem::size_of::<AtomicU64>()
        } else {
            0
        };
        std::mem::size_of::<Self>() + heap
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Histogram {
    /// Deep copy: the clone gets its own cells holding a snapshot of
    /// the source's current counts (concurrent writers may land on
    /// either side of the snapshot, bucket by bucket).
    fn clone(&self) -> Self {
        let out = Histogram::new();
        out.merge(self);
        // merge() recomputes count/sum but min comes from the raw cell
        // so an empty source stays u64::MAX — already handled there.
        out
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        if self.count() != other.count() || self.sum() != other.sum() {
            return false;
        }
        match (self.buckets.get(), other.buckets.get()) {
            (None, None) => true,
            (Some(a), Some(b)) => a
                .iter()
                .zip(b.iter())
                .all(|(x, y)| x.load(Ordering::Relaxed) == y.load(Ordering::Relaxed)),
            // One side allocated but recorded nothing: equal to an
            // unallocated empty histogram (counts already matched).
            (Some(_), None) | (None, Some(_)) => self.count() == 0,
        }
    }
}

impl Eq for Histogram {}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("min", &self.min())
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        let h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 63);
        // Every value below 64 has its own bucket.
        for v in 0..64u64 {
            assert_eq!(bucket_low(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // The lower bound of a value's bucket never exceeds the value,
        // and is within the documented relative error below it.
        for &v in &[
            1u64,
            63,
            64,
            65,
            127,
            128,
            1000,
            10_000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let low = bucket_low(bucket_index(v));
            assert!(low <= v, "low {low} > v {v}");
            assert!(
                (v - low) as f64 <= v as f64 * RELATIVE_ERROR,
                "v={v} low={low}"
            );
        }
        // Bucket lower bounds are monotone in the index.
        for i in 1..BUCKETS {
            assert!(bucket_low(i) > bucket_low(i - 1));
        }
        // u64::MAX maps inside the table.
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn empty_and_single_sample() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        h.record(300);
        assert_eq!(h.quantile(0.0), 300);
        assert_eq!(h.quantile(0.5), 300);
        assert_eq!(h.quantile(1.0), 300);
        assert_eq!(h.min(), 300);
        assert_eq!(h.max(), 300);
    }

    #[test]
    fn saturating_value() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        let p99 = h.quantile(0.99);
        assert!((u64::MAX - p99) as f64 <= u64::MAX as f64 * RELATIVE_ERROR);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn memory_is_fixed() {
        let h = Histogram::new();
        let empty = h.mem_bytes();
        h.record(1);
        let one = h.mem_bytes();
        for v in 0..1_000_000u64 {
            h.record(v);
        }
        assert_eq!(h.mem_bytes(), one);
        assert!(one > empty); // lazily allocated on first record
        assert!(one < 64 * 1024, "footprint {one} B should stay ~30 KiB");
    }

    #[test]
    fn merge_and_eq() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [5u64, 100, 10_000] {
            a.record(v);
            b.record(v);
        }
        assert_eq!(a, b);
        let c = a.clone();
        assert_eq!(c, a);
        b.record(7);
        assert_ne!(a, b);
        a.merge(&b);
        assert_eq!(a.count(), 7);
        assert_eq!(a.min(), 5);
    }
}
