//! Lock-free scalar metrics: counters and gauges.
//!
//! Both are cheap-clone `Arc` handles around a single atomic — clones
//! share the same cell, so a hot loop and the registry that exports it
//! hold the *same* metric. Equality compares current values (useful in
//! report structs that derive `PartialEq`).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter (`u64`, relaxed atomics).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// New counter holding `v` — used by deep-snapshot `Clone` impls
    /// that must *not* share the cell.
    pub fn with_value(v: u64) -> Self {
        Self(Arc::new(AtomicU64::new(v)))
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Whether two handles share the same underlying cell.
    pub fn same_cell(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl PartialEq for Counter {
    fn eq(&self, other: &Self) -> bool {
        self.get() == other.get()
    }
}

impl Eq for Counter {}

/// A signed gauge (`i64`, relaxed atomics) for instantaneous levels
/// (queue depth, cache entries, open channels).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl PartialEq for Gauge {
    fn eq(&self, other: &Self) -> bool {
        self.get() == other.get()
    }
}

impl Eq for Gauge {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let a = Counter::new();
        let b = a.clone();
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert!(a.same_cell(&b));
        let snap = Counter::with_value(a.get());
        assert_eq!(snap, a);
        assert!(!snap.same_cell(&a));
        a.inc();
        assert_ne!(snap, a);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }
}
