//! The injected clock: every duration measurement in the workspace
//! routes through a [`TimeSource`] instead of calling
//! `std::time::Instant::now()` directly.
//!
//! The deterministic simulator's accountability story depends on runs
//! being reproducible: fraud proofs are adjudicated on exact response
//! bytes, and the simulated clock (which feeds provider aggregates,
//! reputation scores, and trace timestamps) must advance the same way
//! on every host. A raw `Instant::now()` inside a serve path silently
//! couples all of that to host scheduling noise. `parp-analyze` lint
//! **W002** (wall-clock-in-sim) bans direct wall-clock reads across
//! the workspace; this module is the one place allowed to touch the
//! host clock, and everything else injects a handle.
//!
//! Two sources exist:
//!
//! * [`TimeSource::wall`] — real host time, for benches and load
//!   harnesses whose entire point is measuring the hardware
//!   ([`crate::time::TimeSource::is_wall`] lets callers assert which
//!   mode they got).
//! * [`TimeSource::fixed`] — deterministic: every `start`/`elapsed_us`
//!   measurement reports a fixed quantum and advances a shared virtual
//!   now, so histograms, aggregates and the sim clock see identical
//!   values on every run. This is the simulator's default.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
// parp-allow(W002): this module IS the wall-clock boundary — the single
// justified Instant anchor everything else injects a TimeSource for.
use std::time::Instant;

/// An opaque measurement token returned by [`TimeSource::start`] and
/// consumed by [`TimeSource::elapsed_us`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeStamp(u64);

/// The process-wide wall anchor: all wall readings are microseconds
/// since the first one, which keeps stamps small, monotonic, and
/// comparable across `TimeSource` clones.
fn wall_anchor() -> &'static Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    // parp-allow(W002): the one wall-clock read behind the abstraction.
    ANCHOR.get_or_init(Instant::now)
}

#[derive(Debug, Clone)]
enum Source {
    /// Host monotonic clock.
    Wall,
    /// Deterministic virtual clock: `elapsed_us` always reports
    /// `quantum_us` and advances the shared `now`.
    Fixed {
        quantum_us: u64,
        now: Arc<AtomicU64>,
    },
}

/// A cheap-clone handle to either the host clock or a deterministic
/// virtual clock. Clones share state: two clones of a fixed source
/// advance the same virtual now (so measurements taken on worker
/// threads stay globally monotonic).
#[derive(Debug, Clone)]
pub struct TimeSource(Source);

impl Default for TimeSource {
    /// Defaults to the host clock — the right choice for production
    /// serving. The simulator overrides this with [`TimeSource::fixed`]
    /// at construction.
    fn default() -> Self {
        TimeSource::wall()
    }
}

impl TimeSource {
    /// The host monotonic clock.
    pub fn wall() -> Self {
        // Touch the anchor eagerly so the first measurement does not
        // fold anchor-initialisation time into its reading.
        let _ = wall_anchor();
        TimeSource(Source::Wall)
    }

    /// A deterministic clock: every `start`/`elapsed_us` pair reports
    /// exactly `quantum_us` microseconds (minimum 1 — a zero-length
    /// measurement would make rate math divide by zero), regardless of
    /// host scheduling.
    pub fn fixed(quantum_us: u64) -> Self {
        TimeSource(Source::Fixed {
            quantum_us: quantum_us.max(1),
            now: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Whether this source reads the host clock (benches assert this
    /// so a deterministic handle can never silently produce numbers
    /// that get reported as hardware measurements).
    pub fn is_wall(&self) -> bool {
        matches!(self.0, Source::Wall)
    }

    /// Current reading in microseconds (since the process anchor for
    /// wall sources; since construction for fixed sources).
    pub fn now_us(&self) -> u64 {
        match &self.0 {
            Source::Wall => wall_anchor().elapsed().as_micros() as u64,
            Source::Fixed { now, .. } => now.load(Ordering::Relaxed),
        }
    }

    /// Begins a measurement.
    pub fn start(&self) -> TimeStamp {
        TimeStamp(self.now_us())
    }

    /// Ends a measurement begun with [`TimeSource::start`].
    ///
    /// Wall sources report real elapsed microseconds. Fixed sources
    /// report the configured quantum and advance the shared virtual
    /// now by it, so successive measurements remain ordered.
    pub fn elapsed_us(&self, since: TimeStamp) -> u64 {
        match &self.0 {
            Source::Wall => self.now_us().saturating_sub(since.0),
            Source::Fixed { quantum_us, now } => {
                now.fetch_add(*quantum_us, Ordering::Relaxed);
                *quantum_us
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_reports_quantum_every_time() {
        let ts = TimeSource::fixed(50);
        for _ in 0..10 {
            let t = ts.start();
            assert_eq!(ts.elapsed_us(t), 50);
        }
        assert_eq!(ts.now_us(), 500);
        assert!(!ts.is_wall());
    }

    #[test]
    fn fixed_clones_share_the_virtual_clock() {
        let ts = TimeSource::fixed(7);
        let clone = ts.clone();
        let t = clone.start();
        assert_eq!(clone.elapsed_us(t), 7);
        assert_eq!(ts.now_us(), 7);
    }

    #[test]
    fn fixed_zero_quantum_is_clamped_to_one() {
        let ts = TimeSource::fixed(0);
        let t = ts.start();
        assert_eq!(ts.elapsed_us(t), 1);
    }

    #[test]
    fn wall_is_monotonic_and_flagged() {
        let ts = TimeSource::wall();
        assert!(ts.is_wall());
        let t = ts.start();
        let a = ts.elapsed_us(t);
        let b = ts.elapsed_us(t);
        assert!(b >= a);
    }
}
