//! Transaction receipts and logs, RLP-encoded into the receipt trie.

use parp_primitives::{Address, H256};
use parp_rlp::{
    decode_list_of, encode_address, encode_bytes, encode_h256, encode_list, encode_u64, DecodeError,
};

/// An event log emitted during transaction execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Log {
    /// Emitting contract (module) address.
    pub address: Address,
    /// Indexed topics.
    pub topics: Vec<H256>,
    /// Unindexed payload.
    pub data: Vec<u8>,
}

impl Log {
    /// RLP encoding `[address, [topics...], data]`.
    pub fn encode(&self) -> Vec<u8> {
        let topics: Vec<Vec<u8>> = self.topics.iter().map(encode_h256).collect();
        encode_list(&[
            encode_address(&self.address),
            encode_list(&topics),
            encode_bytes(&self.data),
        ])
    }

    /// Decodes a log record.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the structure is not a 3-item log.
    pub fn decode_item(item: &parp_rlp::Item) -> Result<Self, DecodeError> {
        let fields = item.as_list()?;
        if fields.len() != 3 {
            return Err(DecodeError::WrongArity {
                expected: 3,
                actual: fields.len(),
            });
        }
        let topics = fields[1]
            .as_list()?
            .iter()
            .map(|t| t.as_h256())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Log {
            address: fields[0].as_address()?,
            topics,
            data: fields[2].as_bytes()?.to_vec(),
        })
    }
}

/// A transaction receipt: execution status, gas accounting and logs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Receipt {
    /// 1 on success, 0 on failure (post-Byzantium status encoding).
    pub status: u64,
    /// Total gas used in the block up to and including this transaction.
    pub cumulative_gas_used: u64,
    /// Logs emitted by this transaction.
    pub logs: Vec<Log>,
}

impl Receipt {
    /// RLP encoding `[status, cumulativeGasUsed, [logs...]]`.
    pub fn encode(&self) -> Vec<u8> {
        let logs: Vec<Vec<u8>> = self.logs.iter().map(Log::encode).collect();
        encode_list(&[
            encode_u64(self.status),
            encode_u64(self.cumulative_gas_used),
            encode_list(&logs),
        ])
    }

    /// Decodes a receipt-trie entry.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on a malformed receipt structure.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let items = decode_list_of(bytes, 3)?;
        let logs = items[2]
            .as_list()?
            .iter()
            .map(Log::decode_item)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Receipt {
            status: items[0].as_u64()?,
            cumulative_gas_used: items[1].as_u64()?,
            logs,
        })
    }

    /// Returns `true` when the transaction succeeded.
    pub fn is_success(&self) -> bool {
        self.status == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receipt_roundtrip() {
        let receipt = Receipt {
            status: 1,
            cumulative_gas_used: 53_000,
            logs: vec![Log {
                address: Address::from_low_u64_be(5),
                topics: vec![H256::from_low_u64_be(1), H256::from_low_u64_be(2)],
                data: vec![1, 2, 3],
            }],
        };
        assert_eq!(Receipt::decode(&receipt.encode()).unwrap(), receipt);
        assert!(receipt.is_success());
    }

    #[test]
    fn failed_receipt() {
        let receipt = Receipt {
            status: 0,
            cumulative_gas_used: 21_000,
            logs: Vec::new(),
        };
        assert!(!receipt.is_success());
        assert_eq!(Receipt::decode(&receipt.encode()).unwrap(), receipt);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Receipt::decode(&[0x01, 0x02]).is_err());
        assert!(Receipt::decode(&parp_rlp::encode_bytes(b"nope")).is_err());
    }
}
