//! Block headers: the light client's root of trust.

use parp_crypto::keccak256;
use parp_primitives::{Address, H256, U256};
use parp_rlp::{
    decode_list_of, encode_address, encode_bytes, encode_h256, encode_list, encode_u256,
    encode_u64, DecodeError,
};

/// A block header carrying the three trie roots PARP proofs verify
/// against.
///
/// This is a 12-field subset of Ethereum's header (omitting the bloom
/// filter, PoW fields and post-merge additions), but hashed the same way:
/// `keccak256(rlp(header))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Hash of the parent block header.
    pub parent_hash: H256,
    /// Hash of the (always empty) ommer list, kept for structural fidelity.
    pub ommers_hash: H256,
    /// Block producer / fee recipient.
    pub beneficiary: Address,
    /// Root of the world-state trie after executing this block.
    pub state_root: H256,
    /// Root of the transaction trie.
    pub transactions_root: H256,
    /// Root of the receipt trie.
    pub receipts_root: H256,
    /// Always zero in the simulated PoS-style chain.
    pub difficulty: U256,
    /// Block height.
    pub number: u64,
    /// Gas limit for the block.
    pub gas_limit: u64,
    /// Total gas consumed by the block's transactions.
    pub gas_used: u64,
    /// Unix timestamp (seconds).
    pub timestamp: u64,
    /// Arbitrary extra data (<= 32 bytes by convention).
    pub extra_data: Vec<u8>,
}

impl Header {
    /// RLP encoding of all 12 fields in order.
    pub fn encode(&self) -> Vec<u8> {
        encode_list(&[
            encode_h256(&self.parent_hash),
            encode_h256(&self.ommers_hash),
            encode_address(&self.beneficiary),
            encode_h256(&self.state_root),
            encode_h256(&self.transactions_root),
            encode_h256(&self.receipts_root),
            encode_u256(&self.difficulty),
            encode_u64(self.number),
            encode_u64(self.gas_limit),
            encode_u64(self.gas_used),
            encode_u64(self.timestamp),
            encode_bytes(&self.extra_data),
        ])
    }

    /// Decodes a header.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the input is not a 12-field header.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let items = decode_list_of(bytes, 12)?;
        Ok(Header {
            parent_hash: items[0].as_h256()?,
            ommers_hash: items[1].as_h256()?,
            beneficiary: items[2].as_address()?,
            state_root: items[3].as_h256()?,
            transactions_root: items[4].as_h256()?,
            receipts_root: items[5].as_h256()?,
            difficulty: items[6].as_u256()?,
            number: items[7].as_u64()?,
            gas_limit: items[8].as_u64()?,
            gas_used: items[9].as_u64()?,
            timestamp: items[10].as_u64()?,
            extra_data: items[11].as_bytes()?.to_vec(),
        })
    }

    /// The block hash: `keccak256(rlp(header))`.
    pub fn hash(&self) -> H256 {
        keccak256(&self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            parent_hash: H256::from_low_u64_be(1),
            ommers_hash: keccak256(&[0xc0]),
            beneficiary: Address::from_low_u64_be(2),
            state_root: H256::from_low_u64_be(3),
            transactions_root: H256::from_low_u64_be(4),
            receipts_root: H256::from_low_u64_be(5),
            difficulty: U256::ZERO,
            number: 7,
            gas_limit: 30_000_000,
            gas_used: 21_000,
            timestamp: 1_700_000_000,
            extra_data: b"parp".to_vec(),
        }
    }

    #[test]
    fn roundtrip() {
        let header = sample_header();
        assert_eq!(Header::decode(&header.encode()).unwrap(), header);
    }

    #[test]
    fn hash_changes_with_any_field() {
        let base = sample_header();
        let mut changed = base.clone();
        changed.gas_used += 1;
        assert_ne!(base.hash(), changed.hash());
        let mut changed2 = base.clone();
        changed2.state_root = H256::from_low_u64_be(99);
        assert_ne!(base.hash(), changed2.hash());
    }

    #[test]
    fn header_size_is_realistic() {
        // An Ethereum header is ~500-600 bytes; our 12-field subset should
        // be in the few-hundred-byte range so message-size experiments are
        // comparable.
        let len = sample_header().encode().len();
        assert!((200..600).contains(&len), "header size {len}");
    }

    #[test]
    fn decode_rejects_wrong_field_count() {
        let bad = encode_list(&[encode_u64(1), encode_u64(2)]);
        assert!(Header::decode(&bad).is_err());
    }
}
