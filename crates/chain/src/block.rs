//! Blocks: a header plus its transaction list, with trie construction for
//! inclusion proofs.

use crate::header::Header;
use crate::receipt::Receipt;
use crate::transaction::SignedTransaction;
use parp_primitives::H256;
use parp_trie::{ordered_trie, Trie};

/// A block: header plus ordered transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The block header.
    pub header: Header,
    /// Transactions in execution order.
    pub transactions: Vec<SignedTransaction>,
}

impl Block {
    /// The block hash (the header hash).
    pub fn hash(&self) -> H256 {
        self.header.hash()
    }

    /// Block height.
    pub fn number(&self) -> u64 {
        self.header.number
    }

    /// Builds the transaction trie: `rlp(index) → rlp(signed_tx)`.
    pub fn transactions_trie(&self) -> Trie {
        let encoded: Vec<Vec<u8>> = self
            .transactions
            .iter()
            .map(SignedTransaction::encode)
            .collect();
        ordered_trie(encoded.iter().map(Vec::as_slice))
    }

    /// Merkle proof that transaction `index` is included in this block,
    /// verifiable against `header.transactions_root`.
    ///
    /// Returns `None` when `index` is out of range.
    pub fn transaction_proof(&self, index: usize) -> Option<Vec<Vec<u8>>> {
        if index >= self.transactions.len() {
            return None;
        }
        Some(
            self.transactions_trie()
                .prove(&parp_rlp::encode_u64(index as u64)),
        )
    }
}

/// Builds the receipt trie for a block's receipts.
pub fn receipts_trie(receipts: &[Receipt]) -> Trie {
    let encoded: Vec<Vec<u8>> = receipts.iter().map(Receipt::encode).collect();
    ordered_trie(encoded.iter().map(Vec::as_slice))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Transaction;
    use parp_crypto::SecretKey;
    use parp_primitives::{Address, U256};
    use parp_trie::verify_proof;

    fn make_block(tx_count: usize) -> Block {
        let key = SecretKey::from_seed(b"block-maker");
        let transactions: Vec<SignedTransaction> = (0..tx_count)
            .map(|i| {
                Transaction {
                    nonce: i as u64,
                    gas_price: U256::from(10u64),
                    gas_limit: 21_000,
                    to: Some(Address::from_low_u64_be(5)),
                    value: U256::from(i as u64 + 1),
                    data: Vec::new(),
                }
                .sign(&key)
            })
            .collect();
        let tx_root = {
            let encoded: Vec<Vec<u8>> =
                transactions.iter().map(SignedTransaction::encode).collect();
            ordered_trie(encoded.iter().map(Vec::as_slice)).root_hash()
        };
        Block {
            header: Header {
                parent_hash: H256::ZERO,
                ommers_hash: parp_crypto::keccak256(&[0xc0]),
                beneficiary: Address::ZERO,
                state_root: H256::ZERO,
                transactions_root: tx_root,
                receipts_root: parp_trie::empty_root(),
                difficulty: U256::ZERO,
                number: 1,
                gas_limit: 30_000_000,
                gas_used: 21_000 * tx_count as u64,
                timestamp: 0,
                extra_data: Vec::new(),
            },
            transactions,
        }
    }

    #[test]
    fn transaction_proofs_verify() {
        let block = make_block(20);
        for index in [0usize, 1, 7, 19] {
            let proof = block.transaction_proof(index).unwrap();
            let key = parp_rlp::encode_u64(index as u64);
            let value = verify_proof(block.header.transactions_root, &key, &proof)
                .unwrap()
                .unwrap();
            assert_eq!(value, block.transactions[index].encode());
        }
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let block = make_block(3);
        assert!(block.transaction_proof(3).is_none());
    }

    #[test]
    fn receipts_trie_roots_differ_by_contents() {
        let a = vec![Receipt {
            status: 1,
            cumulative_gas_used: 21_000,
            logs: Vec::new(),
        }];
        let b = vec![Receipt {
            status: 0,
            cumulative_gas_used: 21_000,
            logs: Vec::new(),
        }];
        assert_ne!(receipts_trie(&a).root_hash(), receipts_trie(&b).root_hash());
    }
}
