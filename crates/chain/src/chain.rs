//! The simulated blockchain: deterministic block production over the
//! pluggable execution layer, with snapshot-backed historical queries and
//! Merkle proofs — everything a PARP full node needs to serve.

use crate::block::{receipts_trie, Block};
use crate::exec::{BlockContext, TransactionExecutor};
use crate::header::Header;
use crate::receipt::Receipt;
use crate::state::State;
use crate::transaction::SignedTransaction;
use parp_crypto::keccak256;
use parp_primitives::{Address, H256, U256};
use parp_store::BlockStore;
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::io;

/// EVM `BLOCKHASH` visibility window, which bounds fraud-proof freshness
/// exactly as in the paper's prototype (§VI).
pub const BLOCK_HASH_WINDOW: u64 = 256;

/// Seconds between consecutive blocks (Ethereum's post-merge slot time).
pub const BLOCK_INTERVAL: u64 = 12;

/// Smallest in-memory window a history-backed chain may keep: the
/// `BLOCKHASH` window plus the head, so block production never needs a
/// cold read for `recent_hashes` and fraud-proof freshness (§VI) is
/// unaffected by pruning.
pub const MIN_HISTORY_WINDOW: u64 = BLOCK_HASH_WINDOW + 1;

/// Errors from block production.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// A transaction failed pre-execution validation.
    InvalidTransaction {
        /// Index within the submitted batch.
        index: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The block's total gas exceeded the block gas limit.
    GasLimitExceeded,
    /// The attached history store could not archive the block; the
    /// chain is left unchanged so the caller can retry or detach.
    History {
        /// The underlying storage error, rendered.
        reason: String,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::InvalidTransaction { index, reason } => {
                write!(f, "transaction {index} is invalid: {reason}")
            }
            BlockError::GasLimitExceeded => write!(f, "block gas limit exceeded"),
            BlockError::History { reason } => {
                write!(f, "history store rejected the block: {reason}")
            }
        }
    }
}

impl Error for BlockError {}

/// A deterministic in-process blockchain.
///
/// # Examples
///
/// ```
/// use parp_chain::{Blockchain, Transaction, TransferExecutor};
/// use parp_crypto::SecretKey;
/// use parp_primitives::{Address, U256};
///
/// let alice = SecretKey::from_seed(b"alice");
/// let mut chain = Blockchain::new(vec![(alice.address(), U256::from(1_000_000u64))]);
/// let tx = Transaction {
///     nonce: 0,
///     gas_price: U256::ZERO,
///     gas_limit: 21_000,
///     to: Some(Address::from_low_u64_be(0xb0b)),
///     value: U256::from(123u64),
///     data: Vec::new(),
/// }
/// .sign(&alice);
/// chain.produce_block(vec![tx], &mut TransferExecutor).unwrap();
/// assert_eq!(chain.balance(&Address::from_low_u64_be(0xb0b)), U256::from(123u64));
/// ```
#[derive(Debug, Clone)]
pub struct Blockchain {
    /// Resident window: `blocks[i]` is block `base + i`. Without an
    /// attached history store the window is the whole chain
    /// (`base == 0`); with one, `produce_block` archives each block
    /// into segments and drains the front back to `window` entries.
    blocks: Vec<Block>,
    /// Per-block receipts, parallel to `blocks`.
    receipts: Vec<Vec<Receipt>>,
    /// Post-execution state snapshots, parallel to `blocks`.
    snapshots: Vec<State>,
    state: State,
    hash_index: HashMap<H256, u64>,
    tx_index: HashMap<H256, (u64, usize)>,
    beneficiary: Address,
    gas_limit: u64,
    genesis_timestamp: u64,
    /// Number of the first resident block.
    base: u64,
    /// Rolling `(number, hash)` window of the last
    /// [`BLOCK_HASH_WINDOW`] blocks, maintained incrementally so block
    /// production never re-hashes up to 256 headers (an O(window)
    /// keccak cost per block that dominated deep-history mining).
    recent_window: VecDeque<(u64, H256)>,
    /// Cold history segments; `None` keeps the chain fully resident.
    history: Option<BlockStore>,
    /// Resident-window size once a history store is attached.
    window: u64,
}

impl Blockchain {
    /// Creates a chain whose genesis state holds the given balances.
    pub fn new<I: IntoIterator<Item = (Address, U256)>>(alloc: I) -> Self {
        let state = State::with_alloc(alloc);
        let genesis_timestamp = 1_700_000_000;
        let genesis = Block {
            header: Header {
                parent_hash: H256::ZERO,
                ommers_hash: keccak256(&[0xc0]),
                beneficiary: Address::ZERO,
                state_root: state.state_root(),
                transactions_root: parp_trie::empty_root(),
                receipts_root: parp_trie::empty_root(),
                difficulty: U256::ZERO,
                number: 0,
                gas_limit: 30_000_000,
                gas_used: 0,
                timestamp: genesis_timestamp,
                extra_data: b"parp-genesis".to_vec(),
            },
            transactions: Vec::new(),
        };
        let genesis_hash = genesis.hash();
        let mut hash_index = HashMap::new();
        hash_index.insert(genesis_hash, 0);
        Blockchain {
            snapshots: vec![state.clone()],
            state,
            receipts: vec![Vec::new()],
            blocks: vec![genesis],
            hash_index,
            tx_index: HashMap::new(),
            recent_window: VecDeque::from([(0, genesis_hash)]),
            beneficiary: Address::from_low_u64_be(0xbe9ef1c1a97),
            gas_limit: 30_000_000,
            genesis_timestamp,
            base: 0,
            history: None,
            window: u64::MAX,
        }
    }

    /// Backs this chain's history with append-only segment storage and
    /// bounds the resident window to `window` blocks (clamped up to
    /// [`MIN_HISTORY_WINDOW`] so block production and the `BLOCKHASH`
    /// window never need a cold read).
    ///
    /// Any resident blocks the store has not yet archived are written
    /// out immediately (and fsynced), then the window is pruned. From
    /// here on every produced block is archived before the chain
    /// mutates, so cold lookups through [`Blockchain::header_encoded`]
    /// and friends are byte-identical to the resident path.
    ///
    /// # Errors
    ///
    /// Returns an error when the store already holds blocks beyond
    /// this chain's head or from a different chain (its genesis header
    /// diverges), or when archiving fails.
    pub fn attach_history(&mut self, store: BlockStore, window: u64) -> io::Result<()> {
        if store.next_number() > self.height() + 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "history store is ahead of this chain",
            ));
        }
        if !store.is_empty() {
            let stored_genesis = store.header(0)?.unwrap_or_default();
            let ours = self.blocks.first().map(|b| b.header.encode());
            if self.base != 0 || ours.as_deref() != Some(stored_genesis.as_slice()) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "history store belongs to a different chain",
                ));
            }
        }
        let mut next = store.next_number();
        while next <= self.height() {
            let Some(block) = self.block(next) else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "resident window no longer covers unarchived blocks",
                ));
            };
            let header = block.header.encode();
            let transactions: Vec<Vec<u8>> = block
                .transactions
                .iter()
                .map(SignedTransaction::encode)
                .collect();
            let receipts: Vec<Vec<u8>> = self
                .receipts(next)
                .map(|rs| rs.iter().map(Receipt::encode).collect())
                .unwrap_or_default();
            store.append_block(next, &header, &transactions, &receipts)?;
            next += 1;
        }
        store.sync()?;
        self.history = Some(store);
        self.window = window.max(MIN_HISTORY_WINDOW);
        self.prune_resident();
        Ok(())
    }

    /// Drains resident blocks beyond the configured window, moving
    /// `base` forward. Only called once a history store holds them.
    fn prune_resident(&mut self) {
        let resident = self.blocks.len() as u64;
        if resident > self.window {
            let drop = (resident - self.window) as usize;
            self.blocks.drain(..drop);
            self.receipts.drain(..drop);
            self.snapshots.drain(..drop);
            self.base += drop as u64;
        }
    }

    /// Produces and appends a block containing `transactions`.
    ///
    /// Each transaction is validated (signature, nonce, gas purchase),
    /// executed through `executor`, and folded into the block's receipt
    /// and state roots.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError`] when any transaction fails validation; the
    /// chain is left unchanged in that case.
    pub fn produce_block(
        &mut self,
        transactions: Vec<SignedTransaction>,
        executor: &mut dyn TransactionExecutor,
    ) -> Result<&Block, BlockError> {
        let parent = self.blocks.last().expect("genesis always present");
        let number = parent.number() + 1;
        // The rolling window already holds `(n, hash)` for the last
        // BLOCK_HASH_WINDOW blocks (parent included) — no re-hashing.
        let parent_hash = self
            .recent_window
            .back()
            .map(|(_, hash)| *hash)
            .expect("window covers parent");
        let recent_hashes: Vec<(u64, H256)> = self.recent_window.iter().copied().collect();
        let ctx = BlockContext {
            number,
            timestamp: self.genesis_timestamp + number * BLOCK_INTERVAL,
            beneficiary: self.beneficiary,
            recent_hashes,
        };
        let mut state = self.state.clone();
        let mut receipts = Vec::with_capacity(transactions.len());
        let mut cumulative_gas = 0u64;
        for (index, tx) in transactions.iter().enumerate() {
            let receipt = Self::apply_transaction(&mut state, &ctx, tx, executor, cumulative_gas)
                .map_err(|reason| BlockError::InvalidTransaction { index, reason })?;
            cumulative_gas = receipt.cumulative_gas_used;
            if cumulative_gas > self.gas_limit {
                return Err(BlockError::GasLimitExceeded);
            }
            receipts.push(receipt);
        }
        let transactions_root = {
            let encoded: Vec<Vec<u8>> =
                transactions.iter().map(SignedTransaction::encode).collect();
            parp_trie::ordered_trie(encoded.iter().map(Vec::as_slice)).root_hash()
        };
        let block = Block {
            header: Header {
                parent_hash,
                ommers_hash: keccak256(&[0xc0]),
                beneficiary: ctx.beneficiary,
                state_root: state.state_root(),
                transactions_root,
                receipts_root: receipts_trie(&receipts).root_hash(),
                difficulty: U256::ZERO,
                number,
                gas_limit: self.gas_limit,
                gas_used: cumulative_gas,
                timestamp: ctx.timestamp,
                extra_data: Vec::new(),
            },
            transactions,
        };
        // Archive into cold storage *before* any chain mutation, so an
        // I/O failure leaves the chain unchanged, matching the
        // validation-error contract above.
        if let Some(history) = &self.history {
            let header = block.header.encode();
            let encoded_txs: Vec<Vec<u8>> = block
                .transactions
                .iter()
                .map(SignedTransaction::encode)
                .collect();
            let encoded_receipts: Vec<Vec<u8>> = receipts.iter().map(Receipt::encode).collect();
            history
                .append_block(number, &header, &encoded_txs, &encoded_receipts)
                .map_err(|e| BlockError::History {
                    reason: e.to_string(),
                })?;
        }
        let block_hash = block.hash();
        self.hash_index.insert(block_hash, number);
        self.recent_window.push_back((number, block_hash));
        while self.recent_window.len() > BLOCK_HASH_WINDOW as usize {
            self.recent_window.pop_front();
        }
        for (i, tx) in block.transactions.iter().enumerate() {
            self.tx_index.insert(tx.hash(), (number, i));
        }
        // The outgoing head's memoized trie would otherwise be retained
        // forever by the snapshot store (one full frozen trie per block);
        // drop it — snapshot caches that still want it hold their own Arc.
        if let Some(previous_head) = self.snapshots.last_mut() {
            previous_head.release_trie();
        }
        self.state = state.clone();
        // Growth is bounded: once a history store is attached,
        // `prune_resident` drains the front of all three parallel
        // vectors back to the configured window (the block just
        // archived above is safe to drop whenever it ages out).
        // Without a store the chain is deliberately fully resident.
        self.snapshots.push(state);
        self.receipts.push(receipts);
        self.blocks.push(block);
        if self.history.is_some() {
            self.prune_resident();
        }
        Ok(self.blocks.last().expect("just pushed"))
    }

    fn apply_transaction(
        state: &mut State,
        ctx: &BlockContext,
        tx: &SignedTransaction,
        executor: &mut dyn TransactionExecutor,
        cumulative_gas: u64,
    ) -> Result<Receipt, String> {
        let sender = tx
            .sender()
            .map_err(|e| format!("sender recovery failed: {e}"))?;
        let body = tx.tx();
        let expected_nonce = state.nonce(&sender);
        if body.nonce != expected_nonce {
            return Err(format!(
                "nonce mismatch: expected {expected_nonce}, got {}",
                body.nonce
            ));
        }
        let intrinsic = body.intrinsic_gas();
        if body.gas_limit < intrinsic {
            return Err(format!(
                "gas limit {} below intrinsic cost {intrinsic}",
                body.gas_limit
            ));
        }
        // Buy gas up front, like Ethereum.
        let upfront = body
            .gas_price
            .checked_mul(U256::from(body.gas_limit))
            .ok_or("gas cost overflow")?;
        if !state.debit(&sender, upfront) {
            return Err("insufficient funds for gas".to_string());
        }
        state.account_mut(sender).nonce += 1;
        let mut result = executor.execute(state, ctx, tx, sender, intrinsic);
        if result.gas_used > body.gas_limit {
            // Out of gas: consume everything, drop effects the executor
            // reported (executors revert their own state on failure).
            result.success = false;
            result.gas_used = body.gas_limit;
            result.logs.clear();
        }
        // Refund unused gas; route the fee to the beneficiary.
        let refund = body.gas_price * U256::from(body.gas_limit - result.gas_used);
        state.credit(sender, refund);
        let fee = body.gas_price * U256::from(result.gas_used);
        state.credit(ctx.beneficiary, fee);
        Ok(Receipt {
            status: result.success as u64,
            cumulative_gas_used: cumulative_gas + result.gas_used,
            logs: result.logs,
        })
    }

    /// The chain head.
    pub fn head(&self) -> &Block {
        self.blocks.last().expect("genesis always present")
    }

    /// Current chain height.
    pub fn height(&self) -> u64 {
        self.head().number()
    }

    /// Index of block `number` in the resident window, if resident.
    fn resident_index(&self, number: u64) -> Option<usize> {
        usize::try_from(number.checked_sub(self.base)?).ok()
    }

    /// Block by height, when it is still in the resident window.
    ///
    /// History-backed chains prune old blocks from memory; use the
    /// cold-capable accessors ([`Blockchain::header_encoded`],
    /// [`Blockchain::transactions_encoded`], …) to reach them.
    pub fn block(&self, number: u64) -> Option<&Block> {
        self.blocks.get(self.resident_index(number)?)
    }

    /// Block by hash.
    pub fn block_by_hash(&self, hash: &H256) -> Option<&Block> {
        self.hash_index.get(hash).and_then(|&n| self.block(n))
    }

    /// Height of a block hash, if known.
    pub fn block_number_by_hash(&self, hash: &H256) -> Option<u64> {
        self.hash_index.get(hash).copied()
    }

    /// The hash of block `number` *if it lies within the 256-block
    /// `BLOCKHASH` window* of the head — the same visibility constraint
    /// the paper's on-chain fraud verification relies on.
    pub fn recent_block_hash(&self, number: u64) -> Option<H256> {
        let head = self.height();
        if number > head || head.saturating_sub(number) >= BLOCK_HASH_WINDOW {
            return None;
        }
        self.block(number).map(Block::hash)
    }

    /// Receipts for block `number`, when still in the resident window.
    pub fn receipts(&self, number: u64) -> Option<&[Receipt]> {
        self.receipts
            .get(self.resident_index(number)?)
            .map(Vec::as_slice)
    }

    /// The state snapshot *after* executing block `number`, when still
    /// in the resident window (historical state is not archived —
    /// PARP serves account proofs at the head, inclusion proofs for
    /// arbitrary depth).
    pub fn state_at(&self, number: u64) -> Option<&State> {
        self.snapshots.get(self.resident_index(number)?)
    }

    /// The current world state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Current balance of an address.
    pub fn balance(&self, address: &Address) -> U256 {
        self.state.balance(address)
    }

    /// Current nonce of an address.
    pub fn nonce(&self, address: &Address) -> u64 {
        self.state.nonce(address)
    }

    /// Locates a transaction by hash: `(block number, index)`.
    pub fn transaction_location(&self, hash: &H256) -> Option<(u64, usize)> {
        self.tx_index.get(hash).copied()
    }

    /// Account Merkle proof at a given block height, verifiable against
    /// that block's `state_root`.
    pub fn account_proof_at(&self, address: &Address, number: u64) -> Option<Vec<Vec<u8>>> {
        self.state_at(number).map(|s| s.account_proof(address))
    }

    /// Transaction inclusion proof, verifiable against the block's
    /// `transactions_root`. Falls back to the archived segments for
    /// pruned blocks; the proof bytes are identical either way (the
    /// trie is rebuilt from the same canonical encodings).
    pub fn transaction_proof(&self, number: u64, index: usize) -> Option<Vec<Vec<u8>>> {
        if self.resident_index(number).is_some() {
            return self.block(number).and_then(|b| b.transaction_proof(index));
        }
        let encoded = self.cold_transactions(number)?;
        if index >= encoded.len() {
            return None;
        }
        let trie = parp_trie::ordered_trie(encoded.iter().map(Vec::as_slice));
        Some(trie.prove(&parp_rlp::encode_u64(index as u64)))
    }

    /// Receipt inclusion proof, verifiable against the block's
    /// `receipts_root`. Falls back to the archived segments for pruned
    /// blocks, byte-identically.
    pub fn receipt_proof(&self, number: u64, index: usize) -> Option<Vec<Vec<u8>>> {
        if let Some(receipts) = self.receipts(number) {
            if index >= receipts.len() {
                return None;
            }
            return Some(receipts_trie(receipts).prove(&parp_rlp::encode_u64(index as u64)));
        }
        let encoded = self.cold_receipts(number)?;
        if index >= encoded.len() {
            return None;
        }
        let trie = parp_trie::ordered_trie(encoded.iter().map(Vec::as_slice));
        Some(trie.prove(&parp_rlp::encode_u64(index as u64)))
    }

    // --- cold/warm unified accessors -------------------------------

    /// Whether a history store backs this chain.
    pub fn has_history(&self) -> bool {
        self.history.is_some()
    }

    /// Number of the first block still resident in memory.
    pub fn resident_base(&self) -> u64 {
        self.base
    }

    /// Number of blocks currently held in memory.
    pub fn resident_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Bytes the attached history store occupies on disk (0 without
    /// one).
    pub fn history_disk_bytes(&self) -> u64 {
        self.history.as_ref().map_or(0, BlockStore::disk_bytes)
    }

    /// Fsyncs the history store's segment tails.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on fsync failure.
    pub fn sync_history(&self) -> io::Result<()> {
        match &self.history {
            Some(history) => history.sync(),
            None => Ok(()),
        }
    }

    /// Archived record for `number` from the history store, if any.
    fn cold_transactions(&self, number: u64) -> Option<Vec<Vec<u8>>> {
        self.history.as_ref()?.transactions(number).ok().flatten()
    }

    fn cold_receipts(&self, number: u64) -> Option<Vec<Vec<u8>>> {
        self.history.as_ref()?.receipts(number).ok().flatten()
    }

    /// The encoded header of block `number`, served from the resident
    /// window or the archived segments — byte-identical either way.
    pub fn header_encoded(&self, number: u64) -> Option<Vec<u8>> {
        if let Some(block) = self.block(number) {
            return Some(block.header.encode());
        }
        self.history.as_ref()?.header(number).ok().flatten()
    }

    /// The decoded header of block `number`, warm or cold.
    pub fn header_at(&self, number: u64) -> Option<Header> {
        if let Some(block) = self.block(number) {
            return Some(block.header.clone());
        }
        let bytes = self.history.as_ref()?.header(number).ok().flatten()?;
        Header::decode(&bytes).ok()
    }

    /// The canonically encoded transactions of block `number`, in
    /// block order, warm or cold — byte-identical either way (cold
    /// records are the exact bytes whose ordered trie produced the
    /// header's `transactions_root`).
    pub fn transactions_encoded(&self, number: u64) -> Option<Vec<Vec<u8>>> {
        if let Some(block) = self.block(number) {
            return Some(
                block
                    .transactions
                    .iter()
                    .map(SignedTransaction::encode)
                    .collect(),
            );
        }
        self.cold_transactions(number)
    }

    /// The decoded transactions of block `number`, warm or cold.
    pub fn transactions_at(&self, number: u64) -> Option<Vec<SignedTransaction>> {
        if let Some(block) = self.block(number) {
            return Some(block.transactions.clone());
        }
        self.cold_transactions(number)?
            .iter()
            .map(|bytes| SignedTransaction::decode(bytes).ok())
            .collect()
    }

    /// The canonically encoded receipts of block `number`, warm or
    /// cold — byte-identical either way.
    pub fn receipts_encoded(&self, number: u64) -> Option<Vec<Vec<u8>>> {
        if let Some(receipts) = self.receipts(number) {
            return Some(receipts.iter().map(Receipt::encode).collect());
        }
        self.cold_receipts(number)
    }

    /// The encoded receipt at `(number, index)`, warm or cold.
    pub fn receipt_encoded(&self, number: u64, index: usize) -> Option<Vec<u8>> {
        if let Some(receipts) = self.receipts(number) {
            return receipts.get(index).map(Receipt::encode);
        }
        let mut encoded = self.cold_receipts(number)?;
        if index >= encoded.len() {
            return None;
        }
        Some(encoded.swap_remove(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::TransferExecutor;
    use crate::transaction::Transaction;
    use parp_crypto::SecretKey;

    fn funded_chain() -> (Blockchain, SecretKey) {
        let key = SecretKey::from_seed(b"rich");
        let chain = Blockchain::new(vec![(
            key.address(),
            U256::from(10u64) * U256::from(1_000_000_000_000_000_000u64),
        )]);
        (chain, key)
    }

    fn transfer(key: &SecretKey, nonce: u64, to: u64, value: u64) -> SignedTransaction {
        Transaction {
            nonce,
            gas_price: U256::from(12_000_000_000u64),
            gas_limit: 21_000,
            to: Some(Address::from_low_u64_be(to)),
            value: U256::from(value),
            data: Vec::new(),
        }
        .sign(key)
    }

    #[test]
    fn genesis_is_block_zero() {
        let (chain, _) = funded_chain();
        assert_eq!(chain.height(), 0);
        assert_eq!(chain.head().number(), 0);
        assert_eq!(chain.head().header.parent_hash, H256::ZERO);
    }

    #[test]
    fn produce_block_links_parent() {
        let (mut chain, key) = funded_chain();
        let genesis_hash = chain.head().hash();
        chain
            .produce_block(vec![transfer(&key, 0, 2, 100)], &mut TransferExecutor)
            .unwrap();
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.head().header.parent_hash, genesis_hash);
        assert_eq!(
            chain.balance(&Address::from_low_u64_be(2)),
            U256::from(100u64)
        );
    }

    #[test]
    fn fees_flow_to_beneficiary() {
        let (mut chain, key) = funded_chain();
        let before = chain.balance(&chain.beneficiary);
        chain
            .produce_block(vec![transfer(&key, 0, 2, 100)], &mut TransferExecutor)
            .unwrap();
        let after = chain.balance(&chain.beneficiary);
        assert_eq!(
            after - before,
            U256::from(21_000u64) * U256::from(12_000_000_000u64)
        );
    }

    #[test]
    fn bad_nonce_rejects_block() {
        let (mut chain, key) = funded_chain();
        let err = chain
            .produce_block(vec![transfer(&key, 5, 2, 100)], &mut TransferExecutor)
            .unwrap_err();
        assert!(matches!(
            err,
            BlockError::InvalidTransaction { index: 0, .. }
        ));
        assert_eq!(chain.height(), 0, "chain unchanged after rejection");
    }

    #[test]
    fn insufficient_gas_funds_rejected() {
        let key = SecretKey::from_seed(b"poor");
        let mut chain = Blockchain::new(vec![(key.address(), U256::from(100u64))]);
        let err = chain
            .produce_block(vec![transfer(&key, 0, 2, 1)], &mut TransferExecutor)
            .unwrap_err();
        assert!(matches!(err, BlockError::InvalidTransaction { .. }));
    }

    #[test]
    fn failed_transfer_still_charges_gas() {
        let key = SecretKey::from_seed(b"gas-only");
        // Enough for gas but not for the value.
        let gas_budget = U256::from(21_000u64) * U256::from(12_000_000_000u64);
        let mut chain = Blockchain::new(vec![(key.address(), gas_budget + U256::from(5u64))]);
        chain
            .produce_block(vec![transfer(&key, 0, 2, 1_000)], &mut TransferExecutor)
            .unwrap();
        let receipts = chain.receipts(1).unwrap();
        assert_eq!(receipts[0].status, 0);
        assert_eq!(chain.balance(&key.address()), U256::from(5u64));
        assert_eq!(chain.balance(&Address::from_low_u64_be(2)), U256::ZERO);
    }

    #[test]
    fn lookups_by_hash_and_number() {
        let (mut chain, key) = funded_chain();
        let tx = transfer(&key, 0, 2, 7);
        let tx_hash = tx.hash();
        chain
            .produce_block(vec![tx], &mut TransferExecutor)
            .unwrap();
        let head_hash = chain.head().hash();
        assert_eq!(chain.block_by_hash(&head_hash).unwrap().number(), 1);
        assert_eq!(chain.transaction_location(&tx_hash), Some((1, 0)));
        assert_eq!(chain.block_number_by_hash(&head_hash), Some(1));
    }

    #[test]
    fn recent_hash_window() {
        let (mut chain, key) = funded_chain();
        for nonce in 0..300 {
            chain
                .produce_block(vec![transfer(&key, nonce, 2, 1)], &mut TransferExecutor)
                .unwrap();
        }
        assert_eq!(chain.height(), 300);
        assert!(chain.recent_block_hash(300).is_some());
        assert!(chain.recent_block_hash(45).is_some()); // 300 - 45 = 255 < 256
        assert!(chain.recent_block_hash(44).is_none()); // 300 - 44 = 256
        assert!(chain.recent_block_hash(301).is_none()); // future
    }

    #[test]
    fn historical_state_is_frozen() {
        let (mut chain, key) = funded_chain();
        chain
            .produce_block(vec![transfer(&key, 0, 2, 100)], &mut TransferExecutor)
            .unwrap();
        chain
            .produce_block(vec![transfer(&key, 1, 2, 50)], &mut TransferExecutor)
            .unwrap();
        let to = Address::from_low_u64_be(2);
        assert_eq!(chain.state_at(0).unwrap().balance(&to), U256::ZERO);
        assert_eq!(chain.state_at(1).unwrap().balance(&to), U256::from(100u64));
        assert_eq!(chain.state_at(2).unwrap().balance(&to), U256::from(150u64));
    }

    #[test]
    fn proofs_verify_against_headers() {
        let (mut chain, key) = funded_chain();
        let txs: Vec<SignedTransaction> = (0..10).map(|i| transfer(&key, i, 2, i + 1)).collect();
        chain.produce_block(txs, &mut TransferExecutor).unwrap();
        let header = &chain.block(1).unwrap().header.clone();

        // Account proof against the state root.
        let proof = chain.account_proof_at(&key.address(), 1).unwrap();
        let account_key = keccak256(key.address().as_bytes());
        let value = parp_trie::verify_proof(header.state_root, account_key.as_bytes(), &proof)
            .unwrap()
            .unwrap();
        let account = crate::account::Account::decode(&value).unwrap();
        assert_eq!(account.nonce, 10);

        // Transaction proof against the transactions root.
        let tx_proof = chain.transaction_proof(1, 4).unwrap();
        let tx_key = parp_rlp::encode_u64(4);
        let tx_value = parp_trie::verify_proof(header.transactions_root, &tx_key, &tx_proof)
            .unwrap()
            .unwrap();
        assert_eq!(tx_value, chain.block(1).unwrap().transactions[4].encode());

        // Receipt proof against the receipts root.
        let receipt_proof = chain.receipt_proof(1, 4).unwrap();
        let receipt_value = parp_trie::verify_proof(header.receipts_root, &tx_key, &receipt_proof)
            .unwrap()
            .unwrap();
        let receipt = Receipt::decode(&receipt_value).unwrap();
        assert!(receipt.is_success());
    }

    #[test]
    fn only_head_snapshot_retains_built_trie() {
        let (mut chain, key) = funded_chain();
        for nonce in 0..5 {
            chain
                .produce_block(vec![transfer(&key, nonce, 2, 1)], &mut TransferExecutor)
                .unwrap();
        }
        let head = chain.height();
        assert!(
            chain.state_at(head).unwrap().trie_is_built(),
            "head snapshot keeps the trie built at block production"
        );
        for number in 0..head {
            assert!(
                !chain.state_at(number).unwrap().trie_is_built(),
                "historical snapshot {number} must not pin a frozen trie"
            );
        }
        // Historical proofs still work — they rebuild on demand.
        let proof = chain.account_proof_at(&key.address(), 1).unwrap();
        assert!(!proof.is_empty());
    }

    fn history_chain(blocks: u64, window: u64) -> (Blockchain, SecretKey, std::path::PathBuf) {
        let (mut chain, key) = funded_chain();
        let dir = parp_store::scratch_dir("chain-history").unwrap();
        let store = parp_store::BlockStore::open(&dir).unwrap();
        chain.attach_history(store, window).unwrap();
        for nonce in 0..blocks {
            chain
                .produce_block(vec![transfer(&key, nonce, 2, 1)], &mut TransferExecutor)
                .unwrap();
        }
        (chain, key, dir)
    }

    #[test]
    fn history_bounds_resident_window() {
        let (chain, _, dir) = history_chain(400, 0);
        assert_eq!(chain.height(), 400);
        assert_eq!(chain.resident_blocks(), MIN_HISTORY_WINDOW);
        assert_eq!(chain.resident_base(), 401 - MIN_HISTORY_WINDOW);
        // Resident accessors miss pruned blocks, cold accessors hit.
        assert!(chain.block(0).is_none());
        assert!(chain.block(chain.resident_base()).is_some());
        assert!(chain.header_encoded(0).is_some());
        assert!(chain.history_disk_bytes() > 0);
        // The BLOCKHASH window still works at the head.
        assert!(chain.recent_block_hash(chain.height() - 255).is_some());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn cold_reads_are_byte_identical_to_resident_reads() {
        // Two identical chains, one pruned: every cold read off the
        // pruned chain must match the fully resident one byte for byte.
        let (cold, _, dir) = history_chain(300, 0);
        let (mut warm, key) = funded_chain();
        for nonce in 0..300 {
            warm.produce_block(vec![transfer(&key, nonce, 2, 1)], &mut TransferExecutor)
                .unwrap();
        }
        for number in [0u64, 1, 7, 150, 299, 300] {
            assert_eq!(
                cold.header_encoded(number),
                warm.block(number).map(|b| b.header.encode()),
                "header {number}"
            );
            assert_eq!(
                cold.transactions_encoded(number),
                warm.transactions_encoded(number),
                "transactions {number}"
            );
            assert_eq!(
                cold.receipts_encoded(number),
                warm.receipts_encoded(number),
                "receipts {number}"
            );
            if number >= 1 {
                assert_eq!(
                    cold.transaction_proof(number, 0),
                    warm.transaction_proof(number, 0),
                    "tx proof {number}"
                );
                assert_eq!(
                    cold.receipt_proof(number, 0),
                    warm.receipt_proof(number, 0),
                    "receipt proof {number}"
                );
            }
        }
        // Cold proofs still verify against the archived header roots.
        let header = Header::decode(&cold.header_encoded(5).unwrap()).unwrap();
        let proof = cold.transaction_proof(5, 0).unwrap();
        let value =
            parp_trie::verify_proof(header.transactions_root, &parp_rlp::encode_u64(0), &proof)
                .unwrap()
                .unwrap();
        assert_eq!(value, cold.transactions_encoded(5).unwrap()[0]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn attach_history_archives_existing_blocks() {
        let (mut chain, key) = funded_chain();
        for nonce in 0..10 {
            chain
                .produce_block(vec![transfer(&key, nonce, 2, 1)], &mut TransferExecutor)
                .unwrap();
        }
        let dir = parp_store::scratch_dir("late-attach").unwrap();
        let store = parp_store::BlockStore::open(&dir).unwrap();
        chain.attach_history(store.clone(), 0).unwrap();
        // All 11 blocks (genesis included) were archived on attach.
        assert_eq!(store.next_number(), 11);
        assert_eq!(
            store.header(4).unwrap().as_deref(),
            Some(chain.block(4).unwrap().header.encode().as_slice())
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn foreign_history_store_is_rejected() {
        let (mut chain_a, key) = funded_chain();
        chain_a
            .produce_block(vec![transfer(&key, 0, 2, 1)], &mut TransferExecutor)
            .unwrap();
        let dir = parp_store::scratch_dir("foreign").unwrap();
        let store = parp_store::BlockStore::open(&dir).unwrap();
        chain_a.attach_history(store.clone(), 0).unwrap();
        // A different chain (different alloc ⇒ different genesis) must
        // refuse the same store.
        let mut other = Blockchain::new(vec![(Address::from_low_u64_be(7), U256::from(1u64))]);
        assert!(other.attach_history(store, 0).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn transaction_location_survives_pruning() {
        let (mut chain, key) = funded_chain();
        let tx = transfer(&key, 0, 2, 7);
        let tx_hash = tx.hash();
        let dir = parp_store::scratch_dir("txloc").unwrap();
        chain
            .attach_history(parp_store::BlockStore::open(&dir).unwrap(), 0)
            .unwrap();
        chain
            .produce_block(vec![tx], &mut TransferExecutor)
            .unwrap();
        for nonce in 1..300 {
            chain
                .produce_block(vec![transfer(&key, nonce, 2, 1)], &mut TransferExecutor)
                .unwrap();
        }
        assert!(chain.block(1).is_none(), "block 1 pruned");
        assert_eq!(chain.transaction_location(&tx_hash), Some((1, 0)));
        let decoded = chain.transactions_at(1).unwrap();
        assert_eq!(decoded[0].hash(), tx_hash);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn state_roots_differ_across_blocks() {
        let (mut chain, key) = funded_chain();
        let root0 = chain.block(0).unwrap().header.state_root;
        chain
            .produce_block(vec![transfer(&key, 0, 2, 100)], &mut TransferExecutor)
            .unwrap();
        let root1 = chain.block(1).unwrap().header.state_root;
        assert_ne!(root0, root1);
    }
}
