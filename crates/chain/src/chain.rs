//! The simulated blockchain: deterministic block production over the
//! pluggable execution layer, with snapshot-backed historical queries and
//! Merkle proofs — everything a PARP full node needs to serve.

use crate::block::{receipts_trie, Block};
use crate::exec::{BlockContext, TransactionExecutor};
use crate::header::Header;
use crate::receipt::Receipt;
use crate::state::State;
use crate::transaction::SignedTransaction;
use parp_crypto::keccak256;
use parp_primitives::{Address, H256, U256};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// EVM `BLOCKHASH` visibility window, which bounds fraud-proof freshness
/// exactly as in the paper's prototype (§VI).
pub const BLOCK_HASH_WINDOW: u64 = 256;

/// Seconds between consecutive blocks (Ethereum's post-merge slot time).
pub const BLOCK_INTERVAL: u64 = 12;

/// Errors from block production.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// A transaction failed pre-execution validation.
    InvalidTransaction {
        /// Index within the submitted batch.
        index: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The block's total gas exceeded the block gas limit.
    GasLimitExceeded,
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::InvalidTransaction { index, reason } => {
                write!(f, "transaction {index} is invalid: {reason}")
            }
            BlockError::GasLimitExceeded => write!(f, "block gas limit exceeded"),
        }
    }
}

impl Error for BlockError {}

/// A deterministic in-process blockchain.
///
/// # Examples
///
/// ```
/// use parp_chain::{Blockchain, Transaction, TransferExecutor};
/// use parp_crypto::SecretKey;
/// use parp_primitives::{Address, U256};
///
/// let alice = SecretKey::from_seed(b"alice");
/// let mut chain = Blockchain::new(vec![(alice.address(), U256::from(1_000_000u64))]);
/// let tx = Transaction {
///     nonce: 0,
///     gas_price: U256::ZERO,
///     gas_limit: 21_000,
///     to: Some(Address::from_low_u64_be(0xb0b)),
///     value: U256::from(123u64),
///     data: Vec::new(),
/// }
/// .sign(&alice);
/// chain.produce_block(vec![tx], &mut TransferExecutor).unwrap();
/// assert_eq!(chain.balance(&Address::from_low_u64_be(0xb0b)), U256::from(123u64));
/// ```
#[derive(Debug, Clone)]
pub struct Blockchain {
    blocks: Vec<Block>,
    receipts: Vec<Vec<Receipt>>,
    snapshots: Vec<State>,
    state: State,
    hash_index: HashMap<H256, u64>,
    tx_index: HashMap<H256, (u64, usize)>,
    beneficiary: Address,
    gas_limit: u64,
    genesis_timestamp: u64,
}

impl Blockchain {
    /// Creates a chain whose genesis state holds the given balances.
    pub fn new<I: IntoIterator<Item = (Address, U256)>>(alloc: I) -> Self {
        let state = State::with_alloc(alloc);
        let genesis_timestamp = 1_700_000_000;
        let genesis = Block {
            header: Header {
                parent_hash: H256::ZERO,
                ommers_hash: keccak256(&[0xc0]),
                beneficiary: Address::ZERO,
                state_root: state.state_root(),
                transactions_root: parp_trie::empty_root(),
                receipts_root: parp_trie::empty_root(),
                difficulty: U256::ZERO,
                number: 0,
                gas_limit: 30_000_000,
                gas_used: 0,
                timestamp: genesis_timestamp,
                extra_data: b"parp-genesis".to_vec(),
            },
            transactions: Vec::new(),
        };
        let mut hash_index = HashMap::new();
        hash_index.insert(genesis.hash(), 0);
        Blockchain {
            snapshots: vec![state.clone()],
            state,
            receipts: vec![Vec::new()],
            blocks: vec![genesis],
            hash_index,
            tx_index: HashMap::new(),
            beneficiary: Address::from_low_u64_be(0xbe9ef1c1a97),
            gas_limit: 30_000_000,
            genesis_timestamp,
        }
    }

    /// Produces and appends a block containing `transactions`.
    ///
    /// Each transaction is validated (signature, nonce, gas purchase),
    /// executed through `executor`, and folded into the block's receipt
    /// and state roots.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError`] when any transaction fails validation; the
    /// chain is left unchanged in that case.
    pub fn produce_block(
        &mut self,
        transactions: Vec<SignedTransaction>,
        executor: &mut dyn TransactionExecutor,
    ) -> Result<&Block, BlockError> {
        let parent = self.blocks.last().expect("genesis always present");
        let number = parent.number() + 1;
        let window_start = number.saturating_sub(BLOCK_HASH_WINDOW);
        let recent_hashes: Vec<(u64, H256)> = (window_start..number)
            .map(|n| (n, self.blocks[n as usize].hash()))
            .collect();
        let ctx = BlockContext {
            number,
            timestamp: self.genesis_timestamp + number * BLOCK_INTERVAL,
            beneficiary: self.beneficiary,
            recent_hashes,
        };
        let mut state = self.state.clone();
        let mut receipts = Vec::with_capacity(transactions.len());
        let mut cumulative_gas = 0u64;
        for (index, tx) in transactions.iter().enumerate() {
            let receipt = Self::apply_transaction(&mut state, &ctx, tx, executor, cumulative_gas)
                .map_err(|reason| BlockError::InvalidTransaction { index, reason })?;
            cumulative_gas = receipt.cumulative_gas_used;
            if cumulative_gas > self.gas_limit {
                return Err(BlockError::GasLimitExceeded);
            }
            receipts.push(receipt);
        }
        let transactions_root = {
            let encoded: Vec<Vec<u8>> =
                transactions.iter().map(SignedTransaction::encode).collect();
            parp_trie::ordered_trie(encoded.iter().map(Vec::as_slice)).root_hash()
        };
        let block = Block {
            header: Header {
                parent_hash: parent.hash(),
                ommers_hash: keccak256(&[0xc0]),
                beneficiary: ctx.beneficiary,
                state_root: state.state_root(),
                transactions_root,
                receipts_root: receipts_trie(&receipts).root_hash(),
                difficulty: U256::ZERO,
                number,
                gas_limit: self.gas_limit,
                gas_used: cumulative_gas,
                timestamp: ctx.timestamp,
                extra_data: Vec::new(),
            },
            transactions,
        };
        self.hash_index.insert(block.hash(), number);
        for (i, tx) in block.transactions.iter().enumerate() {
            self.tx_index.insert(tx.hash(), (number, i));
        }
        // The outgoing head's memoized trie would otherwise be retained
        // forever by the snapshot store (one full frozen trie per block);
        // drop it — snapshot caches that still want it hold their own Arc.
        if let Some(previous_head) = self.snapshots.last_mut() {
            previous_head.release_trie();
        }
        self.state = state.clone();
        // The chain IS its history: blocks, receipts and snapshots grow
        // one entry per produced block by design (tries are released
        // above, so growth is per-header, not per-frozen-trie).
        // parp-allow(W004): per-block state snapshot is the design
        self.snapshots.push(state);
        // parp-allow(W004): per-block receipts are the design
        self.receipts.push(receipts);
        // parp-allow(W004): the block list is the chain itself
        self.blocks.push(block);
        Ok(self.blocks.last().expect("just pushed"))
    }

    fn apply_transaction(
        state: &mut State,
        ctx: &BlockContext,
        tx: &SignedTransaction,
        executor: &mut dyn TransactionExecutor,
        cumulative_gas: u64,
    ) -> Result<Receipt, String> {
        let sender = tx
            .sender()
            .map_err(|e| format!("sender recovery failed: {e}"))?;
        let body = tx.tx();
        let expected_nonce = state.nonce(&sender);
        if body.nonce != expected_nonce {
            return Err(format!(
                "nonce mismatch: expected {expected_nonce}, got {}",
                body.nonce
            ));
        }
        let intrinsic = body.intrinsic_gas();
        if body.gas_limit < intrinsic {
            return Err(format!(
                "gas limit {} below intrinsic cost {intrinsic}",
                body.gas_limit
            ));
        }
        // Buy gas up front, like Ethereum.
        let upfront = body
            .gas_price
            .checked_mul(U256::from(body.gas_limit))
            .ok_or("gas cost overflow")?;
        if !state.debit(&sender, upfront) {
            return Err("insufficient funds for gas".to_string());
        }
        state.account_mut(sender).nonce += 1;
        let mut result = executor.execute(state, ctx, tx, sender, intrinsic);
        if result.gas_used > body.gas_limit {
            // Out of gas: consume everything, drop effects the executor
            // reported (executors revert their own state on failure).
            result.success = false;
            result.gas_used = body.gas_limit;
            result.logs.clear();
        }
        // Refund unused gas; route the fee to the beneficiary.
        let refund = body.gas_price * U256::from(body.gas_limit - result.gas_used);
        state.credit(sender, refund);
        let fee = body.gas_price * U256::from(result.gas_used);
        state.credit(ctx.beneficiary, fee);
        Ok(Receipt {
            status: result.success as u64,
            cumulative_gas_used: cumulative_gas + result.gas_used,
            logs: result.logs,
        })
    }

    /// The chain head.
    pub fn head(&self) -> &Block {
        self.blocks.last().expect("genesis always present")
    }

    /// Current chain height.
    pub fn height(&self) -> u64 {
        self.head().number()
    }

    /// Block by height.
    pub fn block(&self, number: u64) -> Option<&Block> {
        self.blocks.get(number as usize)
    }

    /// Block by hash.
    pub fn block_by_hash(&self, hash: &H256) -> Option<&Block> {
        self.hash_index.get(hash).and_then(|&n| self.block(n))
    }

    /// Height of a block hash, if known.
    pub fn block_number_by_hash(&self, hash: &H256) -> Option<u64> {
        self.hash_index.get(hash).copied()
    }

    /// The hash of block `number` *if it lies within the 256-block
    /// `BLOCKHASH` window* of the head — the same visibility constraint
    /// the paper's on-chain fraud verification relies on.
    pub fn recent_block_hash(&self, number: u64) -> Option<H256> {
        let head = self.height();
        if number > head || head.saturating_sub(number) >= BLOCK_HASH_WINDOW {
            return None;
        }
        self.block(number).map(Block::hash)
    }

    /// Receipts for block `number`.
    pub fn receipts(&self, number: u64) -> Option<&[Receipt]> {
        self.receipts.get(number as usize).map(Vec::as_slice)
    }

    /// The state snapshot *after* executing block `number`.
    pub fn state_at(&self, number: u64) -> Option<&State> {
        self.snapshots.get(number as usize)
    }

    /// The current world state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Current balance of an address.
    pub fn balance(&self, address: &Address) -> U256 {
        self.state.balance(address)
    }

    /// Current nonce of an address.
    pub fn nonce(&self, address: &Address) -> u64 {
        self.state.nonce(address)
    }

    /// Locates a transaction by hash: `(block number, index)`.
    pub fn transaction_location(&self, hash: &H256) -> Option<(u64, usize)> {
        self.tx_index.get(hash).copied()
    }

    /// Account Merkle proof at a given block height, verifiable against
    /// that block's `state_root`.
    pub fn account_proof_at(&self, address: &Address, number: u64) -> Option<Vec<Vec<u8>>> {
        self.state_at(number).map(|s| s.account_proof(address))
    }

    /// Transaction inclusion proof, verifiable against the block's
    /// `transactions_root`.
    pub fn transaction_proof(&self, number: u64, index: usize) -> Option<Vec<Vec<u8>>> {
        self.block(number).and_then(|b| b.transaction_proof(index))
    }

    /// Receipt inclusion proof, verifiable against the block's
    /// `receipts_root`.
    pub fn receipt_proof(&self, number: u64, index: usize) -> Option<Vec<Vec<u8>>> {
        let receipts = self.receipts(number)?;
        if index >= receipts.len() {
            return None;
        }
        Some(receipts_trie(receipts).prove(&parp_rlp::encode_u64(index as u64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::TransferExecutor;
    use crate::transaction::Transaction;
    use parp_crypto::SecretKey;

    fn funded_chain() -> (Blockchain, SecretKey) {
        let key = SecretKey::from_seed(b"rich");
        let chain = Blockchain::new(vec![(
            key.address(),
            U256::from(10u64) * U256::from(1_000_000_000_000_000_000u64),
        )]);
        (chain, key)
    }

    fn transfer(key: &SecretKey, nonce: u64, to: u64, value: u64) -> SignedTransaction {
        Transaction {
            nonce,
            gas_price: U256::from(12_000_000_000u64),
            gas_limit: 21_000,
            to: Some(Address::from_low_u64_be(to)),
            value: U256::from(value),
            data: Vec::new(),
        }
        .sign(key)
    }

    #[test]
    fn genesis_is_block_zero() {
        let (chain, _) = funded_chain();
        assert_eq!(chain.height(), 0);
        assert_eq!(chain.head().number(), 0);
        assert_eq!(chain.head().header.parent_hash, H256::ZERO);
    }

    #[test]
    fn produce_block_links_parent() {
        let (mut chain, key) = funded_chain();
        let genesis_hash = chain.head().hash();
        chain
            .produce_block(vec![transfer(&key, 0, 2, 100)], &mut TransferExecutor)
            .unwrap();
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.head().header.parent_hash, genesis_hash);
        assert_eq!(
            chain.balance(&Address::from_low_u64_be(2)),
            U256::from(100u64)
        );
    }

    #[test]
    fn fees_flow_to_beneficiary() {
        let (mut chain, key) = funded_chain();
        let before = chain.balance(&chain.beneficiary);
        chain
            .produce_block(vec![transfer(&key, 0, 2, 100)], &mut TransferExecutor)
            .unwrap();
        let after = chain.balance(&chain.beneficiary);
        assert_eq!(
            after - before,
            U256::from(21_000u64) * U256::from(12_000_000_000u64)
        );
    }

    #[test]
    fn bad_nonce_rejects_block() {
        let (mut chain, key) = funded_chain();
        let err = chain
            .produce_block(vec![transfer(&key, 5, 2, 100)], &mut TransferExecutor)
            .unwrap_err();
        assert!(matches!(
            err,
            BlockError::InvalidTransaction { index: 0, .. }
        ));
        assert_eq!(chain.height(), 0, "chain unchanged after rejection");
    }

    #[test]
    fn insufficient_gas_funds_rejected() {
        let key = SecretKey::from_seed(b"poor");
        let mut chain = Blockchain::new(vec![(key.address(), U256::from(100u64))]);
        let err = chain
            .produce_block(vec![transfer(&key, 0, 2, 1)], &mut TransferExecutor)
            .unwrap_err();
        assert!(matches!(err, BlockError::InvalidTransaction { .. }));
    }

    #[test]
    fn failed_transfer_still_charges_gas() {
        let key = SecretKey::from_seed(b"gas-only");
        // Enough for gas but not for the value.
        let gas_budget = U256::from(21_000u64) * U256::from(12_000_000_000u64);
        let mut chain = Blockchain::new(vec![(key.address(), gas_budget + U256::from(5u64))]);
        chain
            .produce_block(vec![transfer(&key, 0, 2, 1_000)], &mut TransferExecutor)
            .unwrap();
        let receipts = chain.receipts(1).unwrap();
        assert_eq!(receipts[0].status, 0);
        assert_eq!(chain.balance(&key.address()), U256::from(5u64));
        assert_eq!(chain.balance(&Address::from_low_u64_be(2)), U256::ZERO);
    }

    #[test]
    fn lookups_by_hash_and_number() {
        let (mut chain, key) = funded_chain();
        let tx = transfer(&key, 0, 2, 7);
        let tx_hash = tx.hash();
        chain
            .produce_block(vec![tx], &mut TransferExecutor)
            .unwrap();
        let head_hash = chain.head().hash();
        assert_eq!(chain.block_by_hash(&head_hash).unwrap().number(), 1);
        assert_eq!(chain.transaction_location(&tx_hash), Some((1, 0)));
        assert_eq!(chain.block_number_by_hash(&head_hash), Some(1));
    }

    #[test]
    fn recent_hash_window() {
        let (mut chain, key) = funded_chain();
        for nonce in 0..300 {
            chain
                .produce_block(vec![transfer(&key, nonce, 2, 1)], &mut TransferExecutor)
                .unwrap();
        }
        assert_eq!(chain.height(), 300);
        assert!(chain.recent_block_hash(300).is_some());
        assert!(chain.recent_block_hash(45).is_some()); // 300 - 45 = 255 < 256
        assert!(chain.recent_block_hash(44).is_none()); // 300 - 44 = 256
        assert!(chain.recent_block_hash(301).is_none()); // future
    }

    #[test]
    fn historical_state_is_frozen() {
        let (mut chain, key) = funded_chain();
        chain
            .produce_block(vec![transfer(&key, 0, 2, 100)], &mut TransferExecutor)
            .unwrap();
        chain
            .produce_block(vec![transfer(&key, 1, 2, 50)], &mut TransferExecutor)
            .unwrap();
        let to = Address::from_low_u64_be(2);
        assert_eq!(chain.state_at(0).unwrap().balance(&to), U256::ZERO);
        assert_eq!(chain.state_at(1).unwrap().balance(&to), U256::from(100u64));
        assert_eq!(chain.state_at(2).unwrap().balance(&to), U256::from(150u64));
    }

    #[test]
    fn proofs_verify_against_headers() {
        let (mut chain, key) = funded_chain();
        let txs: Vec<SignedTransaction> = (0..10).map(|i| transfer(&key, i, 2, i + 1)).collect();
        chain.produce_block(txs, &mut TransferExecutor).unwrap();
        let header = &chain.block(1).unwrap().header.clone();

        // Account proof against the state root.
        let proof = chain.account_proof_at(&key.address(), 1).unwrap();
        let account_key = keccak256(key.address().as_bytes());
        let value = parp_trie::verify_proof(header.state_root, account_key.as_bytes(), &proof)
            .unwrap()
            .unwrap();
        let account = crate::account::Account::decode(&value).unwrap();
        assert_eq!(account.nonce, 10);

        // Transaction proof against the transactions root.
        let tx_proof = chain.transaction_proof(1, 4).unwrap();
        let tx_key = parp_rlp::encode_u64(4);
        let tx_value = parp_trie::verify_proof(header.transactions_root, &tx_key, &tx_proof)
            .unwrap()
            .unwrap();
        assert_eq!(tx_value, chain.block(1).unwrap().transactions[4].encode());

        // Receipt proof against the receipts root.
        let receipt_proof = chain.receipt_proof(1, 4).unwrap();
        let receipt_value = parp_trie::verify_proof(header.receipts_root, &tx_key, &receipt_proof)
            .unwrap()
            .unwrap();
        let receipt = Receipt::decode(&receipt_value).unwrap();
        assert!(receipt.is_success());
    }

    #[test]
    fn only_head_snapshot_retains_built_trie() {
        let (mut chain, key) = funded_chain();
        for nonce in 0..5 {
            chain
                .produce_block(vec![transfer(&key, nonce, 2, 1)], &mut TransferExecutor)
                .unwrap();
        }
        let head = chain.height();
        assert!(
            chain.state_at(head).unwrap().trie_is_built(),
            "head snapshot keeps the trie built at block production"
        );
        for number in 0..head {
            assert!(
                !chain.state_at(number).unwrap().trie_is_built(),
                "historical snapshot {number} must not pin a frozen trie"
            );
        }
        // Historical proofs still work — they rebuild on demand.
        let proof = chain.account_proof_at(&key.address(), 1).unwrap();
        assert!(!proof.is_empty());
    }

    #[test]
    fn state_roots_differ_across_blocks() {
        let (mut chain, key) = funded_chain();
        let root0 = chain.block(0).unwrap().header.state_root;
        chain
            .produce_block(vec![transfer(&key, 0, 2, 100)], &mut TransferExecutor)
            .unwrap();
        let root1 = chain.block(1).unwrap().header.state_root;
        assert_ne!(root0, root1);
    }
}
