//! World state: accounts keyed by address, committed to a secure Merkle
//! Patricia Trie (keys are `keccak256(address)`, as in Ethereum).

use crate::account::Account;
use parp_crypto::keccak256;
use parp_primitives::{Address, H256, U256};
use parp_trie::{FrozenTrie, Trie};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// The world state at a point in time.
///
/// The secure state trie over the accounts is memoized: the first call to
/// [`State::state_root`], [`State::account_proof`],
/// [`State::account_multiproof`] or [`State::shared_trie`] builds it once,
/// and every later call reuses the same [`Arc`]-shared trie until a write
/// invalidates it. Clones share the built trie (the contents are equal),
/// so chain snapshots inherit the trie built at block production for free.
///
/// # Examples
///
/// ```
/// use parp_chain::State;
/// use parp_primitives::{Address, U256};
///
/// let mut state = State::new();
/// let alice = Address::from_low_u64_be(1);
/// state.credit(alice, U256::from(100u64));
/// assert_eq!(state.balance(&alice), U256::from(100u64));
/// ```
#[derive(Debug, Clone, Default)]
pub struct State {
    accounts: BTreeMap<Address, Account>,
    /// Lazily built, frozen secure trie over `accounts` (structure plus
    /// the O(depth)-proof encoding index); reset by every write.
    /// `OnceLock` keeps `&State` shareable across threads (the sharded
    /// proof executor walks one frozen trie from many workers).
    trie: OnceLock<Arc<FrozenTrie>>,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        // The memoized trie is derived data; only the accounts count.
        self.accounts == other.accounts
    }
}

impl Eq for State {}

impl State {
    /// Creates an empty state.
    pub fn new() -> Self {
        State {
            accounts: BTreeMap::new(),
            trie: OnceLock::new(),
        }
    }

    /// Creates a state pre-funded with the given balances.
    pub fn with_alloc<I: IntoIterator<Item = (Address, U256)>>(alloc: I) -> Self {
        let mut state = State::new();
        for (address, balance) in alloc {
            state
                .accounts
                .insert(address, Account::with_balance(balance));
        }
        state
    }

    /// Looks up an account.
    pub fn account(&self, address: &Address) -> Option<&Account> {
        self.accounts.get(address)
    }

    /// Returns a mutable account record, creating a default one on first
    /// touch. Invalidates the memoized trie (the caller holds a mutable
    /// handle, so the account must be assumed changed).
    pub fn account_mut(&mut self, address: Address) -> &mut Account {
        self.trie.take();
        self.accounts.entry(address).or_default()
    }

    /// The balance of an address (zero for absent accounts).
    pub fn balance(&self, address: &Address) -> U256 {
        self.accounts
            .get(address)
            .map(|a| a.balance)
            .unwrap_or(U256::ZERO)
    }

    /// The nonce of an address (zero for absent accounts).
    pub fn nonce(&self, address: &Address) -> u64 {
        self.accounts.get(address).map(|a| a.nonce).unwrap_or(0)
    }

    /// Adds `amount` to an address, creating the account if needed.
    pub fn credit(&mut self, address: Address, amount: U256) {
        let account = self.account_mut(address);
        account.balance = account.balance.saturating_add(amount);
    }

    /// Removes `amount` from an address.
    ///
    /// Returns `false` (leaving the balance untouched) when funds are
    /// insufficient.
    #[must_use]
    pub fn debit(&mut self, address: &Address, amount: U256) -> bool {
        match self.accounts.get_mut(address) {
            Some(account) => match account.balance.checked_sub(amount) {
                Some(rest) => {
                    account.balance = rest;
                    self.trie.take();
                    true
                }
                None => false,
            },
            None => amount.is_zero(),
        }
    }

    /// Moves `amount` from `from` to `to`; `false` on insufficient funds.
    #[must_use]
    pub fn transfer(&mut self, from: &Address, to: Address, amount: U256) -> bool {
        if !self.debit(from, amount) {
            return false;
        }
        self.credit(to, amount);
        true
    }

    /// Number of touched accounts.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// Returns `true` when no accounts exist.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Iterates over `(address, account)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&Address, &Account)> {
        self.accounts.iter()
    }

    /// Builds the secure state trie from scratch:
    /// `keccak256(address) → rlp(account)`.
    ///
    /// Bypasses the memo deliberately (cold-path baseline for the
    /// runtime benches); normal callers want [`State::shared_trie`].
    pub fn build_trie(&self) -> Trie {
        let mut trie = Trie::new();
        for (address, account) in &self.accounts {
            trie.insert(
                keccak256(address.as_bytes()).as_bytes().to_vec(),
                account.encode(),
            );
        }
        trie
    }

    /// The memoized, frozen secure state trie, shared behind an [`Arc`]
    /// so snapshot caches and shard workers can hold it without copying.
    /// Built (and its proof index computed) at most once per write
    /// generation.
    pub fn shared_trie(&self) -> Arc<FrozenTrie> {
        self.trie
            .get_or_init(|| Arc::new(FrozenTrie::new(self.build_trie())))
            .clone()
    }

    /// Whether the memoized trie is currently built (no rebuild would be
    /// paid for a proof right now). Observability for cache tests.
    pub fn trie_is_built(&self) -> bool {
        self.trie.get().is_some()
    }

    /// Drops this state's memoized trie without touching the accounts.
    ///
    /// Retention control for long-lived snapshot stores: a frozen trie
    /// (structure + encoding index) is several times the size of the
    /// account map, so a chain that keeps every historical snapshot
    /// releases the memo when a snapshot stops being the head — callers
    /// that still need the build (the runtime's `SnapshotCache`) hold
    /// their own `Arc` and control its lifetime via LRU eviction.
    pub fn release_trie(&mut self) {
        self.trie.take();
    }

    /// The state root committed into block headers.
    pub fn state_root(&self) -> H256 {
        self.shared_trie().root_hash()
    }

    /// Merkle proof for an account (inclusion or exclusion), verifiable
    /// against [`State::state_root`] with the key `keccak256(address)`.
    pub fn account_proof(&self, address: &Address) -> Vec<Vec<u8>> {
        self.shared_trie()
            .prove(keccak256(address.as_bytes()).as_bytes())
    }

    /// Deduplicated Merkle multiproof for many accounts at once,
    /// verifiable against [`State::state_root`] with
    /// [`parp_trie::verify_many`] and the keys `keccak256(address)`.
    ///
    /// Uses the memoized trie — back-to-back proofs within one block
    /// generation pay for a single build.
    pub fn account_multiproof(&self, addresses: &[Address]) -> Vec<Vec<u8>> {
        self.shared_trie().prove_many(
            addresses
                .iter()
                .map(|address| keccak256(address.as_bytes()).as_bytes().to_vec()),
        )
    }

    /// [`State::account_multiproof`] into a reusable
    /// [`parp_trie::ProofBuf`]: byte-identical node set, serialized
    /// zero-copy into one contiguous allocation.
    pub fn account_multiproof_into(&self, addresses: &[Address], out: &mut parp_trie::ProofBuf) {
        let keys: Vec<H256> = addresses
            .iter()
            .map(|address| keccak256(address.as_bytes()))
            .collect();
        self.shared_trie().multiproof_into(&keys, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_trie::verify_proof;

    fn addr(n: u64) -> Address {
        Address::from_low_u64_be(n)
    }

    #[test]
    fn empty_state_has_empty_root() {
        assert_eq!(State::new().state_root(), parp_trie::empty_root());
    }

    #[test]
    fn credit_debit_transfer() {
        let mut state = State::new();
        state.credit(addr(1), U256::from(100u64));
        assert!(state.debit(&addr(1), U256::from(30u64)));
        assert!(!state.debit(&addr(1), U256::from(1000u64)));
        assert!(state.transfer(&addr(1), addr(2), U256::from(70u64)));
        assert_eq!(state.balance(&addr(1)), U256::ZERO);
        assert_eq!(state.balance(&addr(2)), U256::from(70u64));
        assert!(!state.transfer(&addr(1), addr(2), U256::ONE));
        // Debiting zero from a missing account is fine.
        assert!(state.debit(&addr(9), U256::ZERO));
        assert!(!state.debit(&addr(9), U256::ONE));
    }

    #[test]
    fn root_reflects_balances() {
        let mut a = State::new();
        a.credit(addr(1), U256::from(5u64));
        let mut b = State::new();
        b.credit(addr(1), U256::from(6u64));
        assert_ne!(a.state_root(), b.state_root());
        let _ = b.debit(&addr(1), U256::ONE);
        assert_eq!(a.state_root(), b.state_root());
    }

    #[test]
    fn account_proof_verifies_against_root() {
        let mut state = State::new();
        for i in 1..50u64 {
            state.credit(addr(i), U256::from(i * 1000));
        }
        let root = state.state_root();
        let proof = state.account_proof(&addr(7));
        let key = keccak256(addr(7).as_bytes());
        let value = verify_proof(root, key.as_bytes(), &proof).unwrap().unwrap();
        let account = Account::decode(&value).unwrap();
        assert_eq!(account.balance, U256::from(7000u64));
    }

    #[test]
    fn absent_account_proof_is_exclusion() {
        let mut state = State::new();
        state.credit(addr(1), U256::ONE);
        let root = state.state_root();
        let proof = state.account_proof(&addr(999));
        let key = keccak256(addr(999).as_bytes());
        assert_eq!(verify_proof(root, key.as_bytes(), &proof).unwrap(), None);
    }

    #[test]
    fn trie_memoized_until_write() {
        let mut state = State::new();
        for i in 1..20u64 {
            state.credit(addr(i), U256::from(i));
        }
        assert!(!state.trie_is_built());
        let root = state.state_root();
        assert!(state.trie_is_built());
        // Back-to-back reads reuse the same built trie.
        let first = state.shared_trie();
        let _ = state.account_proof(&addr(7));
        let _ = state.account_multiproof(&[addr(7), addr(8)]);
        assert!(Arc::ptr_eq(&first, &state.shared_trie()));
        // Clones share it too.
        let snapshot = state.clone();
        assert!(snapshot.trie_is_built());
        assert!(Arc::ptr_eq(&first, &snapshot.shared_trie()));
        // A write invalidates, and the rebuilt trie reflects it.
        state.credit(addr(1), U256::ONE);
        assert!(!state.trie_is_built());
        assert_ne!(state.state_root(), root);
        // The untouched clone keeps the old root.
        assert_eq!(snapshot.state_root(), root);
    }

    #[test]
    fn failed_debit_keeps_memo() {
        let mut state = State::new();
        state.credit(addr(1), U256::from(10u64));
        let root = state.state_root();
        assert!(!state.debit(&addr(1), U256::from(100u64)));
        assert!(state.trie_is_built(), "no-op debit must not invalidate");
        assert_eq!(state.state_root(), root);
    }

    #[test]
    fn alloc_constructor() {
        let state = State::with_alloc([(addr(1), U256::ONE), (addr(2), U256::from(2u64))]);
        assert_eq!(state.len(), 2);
        assert_eq!(state.balance(&addr(2)), U256::from(2u64));
    }
}
