//! World state: accounts keyed by address, committed to a secure Merkle
//! Patricia Trie (keys are `keccak256(address)`, as in Ethereum).

use crate::account::Account;
use parp_crypto::keccak256;
use parp_primitives::{Address, H256, U256};
use parp_trie::Trie;
use std::collections::BTreeMap;

/// The world state at a point in time.
///
/// # Examples
///
/// ```
/// use parp_chain::State;
/// use parp_primitives::{Address, U256};
///
/// let mut state = State::new();
/// let alice = Address::from_low_u64_be(1);
/// state.credit(alice, U256::from(100u64));
/// assert_eq!(state.balance(&alice), U256::from(100u64));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct State {
    accounts: BTreeMap<Address, Account>,
}

impl State {
    /// Creates an empty state.
    pub fn new() -> Self {
        State {
            accounts: BTreeMap::new(),
        }
    }

    /// Creates a state pre-funded with the given balances.
    pub fn with_alloc<I: IntoIterator<Item = (Address, U256)>>(alloc: I) -> Self {
        let mut state = State::new();
        for (address, balance) in alloc {
            state
                .accounts
                .insert(address, Account::with_balance(balance));
        }
        state
    }

    /// Looks up an account.
    pub fn account(&self, address: &Address) -> Option<&Account> {
        self.accounts.get(address)
    }

    /// Returns a mutable account record, creating a default one on first
    /// touch.
    pub fn account_mut(&mut self, address: Address) -> &mut Account {
        self.accounts.entry(address).or_default()
    }

    /// The balance of an address (zero for absent accounts).
    pub fn balance(&self, address: &Address) -> U256 {
        self.accounts
            .get(address)
            .map(|a| a.balance)
            .unwrap_or(U256::ZERO)
    }

    /// The nonce of an address (zero for absent accounts).
    pub fn nonce(&self, address: &Address) -> u64 {
        self.accounts.get(address).map(|a| a.nonce).unwrap_or(0)
    }

    /// Adds `amount` to an address, creating the account if needed.
    pub fn credit(&mut self, address: Address, amount: U256) {
        let account = self.account_mut(address);
        account.balance = account.balance.saturating_add(amount);
    }

    /// Removes `amount` from an address.
    ///
    /// Returns `false` (leaving the balance untouched) when funds are
    /// insufficient.
    #[must_use]
    pub fn debit(&mut self, address: &Address, amount: U256) -> bool {
        match self.accounts.get_mut(address) {
            Some(account) => match account.balance.checked_sub(amount) {
                Some(rest) => {
                    account.balance = rest;
                    true
                }
                None => false,
            },
            None => amount.is_zero(),
        }
    }

    /// Moves `amount` from `from` to `to`; `false` on insufficient funds.
    #[must_use]
    pub fn transfer(&mut self, from: &Address, to: Address, amount: U256) -> bool {
        if !self.debit(from, amount) {
            return false;
        }
        self.credit(to, amount);
        true
    }

    /// Number of touched accounts.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// Returns `true` when no accounts exist.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Iterates over `(address, account)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&Address, &Account)> {
        self.accounts.iter()
    }

    /// Builds the secure state trie: `keccak256(address) → rlp(account)`.
    pub fn build_trie(&self) -> Trie {
        let mut trie = Trie::new();
        for (address, account) in &self.accounts {
            trie.insert(
                keccak256(address.as_bytes()).as_bytes().to_vec(),
                account.encode(),
            );
        }
        trie
    }

    /// The state root committed into block headers.
    pub fn state_root(&self) -> H256 {
        self.build_trie().root_hash()
    }

    /// Merkle proof for an account (inclusion or exclusion), verifiable
    /// against [`State::state_root`] with the key `keccak256(address)`.
    pub fn account_proof(&self, address: &Address) -> Vec<Vec<u8>> {
        self.build_trie()
            .prove(keccak256(address.as_bytes()).as_bytes())
    }

    /// Deduplicated Merkle multiproof for many accounts at once,
    /// verifiable against [`State::state_root`] with
    /// [`parp_trie::verify_many`] and the keys `keccak256(address)`.
    ///
    /// Builds the state trie once for the whole set — the per-call trie
    /// rebuild of [`State::account_proof`] is the dominant cost when
    /// serving N reads, so batch serving must not repeat it.
    pub fn account_multiproof(&self, addresses: &[Address]) -> Vec<Vec<u8>> {
        self.build_trie().prove_many(
            addresses
                .iter()
                .map(|address| keccak256(address.as_bytes()).as_bytes().to_vec()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_trie::verify_proof;

    fn addr(n: u64) -> Address {
        Address::from_low_u64_be(n)
    }

    #[test]
    fn empty_state_has_empty_root() {
        assert_eq!(State::new().state_root(), parp_trie::empty_root());
    }

    #[test]
    fn credit_debit_transfer() {
        let mut state = State::new();
        state.credit(addr(1), U256::from(100u64));
        assert!(state.debit(&addr(1), U256::from(30u64)));
        assert!(!state.debit(&addr(1), U256::from(1000u64)));
        assert!(state.transfer(&addr(1), addr(2), U256::from(70u64)));
        assert_eq!(state.balance(&addr(1)), U256::ZERO);
        assert_eq!(state.balance(&addr(2)), U256::from(70u64));
        assert!(!state.transfer(&addr(1), addr(2), U256::ONE));
        // Debiting zero from a missing account is fine.
        assert!(state.debit(&addr(9), U256::ZERO));
        assert!(!state.debit(&addr(9), U256::ONE));
    }

    #[test]
    fn root_reflects_balances() {
        let mut a = State::new();
        a.credit(addr(1), U256::from(5u64));
        let mut b = State::new();
        b.credit(addr(1), U256::from(6u64));
        assert_ne!(a.state_root(), b.state_root());
        let _ = b.debit(&addr(1), U256::ONE);
        assert_eq!(a.state_root(), b.state_root());
    }

    #[test]
    fn account_proof_verifies_against_root() {
        let mut state = State::new();
        for i in 1..50u64 {
            state.credit(addr(i), U256::from(i * 1000));
        }
        let root = state.state_root();
        let proof = state.account_proof(&addr(7));
        let key = keccak256(addr(7).as_bytes());
        let value = verify_proof(root, key.as_bytes(), &proof).unwrap().unwrap();
        let account = Account::decode(&value).unwrap();
        assert_eq!(account.balance, U256::from(7000u64));
    }

    #[test]
    fn absent_account_proof_is_exclusion() {
        let mut state = State::new();
        state.credit(addr(1), U256::ONE);
        let root = state.state_root();
        let proof = state.account_proof(&addr(999));
        let key = keccak256(addr(999).as_bytes());
        assert_eq!(verify_proof(root, key.as_bytes(), &proof).unwrap(), None);
    }

    #[test]
    fn alloc_constructor() {
        let state = State::with_alloc([(addr(1), U256::ONE), (addr(2), U256::from(2u64))]);
        assert_eq!(state.len(), 2);
        assert_eq!(state.balance(&addr(2)), U256::from(2u64));
    }
}
