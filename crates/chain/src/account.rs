//! Account state objects, RLP-encoded into the state trie exactly like
//! Ethereum's `(nonce, balance, storageRoot, codeHash)` tuples.

use parp_crypto::keccak256;
use parp_primitives::{H256, U256};
use parp_rlp::{decode_list_of, encode_h256, encode_list, encode_u256, encode_u64, DecodeError};

/// Hash of the empty byte string, the `codeHash` of externally owned
/// accounts.
pub fn empty_code_hash() -> H256 {
    keccak256(&[])
}

/// An account record as stored in the state trie.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Account {
    /// Transaction count for this account (replay protection).
    pub nonce: u64,
    /// Balance in wei.
    pub balance: U256,
    /// Commitment to the account's storage. For the simulated on-chain
    /// PARP modules this commits to the module's typed state; for plain
    /// accounts it is the empty trie root.
    pub storage_root: H256,
    /// Hash of the account's code (`keccak256("")` for EOAs).
    pub code_hash: H256,
}

impl Default for Account {
    fn default() -> Self {
        Account {
            nonce: 0,
            balance: U256::ZERO,
            storage_root: parp_trie::empty_root(),
            code_hash: empty_code_hash(),
        }
    }
}

impl Account {
    /// Creates an externally owned account holding `balance` wei.
    pub fn with_balance(balance: U256) -> Self {
        Account {
            balance,
            ..Account::default()
        }
    }

    /// RLP encoding as stored in the state trie.
    pub fn encode(&self) -> Vec<u8> {
        encode_list(&[
            encode_u64(self.nonce),
            encode_u256(&self.balance),
            encode_h256(&self.storage_root),
            encode_h256(&self.code_hash),
        ])
    }

    /// Decodes a state-trie account record.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the input is not a 4-item account list.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let items = decode_list_of(bytes, 4)?;
        Ok(Account {
            nonce: items[0].as_u64()?,
            balance: items[1].as_u256()?,
            storage_root: items[2].as_h256()?,
            code_hash: items[3].as_h256()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_account_is_empty_eoa() {
        let account = Account::default();
        assert_eq!(account.nonce, 0);
        assert!(account.balance.is_zero());
        assert_eq!(account.storage_root, parp_trie::empty_root());
        assert_eq!(account.code_hash, empty_code_hash());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let account = Account {
            nonce: 42,
            balance: U256::from(1_000_000_000_000_000_000u64),
            storage_root: H256::from_low_u64_be(7),
            code_hash: empty_code_hash(),
        };
        assert_eq!(Account::decode(&account.encode()).unwrap(), account);
    }

    #[test]
    fn decode_rejects_wrong_arity() {
        let bad = encode_list(&[encode_u64(1)]);
        assert!(Account::decode(&bad).is_err());
    }

    #[test]
    fn empty_code_hash_vector() {
        // keccak256("") — the canonical EOA code hash.
        assert_eq!(
            empty_code_hash().to_string(),
            "0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }
}
