//! Transactions: legacy-format Ethereum transactions with ECDSA signatures
//! and sender recovery.

use parp_crypto::{keccak256, recover_address, sign, SecretKey, Signature, SignatureError};
use parp_primitives::{Address, H256, U256};
use parp_rlp::{
    decode_list_of, encode_address, encode_bytes, encode_list, encode_u256, encode_u64,
    DecodeError, Item,
};
use std::error::Error;
use std::fmt;

/// An unsigned transaction body (legacy format, pre-EIP-155).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Sender nonce.
    pub nonce: u64,
    /// Price per unit of gas, in wei.
    pub gas_price: U256,
    /// Maximum gas the sender buys for this transaction.
    pub gas_limit: u64,
    /// Recipient; `None` denotes contract creation.
    pub to: Option<Address>,
    /// Value transferred, in wei.
    pub value: U256,
    /// Call data.
    pub data: Vec<u8>,
}

impl Transaction {
    /// The digest that is signed: `keccak256(rlp([nonce, gasPrice,
    /// gasLimit, to, value, data]))`.
    pub fn signing_hash(&self) -> H256 {
        keccak256(&encode_list(&[
            encode_u64(self.nonce),
            encode_u256(&self.gas_price),
            encode_u64(self.gas_limit),
            match &self.to {
                Some(addr) => encode_address(addr),
                None => encode_bytes(&[]),
            },
            encode_u256(&self.value),
            encode_bytes(&self.data),
        ]))
    }

    /// Signs the transaction with `secret`.
    pub fn sign(self, secret: &SecretKey) -> SignedTransaction {
        let signature = sign(secret, &self.signing_hash());
        SignedTransaction {
            tx: self,
            signature,
        }
    }

    /// Intrinsic gas: the 21000 base cost plus calldata costs
    /// (16 gas per nonzero byte, 4 per zero byte — EIP-2028 rates).
    pub fn intrinsic_gas(&self) -> u64 {
        let data_cost: u64 = self
            .data
            .iter()
            .map(|&b| if b == 0 { 4u64 } else { 16 })
            .sum();
        21_000 + data_cost
    }
}

/// Errors from decoding or validating signed transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransactionError {
    /// The RLP structure was malformed.
    Decode(DecodeError),
    /// The signature was out of range or recovery failed.
    Signature(SignatureError),
}

impl fmt::Display for TransactionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransactionError::Decode(e) => write!(f, "transaction decode failed: {e}"),
            TransactionError::Signature(e) => write!(f, "transaction signature invalid: {e}"),
        }
    }
}

impl Error for TransactionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransactionError::Decode(e) => Some(e),
            TransactionError::Signature(e) => Some(e),
        }
    }
}

impl From<DecodeError> for TransactionError {
    fn from(e: DecodeError) -> Self {
        TransactionError::Decode(e)
    }
}

impl From<SignatureError> for TransactionError {
    fn from(e: SignatureError) -> Self {
        TransactionError::Signature(e)
    }
}

/// A signed transaction: the unit stored in blocks and the transaction
/// trie.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedTransaction {
    tx: Transaction,
    signature: Signature,
}

impl SignedTransaction {
    /// The transaction body.
    pub fn tx(&self) -> &Transaction {
        &self.tx
    }

    /// The signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The canonical RLP encoding
    /// `[nonce, gasPrice, gasLimit, to, value, data, v, r, s]`.
    pub fn encode(&self) -> Vec<u8> {
        encode_list(&[
            encode_u64(self.tx.nonce),
            encode_u256(&self.tx.gas_price),
            encode_u64(self.tx.gas_limit),
            match &self.tx.to {
                Some(addr) => encode_address(addr),
                None => encode_bytes(&[]),
            },
            encode_u256(&self.tx.value),
            encode_bytes(&self.tx.data),
            encode_u64(self.signature.v() as u64 + 27),
            encode_bytes(strip_leading_zeros(self.signature.r_bytes())),
            encode_bytes(strip_leading_zeros(self.signature.s_bytes())),
        ])
    }

    /// Decodes and validates a signed transaction.
    ///
    /// # Errors
    ///
    /// Fails on malformed RLP or non-canonical signature components.
    pub fn decode(bytes: &[u8]) -> Result<Self, TransactionError> {
        let items = decode_list_of(bytes, 9)?;
        let to = match &items[3] {
            Item::Bytes(b) if b.is_empty() => None,
            item => Some(item.as_address()?),
        };
        let tx = Transaction {
            nonce: items[0].as_u64()?,
            gas_price: items[1].as_u256()?,
            gas_limit: items[2].as_u64()?,
            to,
            value: items[4].as_u256()?,
            data: items[5].as_bytes()?.to_vec(),
        };
        let v_raw = items[6].as_u64()?;
        if !(27..=28).contains(&v_raw) {
            return Err(TransactionError::Signature(
                SignatureError::InvalidRecoveryId,
            ));
        }
        let mut sig_bytes = [0u8; 65];
        let r = items[7].as_bytes()?;
        let s = items[8].as_bytes()?;
        if r.len() > 32 || s.len() > 32 {
            return Err(TransactionError::Signature(
                SignatureError::InvalidComponent,
            ));
        }
        sig_bytes[32 - r.len()..32].copy_from_slice(r);
        sig_bytes[64 - s.len()..64].copy_from_slice(s);
        sig_bytes[64] = (v_raw - 27) as u8;
        let signature = Signature::from_bytes(&sig_bytes)?;
        Ok(SignedTransaction { tx, signature })
    }

    /// The transaction hash: `keccak256` of the signed encoding.
    pub fn hash(&self) -> H256 {
        keccak256(&self.encode())
    }

    /// Recovers the sender address from the signature.
    ///
    /// # Errors
    ///
    /// Fails when the signature does not recover to a valid public key.
    pub fn sender(&self) -> Result<Address, SignatureError> {
        recover_address(&self.tx.signing_hash(), &self.signature)
    }
}

fn strip_leading_zeros(bytes: &[u8; 32]) -> &[u8] {
    let first = bytes.iter().position(|&b| b != 0).unwrap_or(31);
    &bytes[first..]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tx(nonce: u64) -> Transaction {
        Transaction {
            nonce,
            gas_price: U256::from(12_000_000_000u64),
            gas_limit: 21_000,
            to: Some(Address::from_low_u64_be(0xbeef)),
            value: U256::from(1_000_000u64),
            data: Vec::new(),
        }
    }

    #[test]
    fn sign_and_recover() {
        let key = SecretKey::from_seed(b"tx-sender");
        let signed = sample_tx(0).sign(&key);
        assert_eq!(signed.sender().unwrap(), key.address());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let key = SecretKey::from_seed(b"tx-sender");
        let mut tx = sample_tx(3);
        tx.data = vec![0, 1, 2, 0, 255];
        let signed = tx.sign(&key);
        let decoded = SignedTransaction::decode(&signed.encode()).unwrap();
        assert_eq!(decoded, signed);
        assert_eq!(decoded.hash(), signed.hash());
        assert_eq!(decoded.sender().unwrap(), key.address());
    }

    #[test]
    fn contract_creation_roundtrip() {
        let key = SecretKey::from_seed(b"deployer");
        let mut tx = sample_tx(0);
        tx.to = None;
        tx.data = vec![0x60, 0x80];
        let signed = tx.sign(&key);
        let decoded = SignedTransaction::decode(&signed.encode()).unwrap();
        assert_eq!(decoded.tx().to, None);
    }

    #[test]
    fn tampering_changes_sender() {
        let key = SecretKey::from_seed(b"tx-sender");
        let signed = sample_tx(0).sign(&key);
        let mut tampered_tx = signed.tx().clone();
        tampered_tx.value = U256::from(2_000_000u64);
        let tampered = SignedTransaction {
            tx: tampered_tx,
            signature: *signed.signature(),
        };
        // Recovery yields *some* address, but not the signer's.
        if let Ok(addr) = tampered.sender() {
            assert_ne!(addr, key.address())
        }
    }

    #[test]
    fn intrinsic_gas_counts_calldata() {
        let mut tx = sample_tx(0);
        assert_eq!(tx.intrinsic_gas(), 21_000);
        tx.data = vec![0, 0, 1, 2]; // 2 zero + 2 nonzero
        assert_eq!(tx.intrinsic_gas(), 21_000 + 2 * 4 + 2 * 16);
    }

    #[test]
    fn decode_rejects_bad_v() {
        let key = SecretKey::from_seed(b"x");
        let signed = sample_tx(0).sign(&key);
        let items = parp_rlp::decode(&signed.encode()).unwrap();
        let mut fields: Vec<Item> = items.as_list().unwrap().to_vec();
        fields[6] = Item::Bytes(vec![55]); // invalid v
        let bad = Item::List(fields).encode();
        assert!(matches!(
            SignedTransaction::decode(&bad),
            Err(TransactionError::Signature(_))
        ));
    }

    #[test]
    fn signing_hash_ignores_signature() {
        let key1 = SecretKey::from_seed(b"a");
        let key2 = SecretKey::from_seed(b"b");
        let tx = sample_tx(1);
        assert_eq!(
            tx.clone().sign(&key1).tx().signing_hash(),
            tx.sign(&key2).tx().signing_hash()
        );
    }

    #[test]
    fn paper_write_request_size_is_realistic() {
        // §VI-C: a raw transaction RPC call is ~422 bytes of JSON. The raw
        // signed transfer itself is ~100 bytes of RLP; sanity-check ours.
        let key = SecretKey::from_seed(b"sizer");
        let signed = sample_tx(0).sign(&key);
        let len = signed.encode().len();
        assert!((90..=120).contains(&len), "unexpected raw tx size {len}");
    }
}
