//! A deterministic, in-process Ethereum-like blockchain: the substrate the
//! PARP protocol runs against.
//!
//! The paper's prototype extends Geth; this crate rebuilds the parts of an
//! execution client that PARP actually touches — accounts, ECDSA-signed
//! transactions, receipts, headers committing to state/transaction/receipt
//! Merkle-Patricia tries, and deterministic block production — so every
//! proof and signature the protocol checks is real.
//!
//! Execution is pluggable through [`TransactionExecutor`]; the
//! `parp-contracts` crate layers the PARP on-chain modules on top of the
//! plain [`TransferExecutor`].
//!
//! # Examples
//!
//! ```
//! use parp_chain::{Blockchain, Transaction, TransferExecutor};
//! use parp_crypto::SecretKey;
//! use parp_primitives::{Address, U256};
//!
//! let alice = SecretKey::from_seed(b"alice");
//! let mut chain = Blockchain::new(vec![(alice.address(), U256::from(1_000_000u64))]);
//!
//! let tx = Transaction {
//!     nonce: 0,
//!     gas_price: U256::ZERO,
//!     gas_limit: 21_000,
//!     to: Some(Address::from_low_u64_be(0xb0b)),
//!     value: U256::from(500u64),
//!     data: Vec::new(),
//! }
//! .sign(&alice);
//!
//! chain.produce_block(vec![tx], &mut TransferExecutor)?;
//! assert_eq!(chain.height(), 1);
//! # Ok::<(), parp_chain::BlockError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod account;
mod block;
mod chain;
mod exec;
mod header;
mod receipt;
mod state;
mod transaction;

pub use account::{empty_code_hash, Account};
pub use block::{receipts_trie, Block};
pub use chain::{BlockError, Blockchain, BLOCK_HASH_WINDOW, BLOCK_INTERVAL, MIN_HISTORY_WINDOW};
pub use exec::{BlockContext, ExecutionResult, TransactionExecutor, TransferExecutor};
pub use header::Header;
pub use receipt::{Log, Receipt};
pub use state::State;
pub use transaction::{SignedTransaction, Transaction, TransactionError};
