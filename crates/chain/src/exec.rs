//! Transaction execution: the pluggable state-transition function.
//!
//! The chain core handles sender recovery, nonce and gas-purchase
//! bookkeeping; a [`TransactionExecutor`] decides what the transaction
//! *does*. The default [`TransferExecutor`] implements plain value
//! transfers; `parp-contracts` layers the PARP on-chain modules on top by
//! intercepting calls to module addresses.

use crate::receipt::Log;
use crate::state::State;
use crate::transaction::SignedTransaction;
use parp_primitives::{Address, H256};

/// Block-level execution context passed to executors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockContext {
    /// Height of the block being produced.
    pub number: u64,
    /// Timestamp of the block being produced.
    pub timestamp: u64,
    /// Fee recipient.
    pub beneficiary: Address,
    /// Hashes of the most recent ancestor blocks, oldest first, ending
    /// with the parent. Mirrors the EVM `BLOCKHASH` 256-block window that
    /// the paper's fraud-proof contract relies on (§VI).
    pub recent_hashes: Vec<(u64, H256)>,
}

impl BlockContext {
    /// A context with no ancestor hashes (unit tests, genesis).
    pub fn bare(number: u64, timestamp: u64, beneficiary: Address) -> Self {
        BlockContext {
            number,
            timestamp,
            beneficiary,
            recent_hashes: Vec::new(),
        }
    }

    /// `BLOCKHASH(number)`: the hash of an ancestor within the window.
    pub fn block_hash(&self, number: u64) -> Option<H256> {
        self.recent_hashes
            .iter()
            .find(|(n, _)| *n == number)
            .map(|(_, h)| *h)
    }

    /// Reverse lookup: the height of a recent ancestor hash, the
    /// `getBlockHeightByHash` primitive from Algorithm 2.
    pub fn block_height_by_hash(&self, hash: &H256) -> Option<u64> {
        self.recent_hashes
            .iter()
            .find(|(_, h)| h == hash)
            .map(|(n, _)| *n)
    }
}

/// Outcome of executing one transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionResult {
    /// `true` when the transaction succeeded.
    pub success: bool,
    /// Total gas consumed, *including* intrinsic gas. Clamped to the
    /// transaction's gas limit by the chain.
    pub gas_used: u64,
    /// Logs emitted during execution.
    pub logs: Vec<Log>,
    /// Return data (module call results; empty for transfers).
    pub output: Vec<u8>,
}

impl ExecutionResult {
    /// A successful result consuming exactly `gas_used`.
    pub fn success(gas_used: u64) -> Self {
        ExecutionResult {
            success: true,
            gas_used,
            logs: Vec::new(),
            output: Vec::new(),
        }
    }

    /// A failed (reverted) result consuming `gas_used`.
    pub fn failure(gas_used: u64) -> Self {
        ExecutionResult {
            success: false,
            gas_used,
            logs: Vec::new(),
            output: Vec::new(),
        }
    }
}

/// The pluggable state-transition function applied to each transaction.
///
/// Implementations receive the post-nonce-increment, post-gas-purchase
/// state. The transferred `value` has *not* been moved yet; moving it (and
/// reverting on failure) is the executor's responsibility.
pub trait TransactionExecutor {
    /// Executes `tx` from `sender` against `state`.
    ///
    /// `intrinsic_gas` is the already-computed base cost; the returned
    /// [`ExecutionResult::gas_used`] must include it.
    fn execute(
        &mut self,
        state: &mut State,
        ctx: &BlockContext,
        tx: &SignedTransaction,
        sender: Address,
        intrinsic_gas: u64,
    ) -> ExecutionResult;
}

/// The default executor: plain value transfers, no contract semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransferExecutor;

impl TransactionExecutor for TransferExecutor {
    fn execute(
        &mut self,
        state: &mut State,
        _ctx: &BlockContext,
        tx: &SignedTransaction,
        sender: Address,
        intrinsic_gas: u64,
    ) -> ExecutionResult {
        let Some(to) = tx.tx().to else {
            // Contract creation is not supported by the transfer executor.
            return ExecutionResult::failure(intrinsic_gas);
        };
        if state.transfer(&sender, to, tx.tx().value) {
            ExecutionResult::success(intrinsic_gas)
        } else {
            ExecutionResult::failure(intrinsic_gas)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Transaction;
    use parp_crypto::SecretKey;
    use parp_primitives::U256;

    fn ctx() -> BlockContext {
        BlockContext::bare(1, 1_700_000_000, Address::from_low_u64_be(0xfee))
    }

    #[test]
    fn transfer_moves_value() {
        let key = SecretKey::from_seed(b"sender");
        let mut state = State::new();
        state.credit(key.address(), U256::from(1_000u64));
        let tx = Transaction {
            nonce: 0,
            gas_price: U256::ZERO,
            gas_limit: 21_000,
            to: Some(Address::from_low_u64_be(2)),
            value: U256::from(400u64),
            data: Vec::new(),
        }
        .sign(&key);
        let result = TransferExecutor.execute(&mut state, &ctx(), &tx, key.address(), 21_000);
        assert!(result.success);
        assert_eq!(
            state.balance(&Address::from_low_u64_be(2)),
            U256::from(400u64)
        );
        assert_eq!(state.balance(&key.address()), U256::from(600u64));
    }

    #[test]
    fn insufficient_funds_fail_without_moving_value() {
        let key = SecretKey::from_seed(b"sender");
        let mut state = State::new();
        state.credit(key.address(), U256::from(10u64));
        let tx = Transaction {
            nonce: 0,
            gas_price: U256::ZERO,
            gas_limit: 21_000,
            to: Some(Address::from_low_u64_be(2)),
            value: U256::from(400u64),
            data: Vec::new(),
        }
        .sign(&key);
        let result = TransferExecutor.execute(&mut state, &ctx(), &tx, key.address(), 21_000);
        assert!(!result.success);
        assert_eq!(result.gas_used, 21_000);
        assert_eq!(state.balance(&key.address()), U256::from(10u64));
    }

    #[test]
    fn creation_unsupported() {
        let key = SecretKey::from_seed(b"sender");
        let mut state = State::new();
        let tx = Transaction {
            nonce: 0,
            gas_price: U256::ZERO,
            gas_limit: 50_000,
            to: None,
            value: U256::ZERO,
            data: vec![1, 2, 3],
        }
        .sign(&key);
        let result = TransferExecutor.execute(&mut state, &ctx(), &tx, key.address(), 21_048);
        assert!(!result.success);
    }
}
