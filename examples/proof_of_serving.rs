//! The §VIII "Proof of Serving" extension: a full node aggregates the
//! payment receipts (σ_a signatures) it collected while serving light
//! clients into a verifiable claim of work performed — the building block
//! for the paper's proposed serving-reward mechanism.
//!
//! Run with: `cargo run --example proof_of_serving`

use parp_suite::contracts::RpcCall;
use parp_suite::core::{collect_serving_proof, verify_serving_proof, ProcessOutcome};
use parp_suite::net::Network;
use parp_suite::primitives::U256;

fn main() {
    let mut net = Network::new();
    let node = net.spawn_node(b"pos-node", U256::from(10u64));

    // Three clients with different usage patterns.
    let mut clients = Vec::new();
    for i in 0..3 {
        let seed = format!("pos-client-{i}");
        let mut client = net.spawn_client(seed.as_bytes(), U256::from(10u64));
        net.connect(&mut client, node, U256::from(10_000u64))
            .expect("connect");
        clients.push(client);
    }
    for (i, client) in clients.iter_mut().enumerate() {
        let calls = (i + 1) * 4;
        for _ in 0..calls {
            let (outcome, _) = net
                .parp_call(client, node, RpcCall::BlockNumber)
                .expect("call");
            assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
        }
        println!(
            "client {} paid for {calls} calls (channel spent: {} wei)",
            client.address(),
            client.channel().expect("bonded").spent
        );
    }

    // The node aggregates its receipts.
    let proof = collect_serving_proof(net.node(node));
    println!(
        "\nnode {} claims {} wei of service across {} channels",
        proof.node,
        proof.claimed_total(),
        proof.receipts.len()
    );

    // Anyone can verify the claim against on-chain channel records: every
    // receipt must carry the channel owner's signature and respect the
    // channel budget.
    let verified = verify_serving_proof(&proof, net.executor().cmm()).expect("valid proof");
    println!("verified serving total: {verified} wei");
    assert_eq!(verified, proof.claimed_total());

    // A doctored claim does not survive verification.
    let mut doctored = proof.clone();
    doctored.receipts[0].amount += U256::from(1_000u64);
    match verify_serving_proof(&doctored, net.executor().cmm()) {
        Err(e) => println!("doctored claim rejected: {e}"),
        Ok(_) => panic!("inflated receipts must not verify"),
    }
    println!("\n(the Sybil caveat from §VIII applies: receipts only measure paid channels,");
    println!(" and every channel requires a real on-chain budget deposit)");
}
