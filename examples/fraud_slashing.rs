//! The accountability pipeline end to end (paper §IV-F): a full node
//! serves provably wrong data, the light client builds a fraud proof,
//! a witness node relays it on-chain, and the Fraud Detection Module
//! slashes the offender's collateral — rewarding the client, the witness
//! and the serving-layer pool.
//!
//! Run with: `cargo run --example fraud_slashing`

use parp_suite::contracts::{min_deposit, RpcCall, SLASH_CLIENT_SHARE, SLASH_WITNESS_SHARE};
use parp_suite::core::{Misbehavior, ProcessOutcome};
use parp_suite::net::Network;
use parp_suite::primitives::U256;

fn main() {
    let mut net = Network::new();
    let rogue = net.spawn_node(b"slash-rogue", U256::from(10u64));
    let witness = net.spawn_node(b"slash-witness", U256::from(10u64));
    let mut client = net.spawn_client(b"slash-client", U256::from(10u64));

    println!(
        "rogue node {} stakes {} wei of collateral",
        net.node(rogue).address(),
        min_deposit()
    );
    net.connect(&mut client, rogue, U256::from(50_000u64))
        .expect("connect");

    // The rogue node answers with data from an old block — one of the
    // three §V-D fraud conditions (timestamp check).
    net.node_mut(rogue)
        .set_misbehavior(Misbehavior::StaleHeight);
    println!("rogue node now serves stale data\n");

    let me = client.address();
    let (outcome, _) = net
        .parp_call(&mut client, rogue, RpcCall::GetBalance { address: me })
        .expect("request served");
    let ProcessOutcome::Fraud(evidence) = outcome else {
        panic!("client must detect the fraud, got {outcome:?}");
    };
    println!(
        "client detected fraud: {:?} (request hash {})",
        evidence.verdict, evidence.request.request_hash
    );

    // The client cannot submit the proof through the offender; it resorts
    // to a witness full node (§IV-F).
    let client_before = net.chain().balance(&client.address());
    let witness_before = net.chain().balance(&net.node(witness).address());
    let accepted = net.report_fraud(&evidence, witness).expect("relay");
    assert!(accepted, "the fraud proof must be accepted on-chain");
    println!(
        "witness {} relayed the proof on-chain",
        net.node(witness).address()
    );

    // Consequences.
    let slashed = min_deposit();
    println!("\non-chain consequences:");
    println!(
        "  offender collateral: {} -> {}",
        slashed,
        net.executor().fndm().deposit_of(&net.node(rogue).address())
    );
    println!(
        "  client reward:  {} wei ({}% of the slash) plus its {} wei budget back",
        slashed * U256::from(SLASH_CLIENT_SHARE) / U256::from(100u64),
        SLASH_CLIENT_SHARE,
        50_000,
    );
    println!(
        "  witness reward: {} wei ({}%)",
        net.chain().balance(&net.node(witness).address()) - witness_before,
        SLASH_WITNESS_SHARE
    );
    println!(
        "  serving pool:   {} wei retained by the deposit module",
        net.executor().fndm().pool()
    );
    println!(
        "  client balance delta: +{} wei",
        net.chain().balance(&client.address()) - client_before
    );
    let record = net
        .executor()
        .fdm()
        .record(&evidence.request.request_hash)
        .expect("recorded");
    println!(
        "  fraud record: offender={} verdict={:?} block={}",
        record.offender, record.verdict, record.block
    );
    assert!(
        !net.registry().contains(&net.node(rogue).address()),
        "slashed node must drop out of the serving registry"
    );
    println!("\nrogue node is out of the serving registry; the network healed");
}
