//! The provider marketplace end to end: a gateway-driven client
//! discovers serving providers from the on-chain registry, routes to
//! the cheapest one — which happens to be a fraudster undercutting the
//! market to attract traffic — detects the forgery under §V-D, gets the
//! provider slashed through a witness, fails over live, and finishes
//! its workload without ever surfacing an unverified byte.
//!
//! Run with: `cargo run --example provider_marketplace`

use parp_suite::contracts::RpcCall;
use parp_suite::core::Misbehavior;
use parp_suite::gateway::{
    run_marketplace, FailoverCause, Gateway, GatewayConfig, MarketplaceConfig, SelectionPolicy,
};
use parp_suite::net::Network;
use parp_suite::primitives::{Address, U256};

fn main() {
    // ── Part 1: the fraud + failover path, step by step ──────────────
    let mut net = Network::new();
    for (i, price) in [10u64, 20, 30, 40].into_iter().enumerate() {
        net.spawn_node(format!("market-node-{i}").as_bytes(), U256::from(price));
    }
    println!("registry lists {} serving providers:", net.registry().len());

    let client = net.spawn_client(b"market-client", U256::from(10u64));
    let mut gateway = Gateway::new(
        client,
        GatewayConfig {
            policy: SelectionPolicy::Cheapest,
            ..GatewayConfig::default()
        },
    );
    gateway.refresh(&net);
    for provider in gateway.directory().providers() {
        println!(
            "  {} — {} wei/call, deposit {} wei",
            provider.address, provider.price_per_call, provider.deposit
        );
    }

    // The cheapest provider forges account records.
    let cheapest = gateway.directory().providers()[..]
        .iter()
        .min_by_key(|p| p.price_per_call)
        .unwrap()
        .address;
    let cheapest_id = net.node_id_by_address(&cheapest).unwrap();
    net.node_mut(cheapest_id)
        .set_misbehavior(Misbehavior::ForgedResult);
    println!("\ncheapest provider {cheapest} now forges results\n");

    let target = Address::from_low_u64_be(0xCAFE);
    net.fund(target);
    let result = gateway
        .call(&mut net, RpcCall::GetBalance { address: target })
        .expect("the gateway must survive the fraudster");
    println!("verified balance read returned {} bytes", result.len());

    for event in gateway.failovers() {
        let FailoverCause::Fraud(verdict) = &event.cause else {
            continue;
        };
        println!(
            "failover: provider {} committed {:?}; proof submitted: {}; \
             recovered in {} µs of simulated time",
            event.failed_provider,
            verdict,
            event.slashed,
            event.time_to_recover_us().unwrap_or(0),
        );
    }
    let record = net.executor().fndm().record(&cheapest).unwrap();
    println!(
        "offender on-chain: deposit {} wei, slash count {}, registry now {} providers\n",
        record.deposit,
        record.slash_count,
        net.registry().len()
    );

    // A quorum read cross-checks the survivors byte-for-byte.
    let outcome = gateway
        .quorum_call(&mut net, RpcCall::GetBalance { address: target }, 3)
        .expect("three honest providers remain");
    println!(
        "quorum read over {} providers: agreed = {}",
        outcome.votes.len(),
        outcome.agreed
    );

    // ── Part 2: the full churn scenario in one call ──────────────────
    println!("\nrunning the full marketplace scenario (joins, exits, fraud)...");
    let report = run_marketplace(&MarketplaceConfig::default());
    println!(
        "  {} verified results, {} wrong payloads, {} errors",
        report.results, report.wrong_payloads, report.errors
    );
    println!(
        "  fraud detected {} time(s), cheapest slashed: {}, {} failover(s)",
        report.fraud_detected, report.cheapest_slashed, report.failovers
    );
    println!(
        "  time-to-recover: {:?} µs, payments monotone: {}",
        report.recoveries_us, report.payments_monotone
    );
    println!(
        "  churn: +{} joined, -{} exited; final registry size {}",
        report.providers_joined, report.providers_exited, report.final_registry_len
    );
    println!("  per-provider aggregates (calls / failures / p50 / p99 µs):");
    for (address, stats) in &report.provider_stats {
        println!(
            "    {address}: {} / {} / {} / {}",
            stats.calls(),
            stats.failures(),
            stats.latency_p50_us(),
            stats.latency_p99_us()
        );
    }

    assert_eq!(report.wrong_payloads, 0);
    assert!(report.cheapest_slashed);
    println!("\nthe marketplace absorbed the fraud; the client never noticed.");
}
