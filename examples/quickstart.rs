//! Quickstart: the smallest end-to-end PARP session.
//!
//! Spins up a simulated network with one staked full node, connects a
//! light client through the permissionless handshake, performs a
//! Merkle-verified balance query, pays per request through the payment
//! channel, and settles cooperatively.
//!
//! Run with: `cargo run --example quickstart`

use parp_suite::contracts::RpcCall;
use parp_suite::core::ProcessOutcome;
use parp_suite::net::Network;
use parp_suite::primitives::U256;

fn main() {
    // A simulated chain with a PARP full node: the node stakes collateral
    // in the deposit module and registers as serving.
    let mut net = Network::new();
    let node = net.spawn_node(b"quickstart-node", U256::from(10u64));
    println!(
        "full node {} is staked and serving",
        net.node(node).address()
    );
    println!("on-chain registry: {:?}", net.registry());

    // A light client: just a key pair — no e-mail, no API key.
    let mut client = net.spawn_client(b"quickstart-client", U256::from(10u64));
    println!("light client {} (pseudonymous)", client.address());

    // Connect: header sync, handshake, on-chain channel with a budget.
    let budget = U256::from(10_000u64);
    let channel = net
        .connect(&mut client, node, budget)
        .expect("connection setup");
    println!("payment channel {channel} open with budget {budget} wei");

    // A verified read: the response carries a Merkle proof against the
    // state root in a block header the client already trusts.
    let me = client.address();
    let (outcome, stats) = net
        .parp_call(&mut client, node, RpcCall::GetBalance { address: me })
        .expect("balance query");
    match outcome {
        ProcessOutcome::Valid { result, proven } => {
            let account = parp_suite::chain::Account::decode(&result).expect("account");
            println!(
                "verified balance: {} wei (Merkle-proven: {proven}, proof {} bytes)",
                account.balance, stats.proof_bytes
            );
        }
        other => panic!("unexpected outcome: {other:?}"),
    }

    // Every request carried a micropayment; the node holds the client's
    // signed cumulative amount.
    let served = net.node(node).served_channel(channel).expect("served");
    let (earned, calls) = (served.latest_amount, served.calls_served);
    println!("node receivable: {earned} wei over {calls} call(s)");

    // Cooperative close: dispute window passes, funds settle.
    net.close_cooperatively(&mut client, node)
        .expect("settlement");
    println!("channel settled; node balance includes its {earned} wei of earnings");
}
