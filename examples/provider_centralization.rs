//! Reproduces the paper's §II-B / Table I analysis: how centralized the
//! Web3 serving layer is, and how permissioned access to it has become.
//!
//! Run with: `cargo run --example provider_centralization`

use parp_suite::net::dataset::{providers, traffic_share, RPC_DAPPS, TOTAL_DAPPS};

fn main() {
    println!("dataset: {TOTAL_DAPPS} dApps crawled (Torres et al., USENIX Security '23);");
    println!("{RPC_DAPPS} send JSON-RPC calls to node providers directly from their frontend\n");

    println!(
        "{:<12} {:>10} {:>8}   {:<26} {:>6} {:>7}",
        "provider", "dApps", "share", "sign-up requirement", "tiers", "crypto"
    );
    let mut records = providers();
    records.sort_by_key(|p| std::cmp::Reverse(p.dapp_count));
    for p in &records {
        let signup = if p.wallet_login && !p.email_required {
            "wallet only (permissionless)"
        } else if p.name_required {
            "email + name"
        } else if p.email_required {
            "email"
        } else {
            "none"
        };
        println!(
            "{:<12} {:>6}/{} {:>7.2}%   {:<26} {:>6} {:>7}",
            p.name,
            p.dapp_count,
            RPC_DAPPS,
            traffic_share(p),
            signup,
            p.plan_tiers,
            if p.accepts_crypto { "yes" } else { "no" },
        );
    }

    // The centralization headline numbers from §II-B.
    let infura = records.iter().find(|p| p.name == "Infura").expect("infura");
    let alchemy = records
        .iter()
        .find(|p| p.name == "Alchemy")
        .expect("alchemy");
    println!(
        "\nheadline: Infura alone serves {:.2}% of RPC dApps; Infura+Alchemy {:.2}%",
        traffic_share(infura),
        100.0 * (infura.dapp_count + alchemy.dapp_count) as f64 / RPC_DAPPS as f64
    );
    let permissionless = records
        .iter()
        .filter(|p| p.wallet_login && !p.email_required)
        .count();
    println!(
        "only {permissionless} of {} surveyed providers can be used without handing over PII",
        records.len()
    );
    println!("\nthis is the serving-layer gap PARP addresses: permissionless AND accountable");
}
