//! The batched request pipeline: one signature, many calls, one
//! deduplicated Merkle multiproof.
//!
//! A wallet watching many accounts is the motivating workload: instead of
//! paying the signature check and per-call proof for every balance, the
//! client signs one batch covering all of them, and the node answers from
//! a single state snapshot with a shared proof whose branch nodes cross
//! the wire once.
//!
//! Run with: `cargo run --example batched_reads`

use parp_suite::contracts::RpcCall;
use parp_suite::core::ProcessBatchOutcome;
use parp_suite::net::Network;
use parp_suite::primitives::{Address, U256};

fn main() {
    let mut net = Network::new();
    let node = net.spawn_node(b"batch-node", U256::from(10u64));
    let mut client = net.spawn_client(b"batch-client", U256::from(10u64));
    net.connect(&mut client, node, U256::from(100_000u64))
        .expect("connect");

    // A portfolio of 16 accounts to watch.
    let watched: Vec<Address> = (0..16)
        .map(|i| Address::from_low_u64_be(0xFEED + i))
        .collect();
    for address in &watched {
        net.fund(*address);
    }
    net.sync_client(&mut client);

    // 16 single calls, for comparison.
    let mut single_proof_bytes = 0;
    let mut single_request_bytes = 0;
    for address in &watched {
        let (_, stats) = net
            .parp_call(&mut client, node, RpcCall::GetBalance { address: *address })
            .expect("single call");
        single_proof_bytes += stats.proof_bytes;
        single_request_bytes += stats.request_bytes;
    }

    // The same 16 reads as one batch: one signature, one multiproof.
    let calls: Vec<RpcCall> = watched
        .iter()
        .map(|a| RpcCall::GetBalance { address: *a })
        .collect();
    let (outcome, stats) = net
        .parp_batch_call(&mut client, node, calls)
        .expect("batch call");
    let ProcessBatchOutcome::Valid { results, proven } = outcome else {
        panic!("honest node must serve a valid batch, got {outcome:?}");
    };
    assert!(proven.iter().all(|p| *p));

    println!("watched accounts: {}", results.len());
    println!(
        "16 single calls: {} request bytes, {} proof bytes",
        single_request_bytes, single_proof_bytes
    );
    println!(
        "one 16-batch:    {} request bytes, {} proof bytes ({}% of the singles' proofs)",
        stats.request_bytes,
        stats.proof_bytes,
        100 * stats.proof_bytes / single_proof_bytes.max(1)
    );
    println!(
        "channel ledger: {} wei committed over {} verified responses",
        client.channel().expect("bonded").spent,
        client.valid_responses()
    );
}
