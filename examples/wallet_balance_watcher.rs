//! A wallet-style balance watcher — the paper's motivating dApp scenario
//! (§I: "MetaMask uses Infura as its default endpoint to obtain the
//! balance for the end-user's addresses"), rebuilt on PARP so the wallet
//! needs no trusted provider:
//!
//! * balances come with Merkle proofs checked against headers,
//! * a node returning bogus data is detected immediately, and
//! * the wallet fails over to another node without any sign-up.
//!
//! Run with: `cargo run --example wallet_balance_watcher`

use parp_suite::chain::Account;
use parp_suite::contracts::RpcCall;
use parp_suite::core::{Misbehavior, ProcessOutcome};
use parp_suite::net::{Network, NodeId};
use parp_suite::primitives::{Address, U256};

/// The wallet's address book: accounts whose balances it tracks.
fn address_book() -> Vec<(&'static str, Address)> {
    vec![
        ("savings", Address::from_low_u64_be(0x5a71)),
        ("trading", Address::from_low_u64_be(0x7ead)),
        ("cold storage", Address::from_low_u64_be(0xc01d)),
    ]
}

fn watch_once(
    net: &mut Network,
    client: &mut parp_suite::core::LightClient,
    node: NodeId,
) -> Result<(), String> {
    for (label, address) in address_book() {
        let (outcome, _) = net
            .parp_call(client, node, RpcCall::GetBalance { address })
            .map_err(|e| e.to_string())?;
        match outcome {
            ProcessOutcome::Valid { result, .. } => {
                let balance = if result.is_empty() {
                    U256::ZERO // proven absent: zero balance
                } else {
                    Account::decode(&result).map_err(|e| e.to_string())?.balance
                };
                println!("  {label:<13} {address} = {balance} wei (verified)");
            }
            ProcessOutcome::Invalid(reason) => {
                return Err(format!("untrusted response ({reason}), failing over"));
            }
            ProcessOutcome::Fraud(evidence) => {
                return Err(format!(
                    "fraud detected ({:?}), evidence collected, failing over",
                    evidence.verdict
                ));
            }
        }
    }
    Ok(())
}

fn main() {
    let mut net = Network::new();
    let primary = net.spawn_node(b"wallet-primary", U256::from(10u64));
    let backup = net.spawn_node(b"wallet-backup", U256::from(10u64));
    let mut wallet = net.spawn_client(b"wallet-user", U256::from(10u64));

    // Fund the watched accounts so there is something to show.
    for (_, address) in address_book() {
        net.fund(address);
    }

    println!(
        "wallet connects to primary node {}",
        net.node(primary).address()
    );
    net.connect(&mut wallet, primary, U256::from(100_000u64))
        .expect("connect primary");

    println!("balance sweep #1 (primary node, honest):");
    watch_once(&mut net, &mut wallet, primary).expect("honest sweep");

    // The primary node turns malicious: it starts forging balances.
    println!("\nprimary node starts forging results...");
    net.node_mut(primary)
        .set_misbehavior(Misbehavior::ForgedResult);
    match watch_once(&mut net, &mut wallet, primary) {
        Err(reason) => println!("balance sweep #2 aborted: {reason}"),
        Ok(()) => panic!("forged balances must not verify"),
    }

    // Fail-over: permissionless means a new channel is one handshake away.
    wallet.abandon_connection();
    println!(
        "\nwallet fails over to backup node {}",
        net.node(backup).address()
    );
    net.connect(&mut wallet, backup, U256::from(100_000u64))
        .expect("connect backup");
    println!("balance sweep #3 (backup node):");
    watch_once(&mut net, &mut wallet, backup).expect("backup sweep");

    println!(
        "\ndone: {} verified responses received in total",
        wallet.valid_responses()
    );
}
